#!/usr/bin/env python
"""Hardware and workload changes with small training sets.

The paper's conclusion argues that the hybrid model "requires small
training datasets ... thus making it suitable for hardware and workload
changes".  This example quantifies that: the same stencil workload is
"measured" on three different machines (Blue Waters XE6, a generic Xeon
node, and a cache-starved embedded node); for each machine a fresh hybrid
model — using that machine's analytical model — is trained on only 2% of
the configurations and compared with a pure extra-trees model given the
same tiny budget.

Run:  python examples/hardware_change.py
"""

from repro.analytical import StencilAnalyticalModel
from repro.core import HybridPerformanceModel
from repro.datasets.stencil_datasets import stencil_dataset_from_space
from repro.machine import blue_waters_xe6, generic_xeon_node, small_embedded_node
from repro.ml import ExtraTreesRegressor, Pipeline, StandardScaler
from repro.ml.metrics import mean_absolute_percentage_error
from repro.stencil import StencilConfigSpace, StencilPerformanceSimulator

SEED = 0
TRAIN_FRACTION = 0.02

MACHINES = {
    "Blue Waters XE6": blue_waters_xe6(),
    "Generic Xeon node": generic_xeon_node(),
    "Small embedded node": small_embedded_node(),
}


def main() -> None:
    space = StencilConfigSpace.small_grids_with_blocking()
    print(f"workload: blocked 7-point stencil, {len(space.configs())} configurations")
    print(f"training budget per machine: {TRAIN_FRACTION:.0%}\n")

    print(f"{'machine':<22} {'AM MAPE':>9} {'extra trees':>12} {'hybrid':>9}")
    print("-" * 56)
    for name, machine in MACHINES.items():
        simulator = StencilPerformanceSimulator(machine=machine)
        data = stencil_dataset_from_space(space, name=f"stencil@{name}",
                                          simulator=simulator)
        analytical = StencilAnalyticalModel(machine=machine)
        train_idx, test_idx = data.train_test_indices(
            train_fraction=TRAIN_FRACTION, random_state=SEED)

        am_mape = mean_absolute_percentage_error(
            data.y[test_idx], analytical.predict(data.X[test_idx], data.feature_names))

        ml = Pipeline(steps=[
            ("scale", StandardScaler()),
            ("et", ExtraTreesRegressor(n_estimators=30, random_state=SEED)),
        ])
        ml.fit(data.X[train_idx], data.y[train_idx])
        ml_mape = mean_absolute_percentage_error(
            data.y[test_idx], ml.predict(data.X[test_idx]))

        hybrid = HybridPerformanceModel(
            analytical_model=analytical,
            feature_names=data.feature_names,
            ml_model=ExtraTreesRegressor(n_estimators=30, random_state=SEED),
            random_state=SEED,
        )
        hybrid.fit(data.X[train_idx], data.y[train_idx])
        hybrid_mape = mean_absolute_percentage_error(
            data.y[test_idx], hybrid.predict(data.X[test_idx]))

        print(f"{name:<22} {am_mape:>8.1f}% {ml_mape:>11.1f}% {hybrid_mape:>8.1f}%")

    print("\nThe hybrid model reaches usable accuracy on every machine with the")
    print("same 2% training budget, because the machine-specific analytical model")
    print("carries the hardware knowledge and the ML layer only learns the")
    print("residual; the pure ML model has to relearn each machine from scratch.")


if __name__ == "__main__":
    main()
