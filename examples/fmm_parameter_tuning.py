#!/usr/bin/env python
"""FMM parameter tuning (the paper's Section VII-B use case).

Two parts:

1. **Real solver**: run the from-scratch FMM on a small particle set,
   verify its accuracy against direct summation, and show how the
   per-phase timings shift as the particles-per-leaf parameter ``q``
   changes (the P2P / M2L trade-off the analytical model captures).
2. **Hybrid tuning at scale**: train the hybrid model on a small sample of
   the full (t, N, q, k) configuration space (simulated Blue Waters
   measurements) and use it to pick ``q`` for a target accuracy/order,
   comparing against the true optimum.

Run:  python examples/fmm_parameter_tuning.py
"""

import numpy as np

from repro.analytical import FmmAnalyticalModel
from repro.core import HybridPerformanceModel
from repro.datasets import fmm_dataset
from repro.fmm import DirectSummation, Fmm, random_cube
from repro.ml import ExtraTreesRegressor

SEED = 0


def real_solver_demo() -> None:
    print("=" * 70)
    print("1. Real FMM solver vs direct summation (N = 2000, Laplace kernel)")
    print("=" * 70)
    particles = random_cube(2000, random_state=SEED)
    reference = DirectSummation().potentials(particles)

    print(f"{'q':>5} {'rel. error':>12} {'P2P time':>10} {'M2L time':>10} {'total':>10}")
    for q in (16, 64, 256):
        fmm = Fmm(order=4, max_per_leaf=q, theta=0.55)
        result = fmm.evaluate(particles)
        err = np.linalg.norm(result.potentials - reference) / np.linalg.norm(reference)
        t = result.timings
        print(f"{q:>5} {err:>12.2e} {t.p2p:>9.3f}s {t.m2l:>9.3f}s {t.total:>9.3f}s")
    print("small leaves shift work into M2L, large leaves into P2P\n")


def hybrid_tuning_demo() -> None:
    print("=" * 70)
    print("2. Hybrid model tuning q on the full (t, N, q, k) space")
    print("=" * 70)
    data = fmm_dataset()
    print(data.describe())

    train_idx, test_idx = data.train_test_indices(train_fraction=0.15, random_state=SEED)
    model = HybridPerformanceModel(
        analytical_model=FmmAnalyticalModel(),
        feature_names=data.feature_names,
        ml_model=ExtraTreesRegressor(n_estimators=30, random_state=SEED),
        random_state=SEED,
    )
    model.fit(data.X[train_idx], data.y[train_idx])

    from repro.ml.metrics import mean_absolute_percentage_error

    mape = mean_absolute_percentage_error(data.y[test_idx], model.predict(data.X[test_idx]))
    print(f"hybrid model MAPE on held-out configurations: {mape:.1f}%\n")

    # Pick the best q for a given scenario: N = 16384 particles, order 6,
    # 16 threads (a production-accuracy run on the full node).
    scenario = [(i, cfg) for i, cfg in enumerate(data.configs)
                if cfg.n_particles == 16384 and cfg.order == 6 and cfg.threads == 16]
    indices = np.array([i for i, _ in scenario])
    predicted = model.predict(data.X[indices])
    best_pred = indices[int(np.argmin(predicted))]
    best_true = indices[int(np.argmin(data.y[indices]))]
    print("scenario: N=16384, order k=6, 16 threads")
    print(f"  model-recommended q : {data.configs[best_pred].particles_per_leaf:>4d} "
          f"(true time {data.y[best_pred] * 1e3:.2f} ms)")
    print(f"  true optimal q      : {data.configs[best_true].particles_per_leaf:>4d} "
          f"(true time {data.y[best_true] * 1e3:.2f} ms)")


def main() -> None:
    real_solver_demo()
    hybrid_tuning_demo()


if __name__ == "__main__":
    main()
