#!/usr/bin/env python
"""Stencil auto-tuning with a hybrid performance model.

The motivating use case of the paper's introduction: choosing loop-blocking
parameters for a stencil code without exhaustively running every candidate.
The hybrid model is trained on a small measured sample of the blocking
space and then ranks *all* candidate blockings; we compare the
configuration it recommends against the true optimum (which we can afford
to know here because the measurements come from the simulator).

Run:  python examples/stencil_autotuning.py
"""

import numpy as np

from repro.analytical import StencilAnalyticalModel
from repro.core import HybridPerformanceModel
from repro.datasets.stencil_datasets import stencil_dataset_from_space
from repro.ml import ExtraTreesRegressor
from repro.stencil import StencilConfigSpace

SEED = 1
TRAIN_FRACTION = 0.05
GRID = (1, 128, 128)          # the plane we want to tune blocking for


def main() -> None:
    # Candidate blockings for one target grid: every divisor tile.
    space = StencilConfigSpace(
        grid_sizes=[GRID], blockings="divisors", max_block_candidates=10,
        feature_names=["I", "J", "K", "bi", "bj", "bk"],
    )
    data = stencil_dataset_from_space(space, name="autotune-128x128")
    print(f"candidate blockings: {data.n_samples}")

    # Train the hybrid model on a small measured sample of the candidates.
    train_idx, _ = data.train_test_indices(train_fraction=TRAIN_FRACTION,
                                           random_state=SEED)
    model = HybridPerformanceModel(
        analytical_model=StencilAnalyticalModel(),
        feature_names=data.feature_names,
        ml_model=ExtraTreesRegressor(n_estimators=40, random_state=SEED),
        random_state=SEED,
    )
    model.fit(data.X[train_idx], data.y[train_idx])
    print(f"trained on {len(train_idx)} measured blockings "
          f"({TRAIN_FRACTION:.0%} of the space)\n")

    # Rank every candidate with the model and with the ground truth.
    predicted = model.predict(data.X)
    predicted_best = int(np.argmin(predicted))
    true_best = int(np.argmin(data.y))

    def describe(i: int) -> str:
        cfg = data.configs[i]
        return (f"blocking (bi, bj, bk) = ({cfg.bi}, {cfg.bj}, {cfg.bk})  "
                f"time = {data.y[i] * 1e3:.3f} ms")

    print("model-recommended configuration:")
    print("   " + describe(predicted_best))
    print("true optimum:")
    print("   " + describe(true_best))

    # How much of the attainable speedup does the model's pick capture?
    worst = data.y.max()
    achieved = worst / data.y[predicted_best]
    attainable = worst / data.y[true_best]
    print(f"\nspeedup over the worst blocking: {achieved:.2f}x "
          f"(best attainable {attainable:.2f}x, "
          f"{100 * achieved / attainable:.0f}% of the attainable speedup)")

    # Top-5 candidates by predicted time.
    print("\ntop-5 predicted blockings:")
    order = np.argsort(predicted)[:5]
    for rank, i in enumerate(order, start=1):
        print(f"  {rank}. {describe(i)}  (predicted {predicted[i] * 1e3:.3f} ms)")


if __name__ == "__main__":
    main()
