#!/usr/bin/env python
"""Quickstart: build a hybrid performance model for the blocked stencil.

This is the paper's core workflow in ~40 lines:

1. enumerate a configuration space (grid sizes + loop blocking, the
   Figure 6 dataset),
2. obtain "measured" execution times (here from the Blue Waters stand-in
   simulator; swap in ``StencilExecutor`` to use real measurements on
   laptop-scale grids),
3. train three predictors on a *tiny* uniform random sample — the
   analytical model alone, a pure extra-trees model, and the hybrid model
   that stacks the analytical prediction as an extra feature,
4. compare their MAPE on the held-out configurations.

Run:  python examples/quickstart.py
"""

from repro.analytical import StencilAnalyticalModel
from repro.core import HybridPerformanceModel
from repro.datasets import blocked_small_grid_dataset
from repro.ml import ExtraTreesRegressor, Pipeline, StandardScaler
from repro.ml.metrics import mean_absolute_percentage_error

TRAIN_FRACTION = 0.02   # 2% of the dataset, as in the paper's Figure 6
SEED = 0


def main() -> None:
    # 1-2. Dataset: every (I, J, K, bi, bj, bk) configuration with its time.
    data = blocked_small_grid_dataset()
    print(data.describe())

    train_idx, test_idx = data.train_test_indices(
        train_fraction=TRAIN_FRACTION, random_state=SEED)
    print(f"training on {len(train_idx)} configurations, "
          f"testing on {len(test_idx)}\n")

    analytical = StencilAnalyticalModel()

    # 3a. Analytical model alone (no training at all).
    am_pred = analytical.predict(data.X[test_idx], data.feature_names)

    # 3b. Pure machine learning: standardize + extra trees (Section V).
    ml_model = Pipeline(steps=[
        ("scale", StandardScaler()),
        ("extra_trees", ExtraTreesRegressor(n_estimators=30, random_state=SEED)),
    ])
    ml_model.fit(data.X[train_idx], data.y[train_idx])

    # 3c. Hybrid: the analytical prediction becomes an extra ML feature
    #     (Section VI).
    hybrid = HybridPerformanceModel(
        analytical_model=analytical,
        feature_names=data.feature_names,
        ml_model=ExtraTreesRegressor(n_estimators=30, random_state=SEED),
        random_state=SEED,
    )
    hybrid.fit(data.X[train_idx], data.y[train_idx])

    # 4. Compare on the held-out configurations.
    y_test = data.y[test_idx]
    results = {
        "analytical model (untrained)": am_pred,
        f"extra trees ({TRAIN_FRACTION:.0%} training)": ml_model.predict(data.X[test_idx]),
        f"hybrid model ({TRAIN_FRACTION:.0%} training)": hybrid.predict(data.X[test_idx]),
    }
    print(f"{'model':<38} MAPE")
    print("-" * 48)
    for name, pred in results.items():
        mape = mean_absolute_percentage_error(y_test, pred)
        print(f"{name:<38} {mape:6.1f}%")


if __name__ == "__main__":
    main()
