"""Figure 6: hybrid vs pure extra trees with an *inaccurate* analytical
model (loop blocking added, model untuned).

Expected shape (paper): at 1-4% training the hybrid roughly halves the
pure-ML error even though the analytical model itself is ~40% off.
"""

import pytest

from repro.experiments import figure6


@pytest.mark.benchmark(group="figures")
def test_figure6(benchmark, settings, report):
    result = benchmark.pedantic(lambda: figure6(settings=settings), rounds=1, iterations=1)
    report(result)

    hybrid = result.curves["hybrid"]
    extra_trees = result.curves["extra_trees"]
    # The analytical model alone is substantially wrong (paper: 42%).
    assert result.extra["analytical_mape"] > 20.0
    # Incorporating it still cuts the pure-ML error roughly in half.
    for fraction in (0.01, 0.02, 0.04):
        assert hybrid.mape_at(fraction) < extra_trees.mape_at(fraction)
    assert hybrid.mape_at(0.04) < 0.65 * extra_trees.mape_at(0.04)
