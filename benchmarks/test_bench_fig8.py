"""Figure 8: hybrid vs pure extra trees on the FMM (t, N, q, k) dataset at
15-25% training fractions, with the untuned analytical model.

Expected shape (paper): the analytical model alone has very large error
(paper: 84.5%), the pure ML model retains high error even at 25%
training, and the hybrid improves on both significantly.
"""

import pytest

from repro.experiments import figure8


@pytest.mark.benchmark(group="figures")
def test_figure8(benchmark, settings, report):
    result = benchmark.pedantic(lambda: figure8(settings=settings), rounds=1, iterations=1)
    report(result)

    hybrid = result.curves["hybrid"]
    extra_trees = result.curves["extra_trees"]
    # Analytical model alone is far off (paper: 84.5% MAPE).
    assert result.extra["analytical_mape"] > 50.0
    # The hybrid beats the pure ML model at every tested fraction ...
    for fraction in (0.15, 0.20, 0.25):
        assert hybrid.mape_at(fraction) < extra_trees.mape_at(fraction)
    # ... and beats the analytical model by a wide margin.
    assert min(hybrid.means) < 0.5 * result.extra["analytical_mape"]
