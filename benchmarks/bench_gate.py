"""CI performance gate over the ``BENCH_engine.json`` history.

The benchmark suite (``benchmarks/test_bench_perf.py``) appends one
timestamped entry per benchmark per run to the ``history`` list in
``BENCH_engine.json``.  This script is the enforcement point: after the
benchmarks have run in CI it compares, for every *gated* benchmark, each
tracked speedup ratio in the newest history entry against the previous
entry of the same benchmark, and fails (exit code 1) if any ratio
regressed by more than :data:`TOLERANCE`.

Speedup ratios compare two engines in the same process on the same
machine, so they are largely hardware-independent and comparable across
the heterogeneous machines that contribute history entries.  A workload
counts as *tracked* when it records both a ``speedup`` and an acceptance
``threshold`` — ratios the benchmark suite itself asserts.  Purely
informational ratios (the hist engine's extra-trees fit, which hovers
around 1x and would flap a relative gate) and the ``scheduler_speedup``
benchmark (its ratio tracks the host's core count, ~1 on a small CI
runner) are reported by the suite but not gated.

Usage::

    python benchmarks/bench_gate.py [path/to/BENCH_engine.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Maximum tolerated relative drop of a speedup ratio vs the previous entry.
TOLERANCE = 0.25

#: Benchmarks whose ``speedup`` fields are gated (hardware-independent
#: engine-vs-engine ratios).  ``scheduler_speedup`` tracks core count and
#: is informational only.
GATED_BENCHMARKS = ("engine_redesign", "hist_engine")

DEFAULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _tracked(entry: dict) -> dict[str, dict]:
    """``workload name -> fields`` for every *tracked* workload.

    Tracked = the workload records both a speedup and an acceptance
    threshold (see module docstring); threshold-less ratios are
    informational and excluded from the gate.
    """
    return {
        name: fields
        for name, fields in entry.get("workloads", {}).items()
        if "speedup" in fields and "threshold" in fields
    }


def _baseline_for(entries: list[dict], name: str, scale) -> float | None:
    """Most recent prior speedup of workload *name* at the same scale.

    Workload sizes are tunable per environment (``REPRO_BENCH_PERF_TREES``
    scales CI down); comparing a 30-tree ratio against a 100-tree ratio
    would gate noise, so a baseline must record the same ``n_trees`` as
    the current entry (both absent counts as a match).
    """
    for prev in reversed(entries):
        fields = _tracked(prev).get(name)
        if fields is not None and fields.get("n_trees") == scale:
            return float(fields["speedup"])
    return None


def check_history(history: list[dict]) -> list[str]:
    """Return a list of human-readable gate failures (empty = pass)."""
    failures: list[str] = []
    for benchmark in GATED_BENCHMARKS:
        entries = [e for e in history if e.get("benchmark") == benchmark]
        if not entries:
            print(f"[bench-gate] {benchmark}: no entries")
            continue
        current = entries[-1]
        for name, fields in _tracked(current).items():
            speedup = float(fields["speedup"])
            baseline = _baseline_for(entries[:-1], name, fields.get("n_trees"))
            if baseline is None:
                print(f"[bench-gate] {benchmark}/{name}: {speedup:.2f}x, "
                      f"no prior entry at this workload scale — skipped")
                continue
            floor = baseline * (1.0 - TOLERANCE)
            status = "OK" if speedup >= floor else "REGRESSED"
            print(f"[bench-gate] {benchmark}/{name}: {speedup:.2f}x vs "
                  f"previous {baseline:.2f}x (floor {floor:.2f}x) {status}")
            if speedup < floor:
                failures.append(
                    f"{benchmark}/{name}: speedup {speedup:.2f}x regressed more "
                    f"than {TOLERANCE:.0%} below the previous {baseline:.2f}x")
    return failures


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    path = Path(args[0]) if args else DEFAULT_PATH
    if not path.exists():
        print(f"[bench-gate] {path} not found — did the benchmark suite run?")
        return 1
    stored = json.loads(path.read_text())
    history = stored.get("history", []) if isinstance(stored, dict) else []
    if not history:
        print(f"[bench-gate] {path} has no history entries")
        return 1
    failures = check_history(history)
    if failures:
        print("[bench-gate] FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("[bench-gate] all tracked speedup ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
