"""CI performance gate over the ``BENCH_engine.json`` history.

The benchmark suite (``benchmarks/test_bench_perf.py``) appends one
timestamped entry per benchmark per run to the ``history`` list in
``BENCH_engine.json``.  This script is the enforcement point: after the
benchmarks have run in CI it compares, for every *gated* benchmark, each
tracked speedup ratio in the newest history entry against the previous
entry of the same benchmark, and fails (exit code 1) if any ratio
regressed by more than :data:`TOLERANCE`.

Speedup ratios compare two engines in the same process on the same
machine, so they are largely hardware-independent and comparable across
the heterogeneous machines that contribute history entries.  A workload
counts as *tracked* when it records both a ``speedup`` and an acceptance
``threshold`` — ratios the benchmark suite itself asserts.  Purely
informational ratios (the hist engine's extra-trees fit, which hovers
around 1x and would flap a relative gate) are reported by the suite but
not gated.

``scheduler_speedup`` gets an *absolute* floor instead of the relative
one: parallel-vs-serial tracks the host's core count, so comparing
entries from heterogeneous machines would gate noise.  The newest entry
must beat serial (> 1.0x) when it was recorded on a multi-core host, and
stay near parity (>= :data:`SCHEDULER_SINGLE_CORE_FLOOR`) on a
single-core box, where parallel physically cannot win and the floor
bounds pure scheduling overhead instead.  Only entries from the
warm-pool benchmark protocol (they record a ``phases`` breakdown) are
gated; older per-plan-spawn entries are informational history.

Usage::

    python benchmarks/bench_gate.py [path/to/BENCH_engine.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Maximum tolerated relative drop of a speedup ratio vs the previous entry.
TOLERANCE = 0.25

#: Benchmarks whose ``speedup`` fields are gated (hardware-independent
#: engine-vs-engine ratios — ``serving_latency``'s batched-vs-single
#: request ratio divides out raw host speed the same way).
#: ``scheduler_speedup`` tracks core count and gets an absolute
#: cpus-conditional floor instead (see below).
GATED_BENCHMARKS = ("engine_redesign", "hist_engine", "serving_latency")

#: Absolute floors for the newest warm-pool ``scheduler_speedup`` entry:
#: on a multi-core host the parallel sweep must beat serial outright; on
#: a single-core host it must stay near parity (the floor bounds the
#: scheduler's total overhead — pool dispatch, pickling, merge — since a
#: speedup > 1 is physically impossible there).
SCHEDULER_MULTI_CORE_FLOOR = 1.0
SCHEDULER_SINGLE_CORE_FLOOR = 0.65

DEFAULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _tracked(entry: dict) -> dict[str, dict]:
    """``workload name -> fields`` for every *tracked* workload.

    Tracked = the workload records both a speedup and an acceptance
    threshold (see module docstring); threshold-less ratios are
    informational and excluded from the gate.
    """
    return {
        name: fields
        for name, fields in entry.get("workloads", {}).items()
        if "speedup" in fields and "threshold" in fields
    }


def _baseline_for(entries: list[dict], name: str, scale) -> float | None:
    """Most recent prior speedup of workload *name* at the same scale.

    Workload sizes are tunable per environment (``REPRO_BENCH_PERF_TREES``
    scales CI down); comparing a 30-tree ratio against a 100-tree ratio
    would gate noise, so a baseline must record the same ``n_trees`` as
    the current entry (both absent counts as a match).
    """
    for prev in reversed(entries):
        fields = _tracked(prev).get(name)
        if fields is not None and fields.get("n_trees") == scale:
            return float(fields["speedup"])
    return None


def check_scheduler(history: list[dict]) -> list[str]:
    """Absolute-floor gate on the newest ``scheduler_speedup`` entry.

    Only warm-pool entries (recording a ``phases`` breakdown) are gated;
    entries predating the warm-pool protocol are informational.  The
    floor depends on the ``cpus`` the entry recorded: > 1.0x on
    multi-core hosts, near-parity on single-core ones.
    """
    failures: list[str] = []
    entries = [e for e in history if e.get("benchmark") == "scheduler_speedup"]
    if not entries:
        print("[bench-gate] scheduler_speedup: no entries")
        return failures
    current = entries[-1]
    for name, fields in current.get("workloads", {}).items():
        if "phases" not in fields or "speedup" not in fields:
            print(f"[bench-gate] scheduler_speedup/{name}: pre-warm-pool "
                  f"entry — skipped")
            continue
        speedup = float(fields["speedup"])
        multi_core = (current.get("cpus") or 1) > 1
        floor = (SCHEDULER_MULTI_CORE_FLOOR if multi_core
                 else SCHEDULER_SINGLE_CORE_FLOOR)
        kind = "multi-core" if multi_core else "single-core"
        status = "OK" if speedup > floor else "TOO SLOW"
        print(f"[bench-gate] scheduler_speedup/{name}: {speedup:.2f}x vs "
              f"{kind} floor {floor:.2f}x {status}")
        if speedup <= floor:
            failures.append(
                f"scheduler_speedup/{name}: warm-pool speedup {speedup:.2f}x "
                f"at or below the {kind} floor {floor:.2f}x")
    return failures


def check_history(history: list[dict]) -> list[str]:
    """Return a list of human-readable gate failures (empty = pass)."""
    failures: list[str] = []
    for benchmark in GATED_BENCHMARKS:
        entries = [e for e in history if e.get("benchmark") == benchmark]
        if not entries:
            print(f"[bench-gate] {benchmark}: no entries")
            continue
        current = entries[-1]
        for name, fields in _tracked(current).items():
            speedup = float(fields["speedup"])
            baseline = _baseline_for(entries[:-1], name, fields.get("n_trees"))
            if baseline is None:
                print(f"[bench-gate] {benchmark}/{name}: {speedup:.2f}x, "
                      f"no prior entry at this workload scale — skipped")
                continue
            floor = baseline * (1.0 - TOLERANCE)
            status = "OK" if speedup >= floor else "REGRESSED"
            print(f"[bench-gate] {benchmark}/{name}: {speedup:.2f}x vs "
                  f"previous {baseline:.2f}x (floor {floor:.2f}x) {status}")
            if speedup < floor:
                failures.append(
                    f"{benchmark}/{name}: speedup {speedup:.2f}x regressed more "
                    f"than {TOLERANCE:.0%} below the previous {baseline:.2f}x")
    failures.extend(check_scheduler(history))
    return failures


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    path = Path(args[0]) if args else DEFAULT_PATH
    if not path.exists():
        print(f"[bench-gate] {path} not found — did the benchmark suite run?")
        return 1
    stored = json.loads(path.read_text())
    history = stored.get("history", []) if isinstance(stored, dict) else []
    if not history:
        print(f"[bench-gate] {path} has no history entries")
        return 1
    failures = check_history(history)
    if failures:
        print("[bench-gate] FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("[bench-gate] all tracked speedup ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
