"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not figures from the paper; these quantify the contribution of each
ingredient of the hybrid model (aggregation stage, analytical-model
quality, sampling strategy, choice of stacked learner).
"""

import pytest

from repro.experiments import (
    ablation_aggregation,
    ablation_analytical_quality,
    ablation_ml_backend,
    ablation_sampling_strategy,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_aggregation(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: ablation_aggregation(settings=settings), rounds=1, iterations=1)
    report(result)
    stacked = result.curves["hybrid_stacked_only"]
    aggregated = result.curves["hybrid_aggregated"]
    # Aggregating with a ~35%-MAPE analytical model cannot beat pure
    # stacking by much; it must stay within a factor of the analytical error.
    assert min(aggregated.means) < result.extra["analytical_only_mape"]
    assert min(stacked.means) <= min(aggregated.means) * 1.5


@pytest.mark.benchmark(group="ablations")
def test_ablation_analytical_quality(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: ablation_analytical_quality(settings=settings), rounds=1, iterations=1)
    report(result)
    # A calibrated analytical model is never worse standalone than the
    # untuned one (the hybrid itself is invariant to that rescaling).
    assert result.extra["calibrated_am_mape"] <= result.extra["untuned_am_mape"]
    full = result.curves["hybrid_full_am"]
    constant = result.curves["hybrid_constant_am"]
    # The informative analytical model beats the uninformative one at the
    # largest tested fraction: the hybrid's advantage really does come from
    # the analytical feature, not from the extra column itself.
    assert full.mape_at(0.04) < constant.mape_at(0.04)


@pytest.mark.benchmark(group="ablations")
def test_ablation_sampling_strategy(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: ablation_sampling_strategy(settings=settings), rounds=1, iterations=1)
    report(result)
    assert set(result.curves) == {"hybrid_uniform", "hybrid_stratified"}


@pytest.mark.benchmark(group="ablations")
def test_ablation_ml_backend(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: ablation_ml_backend(settings=settings), rounds=1, iterations=1)
    report(result)
    et = result.curves["hybrid_extra_trees"]
    knn = result.curves["hybrid_knn"]
    # Extra trees (the paper's choice) is at least competitive with the
    # alternative stacked learners.
    assert min(et.means) <= min(knn.means) * 1.25
