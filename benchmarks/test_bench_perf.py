"""Performance-trajectory tracking.

Appends one timestamped entry per benchmark run to the ``history`` list
in ``BENCH_engine.json`` at the repository root (entries from before the
history format are migrated in place), so the perf trajectory accumulates
across PRs instead of each run overwriting the last.

Two benchmarks are tracked:

* ``engine_redesign`` — the vectorized tree-ensemble engine against the
  seed ("legacy") implementation *in the same process*: forest fit at the
  acceptance workload (``ExtraTreesRegressor(n_estimators=100)`` at
  ``n = 2000``) and one quick-preset Figure 3 (FMM) run.
* ``scheduler_speedup`` — the plan-based experiment scheduler running a
  quick multi-experiment sweep serially vs. through a *warm*
  :class:`~repro.experiments.pool.WorkerPool` with ``--jobs 4`` (both
  against a pre-warmed dataset store, so only the scheduling changes).
  The pooled sweep is timed on its *second* consecutive invocation of
  the same pool — the steady-state an experiment sequence sees: workers
  already spawned, per-plan memos warm, the dataset mapped via shared
  memory.  The cold first invocation and a phase breakdown (spawn,
  dispatch, compute, merge) are recorded alongside.  The speedup is
  recorded here and enforced by ``bench_gate.py`` (it tracks the host's
  core count, so the floor is conditional on ``cpus``); the rows are
  asserted bit-identical in-test, which *is* hardware-independent.
* ``hist_engine`` — the histogram-binned ``"hist"`` splitter against the
  exact ``"batched"`` engine on a full registry dataset
  (``stencil-blocked``, n=3364): RandomForest fit speedup (asserted
  >= 2x), ExtraTrees fit speedup (recorded), and the quick Figure-5
  quality check (held-out R^2 of the binned extra-trees model within
  0.02 of the exact engine's, plus both engines' learning-curve MAPEs).

Scale the legacy workload down with ``REPRO_BENCH_PERF_TREES`` (and the
hist workload with ``REPRO_BENCH_HIST_TREES``) if a constrained machine
cannot afford the ~1.5 minute legacy fit.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import DatasetStore
from repro.datasets.registry import load_dataset
from repro.experiments import figure3_fmm, figure5, run_all
from repro.experiments.runner import ExperimentSettings
from repro.ml import ExtraTreesRegressor, RandomForestRegressor, use_engines
from repro.ml.metrics import r2_score
from repro.ml.model_selection import train_test_split

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_engine.json"

#: Acceptance thresholds of the engine-redesign PR.
MIN_FOREST_FIT_SPEEDUP = 5.0
MIN_FIGURE3_SPEEDUP = 3.0

#: Acceptance thresholds of the histogram-engine PR.
MIN_HIST_FIT_SPEEDUP = 2.0
MAX_HIST_R2_GAP = 0.02
HIST_DATASET = "stencil-blocked"  # full registry dataset, n = 3364 >= 2000

#: Experiments of the scheduler-speedup sweep (several figures sharing
#: datasets, so the store amortizes generation across them).
SCHEDULER_SWEEP = ("figure3_stencil", "figure5", "figure6", "figure7")
SCHEDULER_JOBS = 4


def _time(func) -> tuple[float, object]:
    start = time.perf_counter()
    result = func()
    return time.perf_counter() - start, result


def _best_of(func, reps: int = 2) -> float:
    """Best wall-clock of *reps* runs (tames scheduler noise on CI boxes)."""
    return min(_time(func)[0] for _ in range(reps))


def _append_history(entry: dict) -> None:
    """Append *entry* to the history list, migrating the pre-history format."""
    history: list = []
    if RESULT_PATH.exists():
        stored = json.loads(RESULT_PATH.read_text())
        if isinstance(stored, dict) and "history" in stored:
            history = stored["history"]
        elif stored:
            # One flat pre-history result becomes the first history entry.
            history = [stored]
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
             **entry}
    history.append(entry)
    RESULT_PATH.write_text(json.dumps({"history": history}, indent=2) + "\n")


def _platform_fields() -> dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
    }


@pytest.mark.benchmark(group="engines")
def test_engine_redesign_speedups():
    n_trees = int(os.environ.get("REPRO_BENCH_PERF_TREES", "100"))
    rng = np.random.default_rng(0)
    n = 2000
    X = rng.uniform(0.0, 10.0, size=(n, 6))
    y = np.sin(X[:, 0]) + 0.1 * X[:, 1] * X[:, 2] + 0.1 * rng.normal(size=n)

    def fit_forest():
        ExtraTreesRegressor(n_estimators=n_trees, random_state=0).fit(X, y)

    settings = ExperimentSettings.quick()

    def run_figure3():
        figure3_fmm(settings=settings)

    # Vectorized engines (current defaults: batched fit + packed predict,
    # analytical caching in the experiment pipeline).
    t_fit_new, _ = _time(fit_forest)
    t_fig3_new, _ = _time(run_figure3)

    # Seed implementation, same process, via the legacy engine flag.
    with use_engines(tree="legacy", forest="legacy"):
        t_fit_legacy, _ = _time(fit_forest)
        t_fig3_legacy, _ = _time(run_figure3)

    fit_speedup = t_fit_legacy / t_fit_new
    fig3_speedup = t_fig3_legacy / t_fig3_new

    entry = {
        "benchmark": "engine_redesign",
        **_platform_fields(),
        "workloads": {
            "extra_trees_fit": {
                "description": f"ExtraTreesRegressor(n_estimators={n_trees}).fit, "
                               f"n={n}, d=6",
                "n_trees": n_trees,
                "legacy_seconds": round(t_fit_legacy, 4),
                "vectorized_seconds": round(t_fit_new, 4),
                "speedup": round(fit_speedup, 2),
                "threshold": MIN_FOREST_FIT_SPEEDUP,
            },
            "figure3_fmm_quick": {
                "description": "figure3_fmm(ExperimentSettings.quick())",
                "legacy_seconds": round(t_fig3_legacy, 4),
                "vectorized_seconds": round(t_fig3_new, 4),
                "speedup": round(fig3_speedup, 2),
                "threshold": MIN_FIGURE3_SPEEDUP,
            },
        },
    }
    _append_history(entry)
    print()
    print(json.dumps(entry["workloads"], indent=2))

    assert fit_speedup >= MIN_FOREST_FIT_SPEEDUP, (
        f"forest fit speedup {fit_speedup:.1f}x below {MIN_FOREST_FIT_SPEEDUP}x")
    assert fig3_speedup >= MIN_FIGURE3_SPEEDUP, (
        f"figure3 speedup {fig3_speedup:.1f}x below {MIN_FIGURE3_SPEEDUP}x")


@pytest.mark.benchmark(group="engines")
def test_hist_engine_speedup():
    """Histogram-binned split search vs the exact batched engine.

    The asserted workload is the acceptance criterion of the hist-engine
    PR: a RandomForest fit on a full registry dataset (n >= 2000) at
    least twice as fast as the exact batched engine, with the binned
    extra-trees model's held-out R^2 on the quick Figure-5 dataset
    within 0.02 of the exact engine's.
    """
    n_trees = int(os.environ.get("REPRO_BENCH_HIST_TREES", "100"))
    dataset = load_dataset(HIST_DATASET)
    X, y = dataset.X, dataset.y

    def fit_rf(tree_method):
        return lambda: RandomForestRegressor(
            n_estimators=n_trees, random_state=0, tree_method=tree_method,
        ).fit(X, y)

    def fit_et(tree_method):
        return lambda: ExtraTreesRegressor(
            n_estimators=n_trees, random_state=0, tree_method=tree_method,
        ).fit(X, y)

    t_rf_exact = _best_of(fit_rf("exact"))
    t_rf_hist = _best_of(fit_rf("hist"))
    t_et_exact = _best_of(fit_et("exact"))
    t_et_hist = _best_of(fit_et("hist"))
    rf_speedup = t_rf_exact / t_rf_hist
    et_speedup = t_et_exact / t_et_hist

    # Quick Figure-5 quality: the binned engine must reproduce the
    # learning-curve experiment.  R^2 is compared at the curve's largest
    # ML training fraction; both engines' MAPE curves are recorded.
    settings = ExperimentSettings.quick()
    fig5_exact = figure5(settings=settings)
    with use_engines(tree="hist", forest="hist"):
        fig5_hist = figure5(settings=settings)
    curves = {
        label: {
            "exact": [round(p.mean, 3) for p in fig5_exact.curves[label].points],
            "hist": [round(p.mean, 3) for p in fig5_hist.curves[label].points],
        }
        for label in fig5_exact.curves
    }
    fig5_ds = load_dataset("stencil-grid-only", max_configs=settings.max_configs,
                           random_state=0)
    Xtr, Xte, ytr, yte = train_test_split(fig5_ds.X, fig5_ds.y, test_size=0.25,
                                          random_state=0)
    r2_exact = r2_score(yte, ExtraTreesRegressor(
        n_estimators=settings.n_estimators, random_state=0,
        tree_method="exact").fit(Xtr, ytr).predict(Xte))
    r2_hist = r2_score(yte, ExtraTreesRegressor(
        n_estimators=settings.n_estimators, random_state=0,
        tree_method="hist").fit(Xtr, ytr).predict(Xte))

    entry = {
        "benchmark": "hist_engine",
        **_platform_fields(),
        "workloads": {
            "random_forest_fit": {
                "description": f"RandomForestRegressor(n_estimators={n_trees}).fit "
                               f"on {HIST_DATASET} (n={X.shape[0]}), hist vs batched",
                "n_trees": n_trees,
                "exact_seconds": round(t_rf_exact, 4),
                "hist_seconds": round(t_rf_hist, 4),
                "speedup": round(rf_speedup, 2),
                "threshold": MIN_HIST_FIT_SPEEDUP,
            },
            "extra_trees_fit": {
                "description": f"ExtraTreesRegressor(n_estimators={n_trees}).fit "
                               f"on {HIST_DATASET} (n={X.shape[0]}), hist vs batched",
                "n_trees": n_trees,
                "exact_seconds": round(t_et_exact, 4),
                "hist_seconds": round(t_et_hist, 4),
                "speedup": round(et_speedup, 2),
            },
            "figure5_quick_quality": {
                "description": "figure5(quick): hist vs exact engines",
                "r2_exact": round(r2_exact, 4),
                "r2_hist": round(r2_hist, 4),
                "r2_gap": round(abs(r2_exact - r2_hist), 4),
                "threshold": MAX_HIST_R2_GAP,
                "mape_curves": curves,
            },
        },
    }
    _append_history(entry)
    print()
    print(json.dumps(entry["workloads"], indent=2))

    assert rf_speedup >= MIN_HIST_FIT_SPEEDUP, (
        f"hist RandomForest fit speedup {rf_speedup:.2f}x below "
        f"{MIN_HIST_FIT_SPEEDUP}x")
    assert abs(r2_exact - r2_hist) <= MAX_HIST_R2_GAP, (
        f"hist R^2 {r2_hist:.4f} deviates from exact {r2_exact:.4f} by more "
        f"than {MAX_HIST_R2_GAP}")


@pytest.mark.benchmark(group="scheduler")
def test_scheduler_speedup(tmp_path):
    from repro.experiments.pool import WorkerPool

    settings = ExperimentSettings.quick()
    store_dir = tmp_path / "store"

    # Pre-warm the store so dataset generation and analytical warm-up are
    # shared, identical costs for both executors.
    run_all(settings, SCHEDULER_SWEEP, store=DatasetStore(store_dir))

    t_serial, serial = _time(
        lambda: run_all(settings, SCHEDULER_SWEEP, store=DatasetStore(store_dir)))

    with WorkerPool(SCHEDULER_JOBS) as pool:
        def pooled_sweep():
            return run_all(settings, SCHEDULER_SWEEP,
                           store=DatasetStore(store_dir),
                           executor="process", jobs=SCHEDULER_JOBS, pool=pool)

        # Cold: workers freshly spawned, per-plan memos empty.  Warm: the
        # second consecutive sweep on the same pool — the steady state an
        # experiment sequence sees, and the timed quantity.
        t_cold, cold = _time(pooled_sweep)
        stats_cold = dict(pool.stats)
        t_warm, warm = _time(pooled_sweep)

        # Observability overhead, informational: the same warm sweep
        # with a trace collection active (a span per cell shipped back
        # from every pool worker) — batch shapes and rows are identical
        # either way, so the delta is the price of tracing *on*.
        from repro.obs import TRACER

        with TRACER.collect() as trace_spans:
            t_traced, traced = _time(pooled_sweep)
        phases = {
            "pool_spawn_seconds": round(pool.stats["spawn_seconds"], 4),
            "dispatch_seconds": round(
                pool.stats["dispatch_seconds"] - stats_cold["dispatch_seconds"], 4),
            "compute_seconds": round(
                pool.stats["compute_seconds"] - stats_cold["compute_seconds"], 4),
            "merge_seconds": round(
                pool.stats["merge_seconds"] - stats_cold["merge_seconds"], 4),
            "batches": pool.stats["batches"] - stats_cold["batches"],
            "cells": pool.stats["cells"] - stats_cold["cells"],
        }
        spawn_count = pool.spawn_count

    for name in SCHEDULER_SWEEP:
        assert cold[name].rows() == serial[name].rows(), (
            f"cold pooled rows differ from serial for {name}")
        assert warm[name].rows() == serial[name].rows(), (
            f"warm pooled rows differ from serial for {name}")
        assert traced[name].rows() == serial[name].rows(), (
            f"traced pooled rows differ from serial for {name}")
    assert spawn_count == SCHEDULER_JOBS, (
        f"warm pool respawned workers: {spawn_count} spawns for "
        f"{SCHEDULER_JOBS} jobs across three sweeps")

    # The overhead guard: tracing *off* must be free.  A disabled span
    # site costs one attribute check; as many disabled entries as the
    # traced sweep actually produced spans must cost well under 2% of
    # the measured warm-sweep wall time.
    n_spans = len(trace_spans)
    probe_start = time.perf_counter()
    for _ in range(n_spans):
        with TRACER.span("overhead-probe"):
            pass
    t_disabled_spans = time.perf_counter() - probe_start
    assert t_disabled_spans < 0.02 * t_warm, (
        f"{n_spans} disabled span sites cost {t_disabled_spans:.4f}s — "
        f">= 2% of the {t_warm:.4f}s warm sweep; tracing is no longer "
        "free when off")

    # Recorded here, enforced in bench_gate.py: > 1.0 on multi-core hosts,
    # a near-parity floor on single-core boxes where parallel cannot win.
    speedup = t_serial / t_warm
    entry = {
        "benchmark": "scheduler_speedup",
        **_platform_fields(),
        "workloads": {
            "run_all_quick_sweep": {
                "description": f"run_all({', '.join(SCHEDULER_SWEEP)}; quick, warm store) "
                               f"serial vs warm WorkerPool --jobs {SCHEDULER_JOBS} "
                               f"(second consecutive sweep on one pool)",
                "serial_seconds": round(t_serial, 4),
                "process_cold_seconds": round(t_cold, 4),
                "process_seconds": round(t_warm, 4),
                "jobs": SCHEDULER_JOBS,
                "speedup": round(speedup, 2),
                "phases": phases,
                # Informational, not gated: wall-time cost of running the
                # same warm sweep with a trace collection active, and the
                # measured cost of the equivalent number of *disabled*
                # span sites (the quantity the 2% in-test guard bounds).
                "tracing": {
                    "process_traced_seconds": round(t_traced, 4),
                    "traced_minus_warm_seconds": round(t_traced - t_warm, 4),
                    "spans": n_spans,
                    "disabled_spans_seconds": round(t_disabled_spans, 6),
                },
            },
        },
    }
    _append_history(entry)
    print()
    print(json.dumps(entry["workloads"], indent=2))


#: Acceptance threshold of the serving-tier PR: serving N rows as one
#: micro-batched request must beat N sequential single-row requests by
#: at least this factor.  The ratio divides out raw hardware speed (both
#: sides run the same model on the same host), so it is gateable.
MIN_SERVING_BATCH_SPEEDUP = 3.0
SERVING_BATCH_ROWS = 64


@pytest.mark.benchmark(group="serving")
def test_serving_latency():
    """Throughput of the model server: batched vs single-row requests.

    Publishes the quick Figure-5 models into an in-memory store, serves
    them over real HTTP, and times ``SERVING_BATCH_ROWS`` sequential
    single-row ``/predict`` requests against one request carrying all
    rows at once (the vectorized path micro-batching converges to under
    concurrent load).  Records the speedup (gated, relative) plus
    single-row latency percentiles (informational).
    """
    import json as _json
    import urllib.request

    from repro.experiments.plan import experiment_plan
    from repro.experiments.scheduler import _resolve_data
    from repro.serving import ModelServer, decode_model, publish_plan_models

    settings = ExperimentSettings.quick()
    plan = experiment_plan("figure5", settings)
    store = DatasetStore("memory://")
    dataset, caches = _resolve_data(plan, store)
    publish_plan_models(plan, dataset, caches, store)
    rows = dataset.X[:SERVING_BATCH_ROWS]

    def post(url, body):
        req = urllib.request.Request(url, data=_json.dumps(body).encode(),
                                     headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req) as resp:
            return _json.loads(resp.read())

    with ModelServer(store) as server:
        url = server.url + "predict"

        def body(chunk):
            return {"plan": plan.fingerprint, "series": "hybrid",
                    "rows": chunk.tolist()}

        post(url, body(rows[:1]))  # load + decode the model off the clock

        def singles():
            latencies = []
            for row in rows:
                t, out = _time(lambda r=row: post(url, body(r[None, :])))
                latencies.append(t)
                assert len(out["predictions"]) == 1
            return latencies

        t_singles, latencies = _time(singles)
        t_batch = _best_of(lambda: post(url, body(rows)), reps=3)
        batched = np.array(post(url, body(rows))["predictions"])

    # Value check rides along: the batched reply must equal the
    # concatenation of what single-row service would produce.
    served = decode_model(store.model_bytes(plan.fingerprint, "hybrid"))
    assert np.array_equal(batched, served.predict_rows(rows))

    speedup = t_singles / t_batch
    lat = np.sort(np.array(latencies))
    entry = {
        "benchmark": "serving_latency",
        **_platform_fields(),
        "workloads": {
            "predict_batch_vs_single": {
                "description": f"ModelServer /predict: {SERVING_BATCH_ROWS} "
                               f"single-row requests vs one "
                               f"{SERVING_BATCH_ROWS}-row request (hybrid, "
                               f"quick figure5)",
                "single_rows_seconds": round(t_singles, 4),
                "batch_seconds": round(t_batch, 4),
                "rows": SERVING_BATCH_ROWS,
                "speedup": round(speedup, 2),
                "threshold": MIN_SERVING_BATCH_SPEEDUP,
            },
            "single_row_latency": {
                "description": "per-request wall clock of the single-row "
                               "/predict path (informational)",
                "p50_ms": round(float(lat[len(lat) // 2]) * 1e3, 3),
                "p99_ms": round(float(lat[min(len(lat) - 1, int(len(lat) * 0.99))]) * 1e3, 3),
                "max_ms": round(float(lat[-1]) * 1e3, 3),
            },
        },
    }
    _append_history(entry)
    print()
    print(json.dumps(entry["workloads"], indent=2))

    assert speedup >= MIN_SERVING_BATCH_SPEEDUP, (
        f"batched serving speedup {speedup:.1f}x below "
        f"{MIN_SERVING_BATCH_SPEEDUP}x")
