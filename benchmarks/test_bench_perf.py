"""Engine-redesign performance tracking.

Times the vectorized tree-ensemble engine against the seed ("legacy")
implementation *in the same process* — forest fit at the acceptance
workload (``ExtraTreesRegressor(n_estimators=100)`` at ``n = 2000``) and
one quick-preset Figure 3 (FMM) run — and writes the measurements to
``BENCH_engine.json`` at the repository root so the performance
trajectory is tracked from the engine-redesign PR onward.

Scale the legacy workload down with ``REPRO_BENCH_PERF_TREES`` if a
constrained machine cannot afford the ~1.5 minute legacy fit.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import figure3_fmm
from repro.experiments.runner import ExperimentSettings
from repro.ml import ExtraTreesRegressor, use_engines

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_engine.json"

#: Acceptance thresholds of the engine-redesign PR.
MIN_FOREST_FIT_SPEEDUP = 5.0
MIN_FIGURE3_SPEEDUP = 3.0


def _time(func) -> float:
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="engines")
def test_engine_redesign_speedups():
    n_trees = int(os.environ.get("REPRO_BENCH_PERF_TREES", "100"))
    rng = np.random.default_rng(0)
    n = 2000
    X = rng.uniform(0.0, 10.0, size=(n, 6))
    y = np.sin(X[:, 0]) + 0.1 * X[:, 1] * X[:, 2] + 0.1 * rng.normal(size=n)

    def fit_forest():
        ExtraTreesRegressor(n_estimators=n_trees, random_state=0).fit(X, y)

    settings = ExperimentSettings.quick()

    def run_figure3():
        figure3_fmm(settings=settings)

    # Vectorized engines (current defaults: batched fit + packed predict,
    # analytical caching in the experiment pipeline).
    t_fit_new = _time(fit_forest)
    t_fig3_new = _time(run_figure3)

    # Seed implementation, same process, via the legacy engine flag.
    with use_engines(tree="legacy", forest="legacy"):
        t_fit_legacy = _time(fit_forest)
        t_fig3_legacy = _time(run_figure3)

    fit_speedup = t_fit_legacy / t_fit_new
    fig3_speedup = t_fig3_legacy / t_fig3_new

    result = {
        "benchmark": "engine_redesign",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "workloads": {
            "extra_trees_fit": {
                "description": f"ExtraTreesRegressor(n_estimators={n_trees}).fit, "
                               f"n={n}, d=6",
                "legacy_seconds": round(t_fit_legacy, 4),
                "vectorized_seconds": round(t_fit_new, 4),
                "speedup": round(fit_speedup, 2),
                "threshold": MIN_FOREST_FIT_SPEEDUP,
            },
            "figure3_fmm_quick": {
                "description": "figure3_fmm(ExperimentSettings.quick())",
                "legacy_seconds": round(t_fig3_legacy, 4),
                "vectorized_seconds": round(t_fig3_new, 4),
                "speedup": round(fig3_speedup, 2),
                "threshold": MIN_FIGURE3_SPEEDUP,
            },
        },
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print()
    print(json.dumps(result["workloads"], indent=2))

    assert fit_speedup >= MIN_FOREST_FIT_SPEEDUP, (
        f"forest fit speedup {fit_speedup:.1f}x below {MIN_FOREST_FIT_SPEEDUP}x")
    assert fig3_speedup >= MIN_FIGURE3_SPEEDUP, (
        f"figure3 speedup {fig3_speedup:.1f}x below {MIN_FIGURE3_SPEEDUP}x")
