"""Figure 7: hybrid vs pure extra trees on the multithreaded stencil
dataset, where the (serial) analytical model does not cover the threads
dimension at all.

Expected shape (paper): the hybrid is at least as accurate as the pure ML
model.  Deviation note (see EXPERIMENTS.md): with the paper's literal
configuration space this dataset has only 128 points, so 1-4% training
means 3-5 samples and the two models end up statistically tied on our
simulated measurements.
"""

import pytest

from repro.experiments import figure7


@pytest.mark.benchmark(group="figures")
def test_figure7(benchmark, settings, report):
    result = benchmark.pedantic(lambda: figure7(settings=settings), rounds=1, iterations=1)
    report(result)

    hybrid = result.curves["hybrid"]
    extra_trees = result.curves["extra_trees"]
    # The serial analytical model is blind to threads, hence clearly wrong
    # on its own ...
    assert result.extra["analytical_mape"] > 20.0
    # ... and the hybrid never does meaningfully worse than pure ML.
    for fraction in (0.01, 0.02, 0.04):
        assert hybrid.mape_at(fraction) <= extra_trees.mape_at(fraction) * 1.35
