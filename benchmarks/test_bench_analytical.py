"""In-text analytical-model accuracy numbers.

The paper quotes the standalone analytical-model MAPE for the blocked
stencil dataset (42%) and the FMM dataset (84.5%).  This benchmark
regenerates the analytical-model MAPE (and the log-space correlation with
the measurements) for every dataset in the evaluation.
"""

import pytest

from repro.experiments import analytical_accuracy


@pytest.mark.benchmark(group="analytical")
def test_analytical_accuracy(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: analytical_accuracy(settings=settings), rounds=1, iterations=1)
    report(result)

    blocked = result.extra["stencil-blocked"]
    fmm = result.extra["fmm"]
    # Same band as the paper's in-text numbers: tens of percent for the
    # blocked stencil, around or above 100% for the FMM.
    assert 15.0 < blocked["mape"] < 80.0
    assert fmm["mape"] > 60.0
    # Despite the error magnitude the models rank configurations well,
    # which is what the hybrid approach exploits.
    assert blocked["log_correlation"] > 0.9
    assert fmm["log_correlation"] > 0.8
