"""Figure 3B: MAPE of decision trees / extra trees / random forests on the
FMM (t, N, q, k) dataset at 10-80% training fractions.

Expected shape (paper): even with very large training sets the pure ML
models retain substantial error on the FMM response surface, and accuracy
improves (slowly) with the training fraction.
"""

import pytest

from repro.experiments import figure3_fmm


@pytest.mark.benchmark(group="figures")
def test_figure3_fmm(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure3_fmm(settings=settings), rounds=1, iterations=1)
    report(result)

    et = result.curves["extra_trees"]
    assert et.mape_at(0.80) < et.mape_at(0.10)
    # The FMM surface is much harder than the stencil one: error at the
    # smallest fraction stays well above 10%.
    assert et.mape_at(0.10) > 10.0
