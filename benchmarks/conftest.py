"""Shared configuration for the benchmark harness.

Every benchmark reproduces one figure (or ablation) of the paper: it runs
the corresponding experiment from :mod:`repro.experiments`, prints the
series the paper plots (MAPE versus training fraction), and writes the
same table to ``benchmarks/results/<experiment>.txt`` so the numbers
survive output capturing.

The fidelity preset is controlled with the ``REPRO_BENCH_PRESET``
environment variable: ``quick`` (smoke test), ``default``, or ``full``
(closer to scikit-learn defaults, slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings, format_result

RESULTS_DIR = Path(__file__).parent / "results"


def _settings_from_env() -> ExperimentSettings:
    preset = os.environ.get("REPRO_BENCH_PRESET", "default").lower()
    if preset == "quick":
        return ExperimentSettings.quick()
    if preset == "full":
        return ExperimentSettings.full()
    return ExperimentSettings()


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Experiment settings selected by ``REPRO_BENCH_PRESET``."""
    return _settings_from_env()


@pytest.fixture(scope="session")
def report():
    """Callable that prints an experiment result and persists it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(result) -> None:
        text = format_result(result)
        print()
        print(text)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")

    return _report
