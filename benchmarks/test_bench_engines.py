"""Microbenchmarks of the executable substrates.

Not paper figures — these time the building blocks (stencil sweep, FMM
evaluation, dataset generation, model fitting) so performance regressions
in the substrates are visible with ``pytest benchmarks/ --benchmark-only``.
"""

import numpy as np
import pytest

from repro.analytical import StencilAnalyticalModel
from repro.core import HybridPerformanceModel
from repro.datasets import blocked_small_grid_dataset
from repro.fmm import Fmm, random_cube
from repro.ml import ExtraTreesRegressor
from repro.stencil import StencilConfig, StencilPerformanceSimulator, stencil7_sweep


@pytest.mark.benchmark(group="engines")
def test_stencil_sweep_throughput(benchmark):
    rng = np.random.default_rng(0)
    src = rng.random((130, 130, 130))
    dst = np.zeros_like(src)
    points = benchmark(stencil7_sweep, src, dst, 0.4, 0.1)
    assert points == 128 ** 3


@pytest.mark.benchmark(group="engines")
def test_fmm_evaluation_n2000(benchmark):
    particles = random_cube(2000, random_state=0)
    fmm = Fmm(order=4, max_per_leaf=64)
    result = benchmark.pedantic(fmm.evaluate, args=(particles,), rounds=1, iterations=1)
    assert result.n_particles == 2000


@pytest.mark.benchmark(group="engines")
def test_stencil_simulator_sweep_rate(benchmark):
    sim = StencilPerformanceSimulator()
    configs = [StencilConfig(I=1, J=j, K=k, bi=1, bj=8, bk=16)
               for j in range(16, 129, 16) for k in range(16, 129, 16)]
    times = benchmark(sim.times, configs)
    assert len(times) == len(configs)


@pytest.mark.benchmark(group="engines")
def test_hybrid_fit_predict_cost(benchmark):
    data = blocked_small_grid_dataset(max_configs=600, random_state=0)
    train, test = data.train_test_indices(train_fraction=0.05, random_state=0)

    def fit_and_predict():
        model = HybridPerformanceModel(
            analytical_model=StencilAnalyticalModel(),
            feature_names=data.feature_names,
            ml_model=ExtraTreesRegressor(n_estimators=20, random_state=0),
            random_state=0,
        )
        model.fit(data.X[train], data.y[train])
        return model.predict(data.X[test])

    preds = benchmark.pedantic(fit_and_predict, rounds=1, iterations=1)
    assert np.all(preds > 0)
