"""Figure 3A: MAPE of decision trees / extra trees / random forests on the
blocked-stencil dataset at 1-10% training fractions.

Expected shape (paper): all models improve with more data, errors at 1-2%
are large (tens of percent), and extra trees is the best performer.
"""

import pytest

from repro.experiments import figure3_stencil


@pytest.mark.benchmark(group="figures")
def test_figure3_stencil(benchmark, settings, report):
    result = benchmark.pedantic(
        lambda: figure3_stencil(settings=settings), rounds=1, iterations=1)
    report(result)

    et = result.curves["extra_trees"]
    dt = result.curves["decision_tree"]
    # Errors shrink as the training fraction grows.
    assert et.mape_at(0.10) < et.mape_at(0.01)
    # Extra trees (the paper's pick) is at least as good as a single tree
    # at the largest training fraction.
    assert et.mape_at(0.10) <= dt.mape_at(0.10) * 1.2
