"""Figure 5: hybrid vs pure extra trees in the region the analytical model
covers well (grid sizes only).

Expected shape (paper): the hybrid model trained on 1-4% of the dataset
reaches the accuracy the pure ML model needs 10-20% of the data for.
"""

import pytest

from repro.experiments import figure5


@pytest.mark.benchmark(group="figures")
def test_figure5(benchmark, settings, report):
    result = benchmark.pedantic(lambda: figure5(settings=settings), rounds=1, iterations=1)
    report(result)

    hybrid = result.curves["hybrid"]
    extra_trees = result.curves["extra_trees"]
    # Hybrid at 4% is competitive with pure ML at 20% (the paper's headline).
    assert hybrid.mape_at(0.04) <= extra_trees.mape_at(0.20) * 1.5
    # And clearly better than pure ML would be with the same tiny budget
    # (compare against its 10% point as a conservative stand-in).
    assert hybrid.mape_at(0.04) <= extra_trees.mape_at(0.10) * 1.5
