"""PATUS-style stencil configuration vectors and configuration spaces.

Section III-B: "our PATUS modeling vector ``X = (I, J, K, bi, bj, bk, u, t)``
where I, J, and K are the grid dimensions and t is the number of threads";
``bi, bj, bk`` are the loop-blocking sizes and ``u`` the unrolling factor
(0 = no unrolling, up to 8).

The evaluation uses several *subsets* of this vector (Figures 3A, 5, 6, 7);
:class:`StencilConfigSpace` enumerates each of those spaces and converts
configurations to the numeric feature matrices the ML layer consumes.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["StencilConfig", "StencilConfigSpace", "divisors"]


def divisors(n: int, *, limit: int | None = None) -> list[int]:
    """All positive divisors of *n* in increasing order (optionally capped)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    divs = [d for d in range(1, n + 1) if n % d == 0]
    if limit is not None:
        divs = [d for d in divs if d <= limit]
    return divs


@dataclass(frozen=True)
class StencilConfig:
    """One point of the PATUS tuning space.

    Attributes mirror the paper's modeling vector.  Block sizes of ``0``
    are normalized to "no blocking in that dimension" (block = extent).
    """

    I: int  # noqa: E741 — paper notation
    J: int
    K: int
    bi: int = 0
    bj: int = 0
    bk: int = 0
    unroll: int = 0
    threads: int = 1
    stencil_points: int = 7
    order: int = 1

    def __post_init__(self) -> None:
        for name in ("I", "J", "K"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("bi", "bj", "bk"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if not 0 <= self.unroll <= 8:
            raise ValueError(f"unroll must be in [0, 8], got {self.unroll}")
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.stencil_points not in (7, 27):
            raise ValueError(f"stencil_points must be 7 or 27, got {self.stencil_points}")
        if self.order < 1:
            raise ValueError(f"order must be >= 1, got {self.order}")

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int, int]:
        """Interior grid extents ``(I, J, K)``."""
        return (self.I, self.J, self.K)

    @property
    def grid_points(self) -> int:
        """Total interior points ``N = I * J * K``."""
        return self.I * self.J * self.K

    @property
    def blocks(self) -> tuple[int, int, int]:
        """Effective tile sizes ``(TI, TJ, TK)`` (0 means un-blocked => full extent)."""
        ti = self.bi if self.bi else self.I
        tj = self.bj if self.bj else self.J
        tk = self.bk if self.bk else self.K
        return (min(ti, self.I), min(tj, self.J), min(tk, self.K))

    @property
    def is_blocked(self) -> bool:
        """Whether any dimension is tiled smaller than its extent."""
        return self.blocks != self.shape

    def padded_shape(self) -> tuple[int, int, int]:
        """Extents including ghost layers ``(II, JJ, KK)``."""
        g = 2 * self.order
        return (self.I + g, self.J + g, self.K + g)

    def to_dict(self) -> dict:
        """Plain-dict view of the configuration."""
        return {
            "I": self.I, "J": self.J, "K": self.K,
            "bi": self.bi, "bj": self.bj, "bk": self.bk,
            "unroll": self.unroll, "threads": self.threads,
            "stencil_points": self.stencil_points, "order": self.order,
        }

    def feature_values(self, feature_names: Sequence[str]) -> list[float]:
        """Extract the numeric values of *feature_names* in order."""
        mapping = self.to_dict()
        try:
            return [float(mapping[name]) for name in feature_names]
        except KeyError as exc:
            raise KeyError(
                f"unknown stencil feature {exc.args[0]!r}; available: {sorted(mapping)}"
            ) from None


@dataclass
class StencilConfigSpace:
    """An enumerable set of :class:`StencilConfig` points.

    Parameters
    ----------
    grid_sizes:
        Iterable of ``(I, J, K)`` extents.
    blockings:
        Either ``None`` (no blocking dimension in the space),
        ``"divisors"`` (all divisor tiles of each extent), or an explicit
        iterable of ``(bi, bj, bk)`` tuples applied to every grid size.
    unroll_factors:
        Unrolling factors to sweep (default: just 0).
    thread_counts:
        Thread counts to sweep (default: just 1).
    feature_names:
        Names (subset of the modeling vector) exported to feature matrices;
        defaults to exactly the dimensions that vary in this space.
    """

    grid_sizes: Sequence[tuple[int, int, int]]
    blockings: object = None
    unroll_factors: Sequence[int] = (0,)
    thread_counts: Sequence[int] = (1,)
    feature_names: Sequence[str] | None = None
    max_block_candidates: int = 8

    def __post_init__(self) -> None:
        self.grid_sizes = [tuple(int(v) for v in g) for g in self.grid_sizes]
        if not self.grid_sizes:
            raise ValueError("grid_sizes must be non-empty")
        self.unroll_factors = list(self.unroll_factors)
        self.thread_counts = list(self.thread_counts)
        if self.feature_names is None:
            self.feature_names = self._default_feature_names()
        else:
            self.feature_names = list(self.feature_names)

    # ------------------------------------------------------------------ #
    def _default_feature_names(self) -> list[str]:
        names = ["I", "J", "K"]
        if self.blockings is not None:
            names += ["bi", "bj", "bk"]
        if len(self.unroll_factors) > 1:
            names.append("unroll")
        if len(self.thread_counts) > 1:
            names.append("threads")
        return names

    def _blockings_for(self, shape: tuple[int, int, int]) -> Iterator[tuple[int, int, int]]:
        if self.blockings is None:
            yield (0, 0, 0)
            return
        if isinstance(self.blockings, str):
            if self.blockings != "divisors":
                raise ValueError(
                    f"blockings must be None, 'divisors' or an iterable, got {self.blockings!r}"
                )
            cand = []
            for extent in shape:
                divs = divisors(extent)
                if len(divs) > self.max_block_candidates:
                    # Keep a spread of small/medium/large tiles.
                    idx = np.linspace(0, len(divs) - 1, self.max_block_candidates)
                    divs = [divs[int(round(i))] for i in idx]
                cand.append(divs)
            yield from itertools.product(*cand)
            return
        yield from (tuple(int(v) for v in b) for b in self.blockings)

    def __iter__(self) -> Iterator[StencilConfig]:
        for shape in self.grid_sizes:
            for blocks in self._blockings_for(shape):
                for u in self.unroll_factors:
                    for t in self.thread_counts:
                        yield StencilConfig(
                            I=shape[0], J=shape[1], K=shape[2],
                            bi=blocks[0], bj=blocks[1], bk=blocks[2],
                            unroll=u, threads=t,
                        )

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def configs(self) -> list[StencilConfig]:
        """Materialize the full configuration list."""
        return list(self)

    def to_feature_matrix(self, configs: Iterable[StencilConfig] | None = None) -> np.ndarray:
        """Convert configurations to a numeric feature matrix.

        The column order is ``self.feature_names``.
        """
        configs = self.configs() if configs is None else list(configs)
        return np.array(
            [cfg.feature_values(self.feature_names) for cfg in configs],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------ #
    # Named spaces from the paper's evaluation
    # ------------------------------------------------------------------ #
    @classmethod
    def small_grids_with_blocking(cls) -> StencilConfigSpace:
        """Figure 3A / Figure 6 space: ``1 x 16x16 .. 1 x 128x128`` stride 16, all blockings."""
        grids = [(1, j, k) for j in range(16, 129, 16) for k in range(16, 129, 16)]
        return cls(grid_sizes=grids, blockings="divisors",
                   feature_names=["I", "J", "K", "bi", "bj", "bk"])

    @classmethod
    def large_grids_no_blocking(cls) -> StencilConfigSpace:
        """Figure 5 space: ``128^3 .. 256^3`` stride 16, grid size only."""
        sizes = range(128, 257, 16)
        grids = [(i, j, k) for i in sizes for j in sizes for k in sizes]
        return cls(grid_sizes=grids, blockings=None, feature_names=["I", "J", "K"])

    @classmethod
    def threaded_plane_grids(cls, *, max_threads: int = 8) -> StencilConfigSpace:
        """Figure 7 space: ``128x128x1 .. 176x176x1`` stride 16, 1..8 threads."""
        sizes = range(128, 177, 16)
        grids = [(i, j, 1) for i in sizes for j in sizes]
        return cls(grid_sizes=grids, blockings=None,
                   thread_counts=list(range(1, max_threads + 1)),
                   feature_names=["I", "J", "K", "threads"])
