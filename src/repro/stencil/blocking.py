"""Spatially blocked stencil traversal.

PATUS applies loop blocking to all three loop levels with block sizes
``(bi, bj, bk)``; Section VII-B of the paper folds the same blocking into
the analytical model by traversing the domain in ``TI x TJ x TK`` tiles,
with ``NB = NBI * NBJ * NBK`` tiles in total.

``blocked_sweep`` performs a bit-exact 7-point sweep tile by tile, which
the tests compare against the unblocked :func:`repro.stencil.kernels.stencil7_sweep`.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

from repro.stencil.kernels import _check_padded

__all__ = ["block_counts", "iterate_blocks", "blocked_sweep"]


def block_counts(shape: tuple[int, int, int],
                 blocks: tuple[int, int, int]) -> tuple[int, int, int]:
    """Number of tiles per dimension: ``NBI, NBJ, NBK = ceil(I/bi), ...``.

    The paper writes ``NBI = I/TI`` assuming divisibility; we use the
    ceiling so arbitrary block sizes remain valid (the trailing partial
    tile is simply smaller).
    """
    if any(int(s) < 1 for s in shape):
        raise ValueError(f"shape extents must be >= 1, got {shape}")
    if any(int(b) < 1 for b in blocks):
        raise ValueError(f"block sizes must be >= 1, got {blocks}")
    return tuple(math.ceil(int(s) / int(b)) for s, b in zip(shape, blocks, strict=True))


def iterate_blocks(shape: tuple[int, int, int],
                   blocks: tuple[int, int, int]) -> Iterator[tuple[slice, slice, slice]]:
    """Yield interior-coordinate slices covering the domain tile by tile.

    The slices are in interior coordinates (0-based, ghost offset not
    applied); each point of the domain is covered exactly once.
    """
    nbi, nbj, nbk = block_counts(shape, blocks)
    bi, bj, bk = (int(b) for b in blocks)
    I, J, K = (int(s) for s in shape)
    for ti in range(nbi):
        i0, i1 = ti * bi, min((ti + 1) * bi, I)
        for tj in range(nbj):
            j0, j1 = tj * bj, min((tj + 1) * bj, J)
            for tk in range(nbk):
                k0, k1 = tk * bk, min((tk + 1) * bk, K)
                yield slice(i0, i1), slice(j0, j1), slice(k0, k1)


def blocked_sweep(src: np.ndarray, dst: np.ndarray, c0: float, c1: float,
                  blocks: tuple[int, int, int]) -> int:
    """7-point stencil sweep traversed in ``bi x bj x bk`` tiles.

    Bit-identical to the unblocked sweep (Jacobi update: every tile reads
    only ``src`` and writes only ``dst``).  Returns the number of points
    updated.
    """
    _check_padded(src, dst)
    interior_shape = tuple(s - 2 for s in src.shape)
    updated = 0
    for si, sj, sk in iterate_blocks(interior_shape, blocks):
        # Shift interior slices into padded coordinates.
        pi = slice(si.start + 1, si.stop + 1)
        pj = slice(sj.start + 1, sj.stop + 1)
        pk = slice(sk.start + 1, sk.stop + 1)
        c = src[pi, pj, pk]
        dst[pi, pj, pk] = c0 * c + c1 * (
            src[pi.start - 1: pi.stop - 1, pj, pk]
            + src[pi.start + 1: pi.stop + 1, pj, pk]
            + src[pi, pj.start - 1: pj.stop - 1, pk]
            + src[pi, pj.start + 1: pj.stop + 1, pk]
            + src[pi, pj, pk.start - 1: pk.stop - 1]
            + src[pi, pj, pk.start + 1: pk.stop + 1]
        )
        updated += c.size
    return updated
