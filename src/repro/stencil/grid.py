"""3-D structured grids with ghost layers.

The paper's stencil loops run over interior points ``1 .. II-1`` etc.,
where ``II = I + 2*l`` includes ``l`` ghost layers on each side for a
stencil of order ``l`` (the 7-point stencil has ``l = 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Grid3D"]


@dataclass
class Grid3D:
    """A 3-D grid of ``I x J x K`` interior points with ghost layers.

    Parameters
    ----------
    shape:
        Interior extents ``(I, J, K)`` — the x, y and z dimensions, matching
        the paper's notation.
    order:
        Stencil order ``l``; the halo is ``l`` points wide on every face.
    dtype:
        Floating-point dtype of the field storage.
    """

    shape: tuple[int, int, int]
    order: int = 1
    dtype: type = np.float64

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(int(s) < 1 for s in self.shape):
            raise ValueError(f"shape must be three positive extents, got {self.shape}")
        if self.order < 1:
            raise ValueError(f"order must be >= 1, got {self.order}")
        self.shape = tuple(int(s) for s in self.shape)
        self._data = np.zeros(self.padded_shape, dtype=self.dtype)

    # ------------------------------------------------------------------ #
    @property
    def I(self) -> int:  # noqa: E743 — matches the paper's symbol
        """Interior extent along x."""
        return self.shape[0]

    @property
    def J(self) -> int:
        """Interior extent along y."""
        return self.shape[1]

    @property
    def K(self) -> int:
        """Interior extent along z."""
        return self.shape[2]

    @property
    def padded_shape(self) -> tuple[int, int, int]:
        """Extents including ghost points: ``(II, JJ, KK)``."""
        g = 2 * self.order
        return (self.shape[0] + g, self.shape[1] + g, self.shape[2] + g)

    @property
    def n_interior(self) -> int:
        """Number of interior points ``N = I * J * K``."""
        return self.shape[0] * self.shape[1] * self.shape[2]

    @property
    def data(self) -> np.ndarray:
        """The full padded storage array (ghosts included)."""
        return self._data

    @property
    def interior(self) -> np.ndarray:
        """View of the interior region (no ghosts)."""
        l = self.order
        return self._data[l:-l, l:-l, l:-l]

    # ------------------------------------------------------------------ #
    def fill(self, value: float) -> Grid3D:
        """Set every point (including ghosts) to *value*."""
        self._data[...] = value
        return self

    def fill_random(self, random_state=None, low: float = 0.0, high: float = 1.0) -> Grid3D:
        """Fill the full array with uniform random values."""
        from repro.utils.rng import check_random_state

        rng = check_random_state(random_state)
        self._data[...] = rng.uniform(low, high, size=self.padded_shape)
        return self

    def fill_function(self, func) -> Grid3D:
        """Fill interior points with ``func(x, y, z)`` on the unit cube.

        Ghost points are set by clamped extension of the interior, which is
        a simple homogeneous-Neumann-like boundary adequate for tests.
        """
        l = self.order
        ii, jj, kk = np.meshgrid(
            np.linspace(0.0, 1.0, self.I),
            np.linspace(0.0, 1.0, self.J),
            np.linspace(0.0, 1.0, self.K),
            indexing="ij",
        )
        self.interior[...] = func(ii, jj, kk)
        # Clamp-extend into ghost layers.
        for axis in range(3):
            for _ in range(l):
                sl_lo = [slice(None)] * 3
                sl_lo_src = [slice(None)] * 3
                sl_hi = [slice(None)] * 3
                sl_hi_src = [slice(None)] * 3
                sl_lo[axis] = slice(0, l)
                sl_lo_src[axis] = slice(l, l + 1)
                sl_hi[axis] = slice(-l, None)
                sl_hi_src[axis] = slice(-l - 1, -l)
                self._data[tuple(sl_lo)] = self._data[tuple(sl_lo_src)]
                self._data[tuple(sl_hi)] = self._data[tuple(sl_hi_src)]
        return self

    def copy(self) -> Grid3D:
        """Deep copy of the grid (storage included)."""
        other = Grid3D(shape=self.shape, order=self.order, dtype=self.dtype)
        other._data[...] = self._data
        return other

    def memory_bytes(self, word_bytes: int | None = None) -> int:
        """Bytes of storage for one copy of the padded field."""
        itemsize = np.dtype(self.dtype).itemsize if word_bytes is None else word_bytes
        ii, jj, kk = self.padded_shape
        return ii * jj * kk * itemsize

    def __repr__(self) -> str:
        return (f"Grid3D(shape={self.shape}, order={self.order}, "
                f"padded={self.padded_shape})")
