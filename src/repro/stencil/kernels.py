"""Executable stencil kernels.

``stencil7_sweep`` is the 7-point 3-D stencil of the paper's Section II-A
pseudocode:

.. code-block:: text

    chi[t][i,j,k] = C0 * chi[t-1][i,j,k]
                  + C1 * ( chi[t-1][i-1,j,k] + chi[t-1][i+1,j,k]
                         + chi[t-1][i,j-1,k] + chi[t-1][i,j+1,k]
                         + chi[t-1][i,j,k-1] + chi[t-1][i,j,k+1] )

All kernels operate on padded arrays (ghost layer of width 1) and write
only interior points, using NumPy slice arithmetic so the sweep runs at
memory-bandwidth speed — which is precisely the regime the analytical
model of Section IV-A assumes.

``stencil7_reference`` is a deliberately naive triple-loop version used by
the tests as the ground truth for the optimized sweeps.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "stencil7_reference",
    "stencil7_sweep",
    "stencil27_sweep",
    "jacobi_iterate",
    "flops_per_point",
]

#: Floating-point operations per updated grid point (multiply + adds).
_FLOPS_7PT = 8    # 6 adds + 2 multiplies
_FLOPS_27PT = 30  # 26 adds + 4 multiplies (one weight per shell)


def flops_per_point(points: int = 7) -> int:
    """Flops per grid-point update for an ``points``-point stencil."""
    if points == 7:
        return _FLOPS_7PT
    if points == 27:
        return _FLOPS_27PT
    raise ValueError(f"only 7- and 27-point stencils are supported, got {points}")


def _check_padded(src: np.ndarray, dst: np.ndarray) -> None:
    if src.ndim != 3 or dst.ndim != 3:
        raise ValueError("stencil kernels need 3-D arrays")
    if src.shape != dst.shape:
        raise ValueError(f"src and dst shapes differ: {src.shape} vs {dst.shape}")
    if any(s < 3 for s in src.shape):
        raise ValueError(f"padded array must be at least 3 in every dimension, got {src.shape}")
    if src is dst:
        raise ValueError("src and dst must be distinct arrays (Jacobi-style update)")


def stencil7_reference(src: np.ndarray, dst: np.ndarray, c0: float, c1: float) -> None:
    """Naive triple-loop 7-point stencil sweep (test oracle, slow)."""
    _check_padded(src, dst)
    ii, jj, kk = src.shape
    for i in range(1, ii - 1):
        for j in range(1, jj - 1):
            for k in range(1, kk - 1):
                dst[i, j, k] = c0 * src[i, j, k] + c1 * (
                    src[i - 1, j, k] + src[i + 1, j, k]
                    + src[i, j - 1, k] + src[i, j + 1, k]
                    + src[i, j, k - 1] + src[i, j, k + 1]
                )


def stencil7_sweep(src: np.ndarray, dst: np.ndarray, c0: float, c1: float) -> int:
    """Vectorized 7-point stencil sweep over all interior points.

    Returns the number of points updated.
    """
    _check_padded(src, dst)
    c = src[1:-1, 1:-1, 1:-1]
    dst[1:-1, 1:-1, 1:-1] = c0 * c + c1 * (
        src[:-2, 1:-1, 1:-1] + src[2:, 1:-1, 1:-1]
        + src[1:-1, :-2, 1:-1] + src[1:-1, 2:, 1:-1]
        + src[1:-1, 1:-1, :-2] + src[1:-1, 1:-1, 2:]
    )
    return c.size


def stencil27_sweep(src: np.ndarray, dst: np.ndarray, weights: tuple[float, float, float, float]) -> int:
    """Vectorized 27-point stencil sweep.

    ``weights = (w_center, w_face, w_edge, w_corner)`` assigns one weight
    per neighbour shell (distance 0, 1, sqrt(2), sqrt(3)).

    Returns the number of points updated.
    """
    _check_padded(src, dst)
    w0, w1, w2, w3 = weights
    acc = np.zeros_like(src[1:-1, 1:-1, 1:-1])
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            for dk in (-1, 0, 1):
                dist = abs(di) + abs(dj) + abs(dk)
                w = (w0, w1, w2, w3)[dist]
                acc += w * src[1 + di: src.shape[0] - 1 + di,
                               1 + dj: src.shape[1] - 1 + dj,
                               1 + dk: src.shape[2] - 1 + dk]
    dst[1:-1, 1:-1, 1:-1] = acc
    return acc.size


def jacobi_iterate(grid, timesteps: int, c0: float = 0.4, c1: float = 0.1) -> np.ndarray:
    """Run *timesteps* Jacobi sweeps of the 7-point stencil on a grid.

    The grid's padded storage is used as the initial state; a scratch array
    of the same shape provides the double buffering.  Returns the final
    padded array (also left in ``grid.data``).
    """
    if timesteps < 0:
        raise ValueError(f"timesteps must be >= 0, got {timesteps}")
    src = grid.data
    dst = np.copy(src)
    for _ in range(timesteps):
        stencil7_sweep(src, dst, c0, c1)
        src, dst = dst, src
    if src is not grid.data:
        grid.data[...] = src
    return grid.data
