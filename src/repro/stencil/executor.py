"""Run and time stencil configurations on the host machine.

:class:`StencilExecutor` actually executes the (blocked or unblocked)
7-point sweep with NumPy and reports wall-clock time, achieved bandwidth
and flop rate.  It is the "real measurement" path of the reproduction:
examples and integration tests use it on grids that fit in a laptop's
memory, while the full Blue-Waters-scale parameter sweeps of the paper's
figures use :class:`repro.stencil.perf_sim.StencilPerformanceSimulator`
(see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stencil.blocking import blocked_sweep
from repro.stencil.config import StencilConfig
from repro.stencil.grid import Grid3D
from repro.stencil.kernels import flops_per_point, stencil27_sweep, stencil7_sweep
from repro.utils.rng import check_random_state
from repro.utils.timing import timeit_median

__all__ = ["MeasuredRun", "StencilExecutor"]


@dataclass(frozen=True)
class MeasuredRun:
    """Result of one timed stencil execution."""

    config: StencilConfig
    seconds: float
    timesteps: int
    points_updated: int
    flops: int

    @property
    def gflops(self) -> float:
        """Achieved floating-point rate in Gflop/s."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else float("inf")

    @property
    def points_per_second(self) -> float:
        """Grid-point updates per second (LUP/s)."""
        return self.points_updated / self.seconds if self.seconds > 0 else float("inf")

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Lower-bound memory traffic estimate (one read + one write stream) / time."""
        bytes_moved = 2 * 8 * self.points_updated
        return bytes_moved / self.seconds if self.seconds > 0 else float("inf")


class StencilExecutor:
    """Execute stencil configurations and measure wall-clock time.

    Parameters
    ----------
    timesteps:
        Number of Jacobi sweeps per measurement.
    repeats:
        Measurement repetitions; the median is reported.
    max_elements:
        Safety cap on padded grid elements (prevents accidental
        multi-gigabyte allocations when enumerating large spaces).
    c0, c1:
        Stencil coefficients.
    """

    def __init__(self, *, timesteps: int = 2, repeats: int = 3,
                 max_elements: int = 64_000_000,
                 c0: float = 0.4, c1: float = 0.1,
                 random_state=None) -> None:
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.timesteps = timesteps
        self.repeats = repeats
        self.max_elements = max_elements
        self.c0 = c0
        self.c1 = c1
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    def run(self, config: StencilConfig) -> MeasuredRun:
        """Execute one configuration and return its measurement."""
        ii, jj, kk = config.padded_shape()
        n_elements = ii * jj * kk
        if n_elements > self.max_elements:
            raise ValueError(
                f"configuration {config.shape} needs {n_elements} padded elements, "
                f"above the executor cap of {self.max_elements}; "
                "use StencilPerformanceSimulator for sweeps of this size"
            )
        grid = Grid3D(shape=config.shape, order=config.order)
        grid.fill_random(check_random_state(self.random_state))
        src = grid.data
        dst = np.copy(src)

        def _sweeps() -> None:
            a, b = src, dst
            for _ in range(self.timesteps):
                if config.stencil_points == 27:
                    stencil27_sweep(a, b, (0.4, 0.05, 0.02, 0.01))
                elif config.is_blocked:
                    blocked_sweep(a, b, self.c0, self.c1, config.blocks)
                else:
                    stencil7_sweep(a, b, self.c0, self.c1)
                a, b = b, a

        seconds = timeit_median(_sweeps, repeats=self.repeats)
        points = config.grid_points * self.timesteps
        flops = points * flops_per_point(config.stencil_points)
        return MeasuredRun(config=config, seconds=seconds, timesteps=self.timesteps,
                           points_updated=points, flops=flops)

    def run_many(self, configs) -> list[MeasuredRun]:
        """Execute a sequence of configurations."""
        return [self.run(cfg) for cfg in configs]

    def measure_times(self, configs) -> np.ndarray:
        """Execute configurations and return just the times in seconds."""
        return np.array([self.run(cfg).seconds for cfg in configs], dtype=np.float64)

    def times(self, configs) -> np.ndarray:
        """Alias for :meth:`measure_times`.

        Matches the ``times(configs)`` protocol of the performance
        simulators, so the executor can be dropped into the dataset
        generators as a real-measurement source.
        """
        return self.measure_times(configs)
