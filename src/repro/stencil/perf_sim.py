"""Cache-hierarchy performance simulator for stencil configurations.

This module is the stand-in for the paper's measurements of PATUS-generated
stencil codes on Blue Waters (see the substitution table in DESIGN.md).
It produces an execution time for every point of the PATUS tuning space
``X = (I, J, K, bi, bj, bk, u, t)`` from first principles:

* per-cache-level data traffic from a working-set/plane-reuse analysis that
  *extends* the analytical model of Section IV-A with effects that model
  deliberately ignores — conflict misses for pathological leading
  dimensions, write-allocate traffic, TLB pressure, per-tile loop overhead,
  and unrolling efficiency;
* a roofline-style combination of memory time and flop time with partial
  (not perfect) overlap;
* multi-threaded execution through the composite
  :class:`repro.parallel.scaling.ThreadScalingModel` (bandwidth saturation
  + Amdahl + NUMA), which the serial analytical model knows nothing about;
* deterministic, configuration-dependent "measurement" noise.

Because the simulator shares its physical skeleton with the analytical
model but adds these un-modeled terms, the analytical model ends up
roughly right on the plain grid-size sweep (the paper's Fig. 5 regime),
noticeably wrong once blocking enters the feature space (Fig. 6, paper
reports 42% MAPE), and blind to thread scaling (Fig. 7) — which is exactly
the structure the hybrid-model experiments require.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

from repro.machine import MachineSpec, blue_waters_xe6
from repro.parallel.scaling import ThreadScalingModel
from repro.stencil.blocking import block_counts
from repro.stencil.config import StencilConfig
from repro.stencil.kernels import flops_per_point

__all__ = ["StencilPerformanceSimulator", "SimulatedStencilRun", "SIMULATOR_VERSION"]

#: Bump on any change to the simulated execution times.  The constant is
#: folded into every :class:`~repro.datasets.store.DatasetSpec`
#: fingerprint, so stored datasets produced by an older simulator are
#: invalidated automatically instead of silently served stale.
SIMULATOR_VERSION = 1


@dataclass(frozen=True)
class SimulatedStencilRun:
    """Breakdown of one simulated stencil execution."""

    config: StencilConfig
    seconds: float
    serial_seconds: float
    memory_seconds: float
    flop_seconds: float
    overhead_seconds: float
    traffic_bytes_per_level: tuple[float, ...]
    noise_factor: float


class StencilPerformanceSimulator:
    """Simulate "measured" execution times of PATUS stencil configurations.

    Parameters
    ----------
    machine:
        Node description; defaults to the Blue Waters XE6 node.
    timesteps:
        Number of stencil sweeps represented by one measurement.
    noise:
        Relative magnitude of the configuration-dependent deterministic
        jitter plus run-to-run noise (0 disables both).
    tile_overhead_cycles:
        Loop-nest start-up cost charged per tile visit (models the
        PATUS-generated prologue/epilogue code per block).
    tlb_entries / page_bytes:
        Data-TLB reach used for the TLB-pressure term.
    random_state:
        Seed for the run-to-run noise component.
    """

    def __init__(self, machine: MachineSpec | None = None, *,
                 timesteps: int = 1,
                 noise: float = 0.04,
                 tile_overhead_cycles: float = 220.0,
                 tlb_entries: int = 48,
                 page_bytes: int = 4096,
                 scaling: ThreadScalingModel | None = None,
                 random_state=0) -> None:
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self.machine = machine if machine is not None else blue_waters_xe6()
        self.timesteps = timesteps
        self.noise = noise
        self.tile_overhead_cycles = tile_overhead_cycles
        self.tlb_entries = tlb_entries
        self.page_bytes = page_bytes
        self.random_state = random_state
        if scaling is None:
            scaling = ThreadScalingModel(
                serial_fraction=0.03,
                saturation_threads=3.5,
                compute_fraction=0.15,
                cores_per_socket=self.machine.cores_per_socket,
                numa_penalty=1.18,
                overhead_s=8e-6,
            )
        self.scaling = scaling

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, config: StencilConfig) -> SimulatedStencilRun:
        """Simulate one configuration and return the full breakdown."""
        word = self.machine.word_bytes
        W = self.machine.line_elements
        ti, tj, tk = config.blocks
        nbi, nbj, nbk = block_counts(config.shape, (ti, tj, tk))
        n_tiles = nbi * nbj * nbk
        l = config.order

        # Padded tile extents seen by the innermost sweep (paper's Eq. 15 remap).
        tii = ti + 2 * l
        tjj = tj + 2 * l
        tkk = tk + 2 * l

        # ---------------- memory traffic per cache level ---------------- #
        pread = 2 * l + 1                # planes read per k-iteration
        sread = tii * tjj                # elements per read plane
        swrite = ti * tj                 # elements per written plane
        lines_per_plane = np.ceil(tii / W) * tjj
        sweep_factor = tkk * n_tiles * self.timesteps

        # Data actually *served* by each level: the difference between the
        # misses of the level above and this level's own misses (hit-based
        # accounting, like the analytical model), inflated by the
        # level-specific conflict-miss factor the analytical model ignores.
        traffic: list[float] = []
        time_mem = 0.0
        nplanes_prev = 2.0 * pread - 1.0  # register level misses everything
        for level in self.machine.hierarchy.levels:
            nplanes = self._nplanes(level.size_elements(word), W, pread,
                                    sread, swrite, tii)
            conflict = self._conflict_factor(tii, level)
            nplanes = min(nplanes * conflict, 2.0 * pread - 1.0)
            served = max(nplanes_prev - nplanes, 0.0)
            elems = lines_per_plane * W * served * sweep_factor
            traffic.append(elems * word)
            time_mem += elems * level.beta(word)
            nplanes_prev = nplanes

        # Main memory serves the last level's misses plus the write-back
        # stream that the analytical model does not charge.
        write_streams = 1.0
        mem_elems = (lines_per_plane * W * nplanes_prev * sweep_factor
                     + write_streams * config.grid_points * self.timesteps)
        mem_bytes = mem_elems * word
        traffic.append(mem_bytes)
        time_mem += mem_elems * self.machine.beta_mem

        # TLB pressure: if one read plane spans more pages than the TLB holds,
        # charge a per-line walk penalty.
        plane_pages = sread * word / self.page_bytes
        if plane_pages > self.tlb_entries:
            walk_penalty = 7.0 / self.machine.clock_hz  # ~7 cycles per (prefetch-hidden) walk
            walks = (config.grid_points * self.timesteps / W) * \
                min(1.0, plane_pages / (self.tlb_entries * 4.0))
            time_mem += walks * walk_penalty

        # ---------------- floating-point time ---------------- #
        flops = config.grid_points * self.timesteps * flops_per_point(config.stencil_points)
        time_flop = flops * self.machine.tc / self._unroll_efficiency(config)

        # ---------------- loop and tile overhead ---------------- #
        overhead = (n_tiles * self.timesteps * self.tile_overhead_cycles
                    / self.machine.clock_hz)
        # Column overhead of very short inner loops (i extent < one vector).
        if ti < W:
            overhead += (config.grid_points * self.timesteps / max(ti, 1)) \
                * 4.0 / self.machine.clock_hz

        # Roofline with partial overlap: the larger term hides 85% of the smaller.
        serial = max(time_mem, time_flop) + 0.15 * min(time_mem, time_flop) + overhead

        # ---------------- threads ---------------- #
        llc = self.machine.hierarchy.last_level
        working_set_bytes = (tii * tjj * tkk + ti * tj * tk) * word
        compute_fraction = float(np.clip(time_flop / max(serial, 1e-30), 0.05, 0.9))
        scaling = replace(
            self.scaling,
            compute_fraction=compute_fraction,
            saturation_threads=self.scaling.saturation_threads
            * (1.6 if working_set_bytes < llc.size_bytes else 1.0),
        )
        total = scaling.time(serial, config.threads)

        # ---------------- noise ---------------- #
        noise_factor = self._noise_factor(config)
        total *= noise_factor

        return SimulatedStencilRun(
            config=config,
            seconds=float(total),
            serial_seconds=float(serial),
            memory_seconds=float(time_mem),
            flop_seconds=float(time_flop),
            overhead_seconds=float(overhead),
            traffic_bytes_per_level=tuple(float(t) for t in traffic),
            noise_factor=float(noise_factor),
        )

    def time(self, config: StencilConfig) -> float:
        """Simulated execution time in seconds for one configuration."""
        return self.run(config).seconds

    def times(self, configs) -> np.ndarray:
        """Simulated execution times for a sequence of configurations."""
        return np.array([self.time(cfg) for cfg in configs], dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Model components
    # ------------------------------------------------------------------ #
    @staticmethod
    def _nplanes(cache_elements: float, W: int, pread: int,
                 sread: float, swrite: float, tii: float) -> float:
        """Planes re-fetched from the next level per k-iteration.

        Smooth variant of the case analysis of Section IV-A: 1 plane when the
        full working set of a k-iteration fits, up to ``2*pread - 1`` planes
        when not even ``pread`` rows fit.  A logistic blend between the case
        boundaries removes the hard discontinuities (the paper smooths with
        linear interpolation; the simulator's smoothing is intentionally a
        little different so the analytical model is imperfect near the
        boundaries, as real measurements would be).
        """
        stotal = pread * sread + swrite
        rcol = pread / (2.0 * pread - 1.0)
        effective = cache_elements / W  # cache capacity in lines-worth of new data

        def smooth_step(x: float, scale: float = 0.12) -> float:
            # 0 -> 1 transition around x = 1, width ~ scale (in log space).
            if x <= 0:
                return 1.0
            z = np.log(x) / scale
            return float(1.0 / (1.0 + np.exp(np.clip(z, -40.0, 40.0))))

        # Degree to which each regime is violated (1 = fully violated).
        v_full = smooth_step(effective * rcol / stotal)        # R1 violated
        v_most = smooth_step(effective / stotal)               # R2 violated
        v_rows = smooth_step(effective * rcol / max(sread, 1)) # R3 violated
        v_cols = smooth_step(effective * rcol / max(pread * tii, 1))  # R4 nearly violated

        nplanes = 1.0
        nplanes += (pread - 2.0) * v_full        # 1 .. pread-1
        nplanes += 1.0 * v_most                  # .. pread
        nplanes += (pread - 1.0) * v_rows        # .. 2*pread - 1
        nplanes += 0.0 * v_cols
        return float(np.clip(nplanes, 1.0, 2.0 * pread - 1.0))

    def _conflict_factor(self, tii: int, level) -> float:
        """Extra misses when the padded leading dimension aliases cache sets.

        Power-of-two (and near power-of-two) leading dimensions map
        consecutive planes onto the same sets of a physically indexed
        cache; measured stencil codes show 5-40% extra traffic there.  The
        analytical model ignores this entirely.
        """
        row_bytes = tii * self.machine.word_bytes
        sets_span = level.size_bytes / 8  # assume 8-way associativity
        if sets_span <= 0:
            return 1.0
        phase = (row_bytes % 4096) / 4096.0
        # Worst when the row length is an exact multiple of the page/stride.
        alignment_penalty = np.exp(-((min(phase, 1.0 - phase)) / 0.03) ** 2)
        return float(1.0 + 0.30 * alignment_penalty * (level.size_bytes <= 2**21))

    @staticmethod
    def _unroll_efficiency(config: StencilConfig) -> float:
        """Relative instruction-throughput efficiency of the unrolling factor.

        No unrolling leaves ~12% of issue slots on loop control; moderate
        unrolling recovers it; excessive unrolling spills registers and
        hurts, more so when the inner (i) tile is short.
        """
        u = config.unroll
        ti = config.blocks[0]
        base = 0.88
        if u == 0:
            eff = base
        else:
            gain = 0.12 * (1.0 - np.exp(-u / 2.0))
            spill = 0.05 * max(0, u - 4) / 4.0
            short_loop = 0.08 * max(0.0, (u - max(ti, 1)) / max(u, 1))
            eff = base + gain - spill - short_loop
        return float(np.clip(eff, 0.6, 1.0))

    def _noise_factor(self, config: StencilConfig) -> float:
        """Deterministic config-dependent jitter plus seeded run-to-run noise."""
        if self.noise == 0.0:
            return 1.0
        key = (f"{config.I},{config.J},{config.K},{config.bi},{config.bj},"
               f"{config.bk},{config.unroll},{config.threads},{self.random_state}")
        digest = hashlib.sha256(key.encode()).digest()
        u1 = int.from_bytes(digest[:8], "little") / 2**64
        u2 = int.from_bytes(digest[8:16], "little") / 2**64
        # Box-Muller: standard normal from the two uniforms.
        z = np.sqrt(-2.0 * np.log(max(u1, 1e-12))) * np.cos(2.0 * np.pi * u2)
        systematic = self.noise * float(np.clip(z, -3.0, 3.0))
        return float(np.exp(systematic))
