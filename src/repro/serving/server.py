"""``repro-serve``: the prediction-as-a-service HTTP tier.

A stdlib-only model server (precedent: the bundled
:mod:`repro.datasets.object_server`) that turns published
``models/<series>-<plan_fp>.npz`` artifacts into a long-lived prediction
endpoint.  Models are loaded lazily from any
:class:`~repro.datasets.backends.StoreBackend` locator — a local store
directory, ``memory://`` or the bundled HTTP object store — decoded once
through :mod:`repro.serving.model_io`, and kept as read-only arenas in
memory, shared by every request thread without locking.

Endpoints (all JSON):

* ``GET /healthz`` — liveness: ``{"status": "ok", ...}``;
* ``GET /stats`` — request/prediction/batching/failure counters;
* ``GET /models`` — models loaded in memory and available in the store;
* ``POST /predict`` — ``{"plan": <fp>, "series": <label>, "rows": [[...]]}``
  → ``{"predictions": [...]}``;
* ``POST /recommend`` — same body; predicts every posted configuration row
  and answers the argmin: ``{"index": i, "row": [...], "predicted": t}``.

Failure semantics: malformed requests answer 400, an unpublished model
404, a model blob that fails checksum verification or cannot be decoded
answers **503** (the store counts the integrity failure, the corrupt
blob is discarded, and the next publish repairs the key — the server
never crashes on a bad artifact), unexpected errors answer 500.

Concurrent ``/predict`` requests for the same model are **micro-batched**:
while one vectorized :meth:`~repro.serving.model_io.ServedModel.predict_rows`
pass is in flight, arriving requests queue up and the next pass serves
all of them in a single concatenated descent.  Batching never waits — a
lone request is served immediately — and never changes values: every
prediction is computed row-wise, so a row's result is independent of
whatever rows share its batch.

Run it standalone::

    repro-serve --store-url http://127.0.0.1:8123/
    python -m repro.serving.server --store-url file:///srv/repro-store --port 8200

Like the object server it is built on the shared
:class:`~repro.obs.http.ReproHTTPServer` base: pass ``--auth-key-file``
(or construct with ``auth=<key bytes>``) and every request except
``GET /healthz`` must carry a valid ``Authorization: Repro-HMAC``
header; a non-loopback ``--bind`` without a key is a startup error
unless ``--insecure``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading

import numpy as np

from repro.cli import (
    add_auth_args,
    add_bind_args,
    add_logging_parent,
    add_store_args,
    check_bind_safety,
    load_auth_key,
)
from repro.datasets.backends import IntegrityError, StoreBackend
from repro.datasets.store import DatasetStore
from repro.obs.http import ReproHTTPServer, RequestError
from repro.obs.logging import configure_logging
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.serving.model_io import ServedModel, decode_model

__all__ = ["ModelServer", "MicroBatcher", "main"]

#: Backward-compatible alias: the status-carrying error moved to the
#: shared HTTP base in :mod:`repro.obs.http`.
_RequestError = RequestError


class _Pending:
    """One caller's rows queued for a micro-batch pass."""

    __slots__ = ("rows", "event", "result", "error")

    def __init__(self, rows: np.ndarray) -> None:
        self.rows = rows
        self.event = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None


class MicroBatcher:
    """Coalesce concurrent per-model predict calls into vectorized passes.

    Natural batching, no added latency: the first caller for a model
    becomes the *leader* and predicts immediately; callers arriving
    while that pass is in flight queue up, and whoever acquires the
    per-model leadership next drains the **whole** queue into one
    concatenated :meth:`~repro.serving.model_io.ServedModel.predict_rows`
    call, then scatters the per-caller slices.  Under load the batch
    size approaches the concurrency level; a lone request costs exactly
    one ungrouped pass.

    Value-preserving by construction: predictions are computed row-wise
    (elementwise scaler/analytical math plus an independent tree descent
    per row), so a row's result does not depend on its batch mates — the
    server's round-trip tests assert bit-identical outputs for batched
    and unbatched service.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queues: dict[object, list[_Pending]] = {}
        self._leaders: dict[object, threading.Lock] = {}
        # Passes executed / rows served / largest single pass, on the
        # shared telemetry plane (the old ``stats`` dict is a property).
        self.metrics = MetricsRegistry(attach_to=REGISTRY)
        self._batches = self.metrics.counter(
            "repro_serving_batches_total", "Micro-batch prediction passes")
        self._batched_rows = self.metrics.counter(
            "repro_serving_batched_rows_total",
            "Rows served through micro-batched passes")
        self._max_batch_rows = self.metrics.gauge(
            "repro_serving_max_batch_rows", "Largest single pass, in rows")
        self._max_batch_requests = self.metrics.gauge(
            "repro_serving_max_batch_requests",
            "Largest single pass, in coalesced requests")

    @property
    def stats(self) -> dict[str, int]:
        """Compatibility view of the batching counters (atomic snapshot)."""
        return {"batches": int(self._batches.value),
                "batched_rows": int(self._batched_rows.value),
                "max_batch_rows": int(self._max_batch_rows.value),
                "max_batch_requests": int(self._max_batch_requests.value)}

    def _leader_lock(self, key) -> threading.Lock:
        with self._lock:
            lock = self._leaders.get(key)
            if lock is None:
                lock = self._leaders[key] = threading.Lock()
            return lock

    def predict(self, key, model: ServedModel, rows: np.ndarray) -> np.ndarray:
        """Predictions for *rows*, possibly served as part of a larger pass."""
        entry = _Pending(rows)
        with self._lock:
            self._queues.setdefault(key, []).append(entry)
        leader = self._leader_lock(key)
        while not entry.event.is_set():
            if leader.acquire(blocking=False):
                try:
                    self._run_pass(key, model)
                finally:
                    leader.release()
            else:
                # A pass is in flight; it (or the next leader) will take
                # our entry.  The timeout only guards against a leader
                # dying between drain and scatter — we then retry.
                entry.event.wait(0.05)
        if entry.error is not None:
            raise entry.error
        return entry.result

    def _run_pass(self, key, model: ServedModel) -> None:
        with self._lock:
            batch = self._queues.pop(key, [])
        if not batch:
            return
        counts = [len(entry.rows) for entry in batch]
        try:
            predictions = model.predict_rows(np.concatenate([e.rows for e in batch]))
        except BaseException as exc:  # noqa: BLE001 - scattered to each caller
            for entry in batch:
                entry.error = exc
                entry.event.set()
            return
        with self._lock:  # the max updates are read-modify-write
            self._batches.inc()
            self._batched_rows.inc(sum(counts))
            self._max_batch_rows.set(
                max(self._max_batch_rows.value, sum(counts)))
            self._max_batch_requests.set(
                max(self._max_batch_requests.value, len(batch)))
        offset = 0
        for entry, count in zip(batch, counts, strict=True):
            entry.result = predictions[offset:offset + count]
            offset += count
            entry.event.set()


class ModelServer(ReproHTTPServer):
    """Threaded HTTP prediction service over published store models.

    Parameters
    ----------
    store:
        Where published models live: a
        :class:`~repro.datasets.store.DatasetStore`, a
        :class:`~repro.datasets.backends.StoreBackend`, or a locator URL
        (``file://``, ``memory://``, ``http(s)://``).
    address:
        ``(host, port)`` bind address (default: loopback, ephemeral port).
    auth:
        Shared-secret key bytes; clients must then sign every request
        except ``GET /healthz`` (see :func:`repro.obs.http.sign_request`).

    Models are fetched and decoded on first use and cached read-only for
    the life of the process (``stats["model_loads"]`` counts decodes);
    re-publishing a model under the same key is picked up only by a new
    server — artifacts are content-addressed per plan fingerprint, so a
    changed plan gets a new key anyway.

    Use as a context manager in tests::

        with ModelServer(store) as server:
            urllib.request.urlopen(server.url + "healthz")
    """

    name = "model-server"

    def __init__(self, store: DatasetStore | StoreBackend | str,
                 address: tuple[str, int] = ("127.0.0.1", 0), *,
                 auth: bytes | None = None,
                 registry: MetricsRegistry | None = None,
                 verbose: bool = False) -> None:
        self.store = store if isinstance(store, DatasetStore) else DatasetStore(store)
        self.batcher = MicroBatcher()
        super().__init__(address, auth=auth, registry=registry,
                         verbose=verbose)
        # Registry-backed request counters; the old ``stats`` dict is the
        # property view below, so ``/stats`` semantics are unchanged.
        self._counters = {
            key: self.metrics.counter(f"repro_serving_{key}_total", help)
            for key, help in (
                ("requests", "Prediction-tier requests resolved"),
                ("predictions", "Rows predicted"),
                ("recommendations", "Recommendation (argmin) requests served"),
                ("model_loads", "Model blobs fetched and decoded"),
                ("integrity_failures", "Model blobs that failed checksums"),
                ("client_errors", "Requests answered with a 4xx status"),
                ("errors", "Requests answered with a 5xx status"),
            )
        }
        self._models: dict[tuple[str, str], ServedModel] = {}
        self._models_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Request routing (the base owns auth, /metrics, /healthz, spans)
    # ------------------------------------------------------------------ #
    def handle(self, request, method: str, path: str, query: dict,
               body: bytes) -> None:
        """Serve the prediction API: GET stats/models, POST predict/recommend."""
        if method == "GET":
            if path == "/stats":
                request.send_json(200, self.snapshot_stats())
            elif path == "/models":
                request.send_json(200, self.describe_models())
            else:
                raise RequestError(404, f"no such endpoint {path}")
        elif method == "POST":
            if path == "/predict":
                request.send_json(200, self.predict(self._json_body(body)))
            elif path == "/recommend":
                request.send_json(200, self.recommend(self._json_body(body)))
            else:
                raise RequestError(404, f"no such endpoint {path}")
        else:
            raise RequestError(405, f"unsupported method {method}")

    @staticmethod
    def _json_body(raw: bytes) -> dict:
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise RequestError(400, "request body must be a JSON object")
        return body

    def count_error(self, status: int) -> None:
        """Bucket a failed request as a server error or a client error."""
        self.count("errors" if status >= 500 else "client_errors")

    @property
    def stats(self) -> dict[str, int]:
        """Compatibility view of the request counters (atomic snapshot)."""
        return {key: int(counter.value)
                for key, counter in self._counters.items()}

    def count(self, op: str, n: int = 1) -> None:
        """Bump the *op* stats counter (thread-safe)."""
        self._counters[op].inc(n)

    # ------------------------------------------------------------------ #
    # Model loading
    # ------------------------------------------------------------------ #
    def load_model(self, plan_fingerprint: str, series: str) -> ServedModel:
        """The decoded model for ``(plan, series)``, fetching on first use.

        Raises :class:`_RequestError` with the HTTP status the failure
        maps to: 404 for an unpublished model, 503 for a blob that fails
        checksum verification or decoding.
        """
        key = (plan_fingerprint, series)
        with self._models_lock:
            model = self._models.get(key)
        if model is not None:
            return model
        try:
            blob = self.store.model_bytes(plan_fingerprint, series)
        except KeyError:
            raise _RequestError(
                404, f"no published model for plan {plan_fingerprint!r} "
                     f"series {series!r}") from None
        except IntegrityError as exc:
            self.count("integrity_failures")
            raise _RequestError(
                503, f"model blob failed checksum verification and was "
                     f"discarded (republish to repair): {exc}") from None
        except ValueError as exc:
            raise _RequestError(400, str(exc)) from None
        try:
            model = decode_model(blob)
        except ValueError as exc:
            raise _RequestError(503, f"model blob cannot be decoded: {exc}") from None
        with self._models_lock:
            model = self._models.setdefault(key, model)
        self.count("model_loads")
        return model

    # ------------------------------------------------------------------ #
    # Endpoint bodies
    # ------------------------------------------------------------------ #
    def _resolve(self, body: dict) -> tuple[tuple[str, str], ServedModel, np.ndarray]:
        self.count("requests")
        try:
            plan = str(body["plan"])
            series = str(body["series"])
            rows = body["rows"]
        except KeyError as exc:
            raise _RequestError(400, f"request body is missing field {exc}") from None
        model = self.load_model(plan, series)
        try:
            array = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _RequestError(400, f"rows are not numeric: {exc}") from None
        if array.ndim != 2 or array.shape[0] == 0:
            raise _RequestError(
                400, f"rows must be a non-empty list of feature rows, got "
                     f"shape {array.shape}")
        if array.shape[1] != model.n_features_in:
            raise _RequestError(
                400, f"rows have {array.shape[1]} features, but the model "
                     f"expects {model.n_features_in}")
        if not np.all(np.isfinite(array)):
            raise _RequestError(400, "rows contain non-finite values")
        return (plan, series), model, array

    def predict(self, body: dict) -> dict:
        """``POST /predict``: micro-batched vectorized predictions."""
        key, model, rows = self._resolve(body)
        try:
            predictions = self.batcher.predict(key, model, rows)
        except ValueError as exc:
            raise _RequestError(400, str(exc)) from None
        self.count("predictions", len(predictions))
        return {"plan": key[0], "series": key[1],
                "predictions": predictions.tolist()}

    def recommend(self, body: dict) -> dict:
        """``POST /recommend``: argmin of the predicted time over a config grid."""
        key, model, rows = self._resolve(body)
        try:
            predictions = self.batcher.predict(key, model, rows)
        except ValueError as exc:
            raise _RequestError(400, str(exc)) from None
        self.count("recommendations")
        best = int(np.argmin(predictions))
        return {"plan": key[0], "series": key[1], "index": best,
                "row": rows[best].tolist(),
                "predicted": float(predictions[best]),
                "predictions": predictions.tolist()}

    def health(self) -> dict:
        """``GET /healthz`` payload."""
        with self._models_lock:
            loaded = len(self._models)
        return {"status": "ok", "models_loaded": loaded,
                "store": self.store.locator}

    def snapshot_stats(self) -> dict:
        """``GET /stats`` payload: server + batcher + store counters."""
        stats = dict(self.stats)
        stats.update(self.batcher.stats)
        stats["store_integrity_failures"] = self.store.integrity_failures
        return stats

    def describe_models(self) -> dict:
        """``GET /models`` payload: loaded models + store inventory."""
        with self._models_lock:
            loaded = {
                f"{plan}/{series}": model.describe()
                for (plan, series), model in sorted(self._models.items())
            }
        available = [{"plan": fingerprint, "series": series}
                     for series, fingerprint in self.store.list_models()]
        return {"loaded": loaded, "available": available}


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``repro-serve``)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve published hybrid/ML performance models over HTTP",
        parents=[
            add_store_args(
                dir_help="store directory holding models/ artifacts",
                url_help="store locator holding models/ artifacts: "
                         "file://DIR, memory:// or http://HOST:PORT/ (an "
                         "object store, e.g. repro.datasets.object_server)"),
            add_bind_args(default_port=8200), add_auth_args(),
            add_logging_parent(),
        ],
    )
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)
    configure_logging(fmt=args.log_format, level=args.log_level)
    locator = args.store_url or args.store_dir
    if locator is None:
        parser.error("a model store is required: pass --store-url or --store-dir")
    auth = load_auth_key(args.auth_key_file, parser=parser)
    check_bind_safety(parser, args.bind, auth=auth, insecure=args.insecure)

    try:
        # One fleet-wide shared secret: the same key authenticates this
        # server's clients and signs its own requests to an http(s) store.
        store = DatasetStore(locator, auth=auth)
        server = ModelServer(store, (args.bind, args.port), auth=auth,
                             verbose=args.verbose)
    except ValueError as exc:
        parser.error(str(exc))
    models = server.store.list_models()
    mode = "authenticated" if auth is not None else "unauthenticated"
    print(f"model server at {server.url} over store {locator} "
          f"({mode}; {len(models)} published model(s))", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
