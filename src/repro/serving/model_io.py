"""Fitted-model persistence: the serving tier's ``models/`` blob format.

A fitted :class:`~repro.core.hybrid.HybridPerformanceModel` (or the
paper's standardize+regressor :class:`~repro.ml.pipeline.Pipeline`) is
fully determined by a handful of arrays: the packed tree arenas of its
ensemble (:meth:`~repro.ml._packed.PackedForest.state`), the scaler's
mean/scale vectors, and — for hybrids — the *registry key* of its
analytical model (analytical models are prediction-only and rebuild from
their key with zero fitted state, so the key is the entire serialization).
:func:`encode_model` writes exactly that as an ``.npz`` blob and
:func:`decode_model` rebuilds a model whose ``predict`` is bit-identical
to the original's — both sides predict through the same arena arrays.

Like the dataset store's config encoding, the format is deliberately
**pickle-free**: a model blob fetched from an untrusted object store can
rebuild only whitelisted estimator shapes, never execute code.

Not every estimator the experiment plans know is servable: k-NN keeps
its training set (no arena form) and bagged ensembles predict through a
sequential Python accumulation whose float ordering differs from the
packed descent.  Those series raise :class:`ModelNotServableError`;
:func:`publish_plan_models` skips them with a warning instead of failing
a run.
"""

from __future__ import annotations

import io
import logging

import numpy as np

from repro.core.hybrid import HybridPerformanceModel
from repro.ml._packed import PackedForest
from repro.ml.base import BaseEstimator, RegressorMixin
from repro.ml.forest import BaseForestRegressor
from repro.ml.pipeline import Pipeline
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.validation import check_array, check_is_fitted

__all__ = [
    "MODEL_FORMAT_VERSION",
    "ModelNotServableError",
    "PackedRegressor",
    "ServedModel",
    "encode_model",
    "decode_model",
    "publish_plan_models",
]

logger = logging.getLogger(__name__)

#: Bump when the blob layout changes; decode rejects unknown versions.
MODEL_FORMAT_VERSION = 1


class ModelNotServableError(TypeError):
    """The fitted model has no packed-arena form the serving tier can publish."""


class PackedRegressor(BaseEstimator, RegressorMixin):
    """Prediction-only regressor over decoded :class:`PackedForest` arenas.

    The decode-side stand-in for whatever ensemble was fitted originally:
    forests and single trees all predict through their packed arenas, so
    replaying the same arenas reproduces their predictions bit for bit.
    It cannot be fitted — models are trained by the experiment pipeline
    and published, never trained in the serving tier.
    """

    def __init__(self, *, forest: PackedForest | None = None,
                 n_features_in: int | None = None) -> None:
        self.forest = forest
        self.n_features_in = n_features_in

    def fit(self, X, y=None):
        """Unsupported: decoded models are read-only serving artifacts."""
        raise TypeError(
            "PackedRegressor is prediction-only; publish a newly fitted model "
            "through repro.serving.encode_model instead")

    def _validate(self, X) -> np.ndarray:
        check_is_fitted(self, "forest")
        X = check_array(X)
        if self.n_features_in is not None and X.shape[1] != self.n_features_in:
            raise ValueError(
                f"X has {X.shape[1]} features, but the published model expects "
                f"{self.n_features_in}")
        return X

    def predict(self, X) -> np.ndarray:
        """Ensemble mean prediction through the packed arenas."""
        return self.forest.predict(self._validate(X))

    def predict_std(self, X) -> np.ndarray:
        """Per-sample standard deviation across the packed trees."""
        return self.forest.predict_std(self._validate(X))


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #
def _pack_estimator(estimator) -> PackedForest:
    """The packed-arena form of a fitted estimator, or :class:`ModelNotServableError`."""
    if isinstance(estimator, PackedRegressor):
        check_is_fitted(estimator, "forest")
        return estimator.forest
    if isinstance(estimator, BaseForestRegressor):
        check_is_fitted(estimator, "estimators_")
        if estimator.packed_ is not None:
            return estimator.packed_
        # Legacy-engine forests skip arena packing at fit time; their trees
        # pack losslessly here (prediction state is identical either way).
        return PackedForest([est.tree_ for est in estimator.estimators_])
    if isinstance(estimator, DecisionTreeRegressor):
        check_is_fitted(estimator, "tree_")
        return PackedForest([estimator.tree_])
    raise ModelNotServableError(
        f"{type(estimator).__name__} has no packed-arena serving form "
        "(servable: forests, extra trees, single decision trees)")


def _scaler_state(scaler: StandardScaler | None) -> dict[str, np.ndarray]:
    if scaler is None:
        return {"has_scaler": np.array(0)}
    check_is_fitted(scaler, ["mean_", "scale_"])
    return {
        "has_scaler": np.array(1),
        "scaler_mean": np.asarray(scaler.mean_, dtype=np.float64),
        "scaler_scale": np.asarray(scaler.scale_, dtype=np.float64),
    }


def _forest_state(forest: PackedForest) -> dict[str, np.ndarray]:
    return {f"forest_{name}": array for name, array in forest.state().items()}


def encode_model(model, *, analytical_key: str | None = None) -> bytes:
    """Serialize a fitted model to the serving tier's ``.npz`` blob format.

    *model* is a fitted standardize+regressor :class:`Pipeline` or a
    fitted :class:`HybridPerformanceModel`.  Hybrids additionally need
    *analytical_key* — the :func:`repro.experiments.plan.build_analytical`
    registry key their analytical component rebuilds from (the factory
    specs carry it; a bare fitted model cannot name its own builder).

    Raises :class:`ModelNotServableError` when the underlying estimator
    has no packed-arena form (k-NN, bagged ensembles).
    """
    arrays: dict[str, np.ndarray]
    if isinstance(model, HybridPerformanceModel):
        check_is_fitted(model, "stacked_model_")
        if analytical_key is None:
            raise ValueError(
                "encoding a hybrid model requires analytical_key (the "
                "build_analytical registry key of its analytical component)")
        from repro.experiments.plan import build_analytical

        rebuilt = build_analytical(analytical_key)  # validates the key
        if type(rebuilt) is not type(model.analytical_model):
            raise ValueError(
                f"analytical_key {analytical_key!r} rebuilds "
                f"{type(rebuilt).__name__}, but the model holds "
                f"{type(model.analytical_model).__name__}")
        arrays = {
            "kind": np.array("hybrid"),
            "feature_names": np.array([str(n) for n in model.feature_names]),
            "n_features_in": np.array(int(model.n_features_in_)),
            "analytical": np.array(analytical_key),
            "aggregate": np.array(int(bool(model.aggregate_analytical))),
            "analytical_weight": np.array(float(model.analytical_weight)),
            "log_feature": np.array(int(bool(model.log_analytical_feature))),
            **_scaler_state(model.scaler_),
            **_forest_state(_pack_estimator(model.stacked_model_)),
        }
    elif isinstance(model, Pipeline):
        check_is_fitted(model, "steps_")
        scaler = None
        for _, step in model.steps_[:-1]:
            if not isinstance(step, StandardScaler):
                raise ModelNotServableError(
                    f"pipeline step {type(step).__name__} is not servable "
                    "(only StandardScaler transformers are supported)")
            if scaler is not None:
                raise ModelNotServableError(
                    "pipelines with multiple scaler steps are not servable")
            scaler = step
        final = model.steps_[-1][1]
        forest = _pack_estimator(final)
        n_features = getattr(final, "n_features_in_", None) or forest.feature.max() + 1
        arrays = {
            "kind": np.array("ml_pipeline"),
            "feature_names": np.array([], dtype=str),
            "n_features_in": np.array(int(n_features)),
            **_scaler_state(scaler),
            **_forest_state(forest),
        }
    else:
        raise ModelNotServableError(
            f"cannot encode {type(model).__name__}; servable top-level models: "
            "Pipeline, HybridPerformanceModel")

    buf = io.BytesIO()
    np.savez(buf, format=np.array(MODEL_FORMAT_VERSION), **arrays)
    return buf.getvalue()


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #
class ServedModel:
    """A decoded published model: read-only, thread-safe prediction state.

    Attributes
    ----------
    kind:
        ``"ml_pipeline"`` or ``"hybrid"`` (the factory shape it was
        published from).
    model:
        The rebuilt estimator (:class:`Pipeline` or
        :class:`HybridPerformanceModel` over a :class:`PackedRegressor`).
    n_features_in:
        Width every prediction row must have.
    feature_names:
        Column names (hybrids only; empty for plain pipelines).

    All prediction state is immutable after decode — arenas, scaler
    vectors and analytical constants are only ever read — so one
    instance serves concurrent threads without locking.
    """

    def __init__(self, *, kind: str, model, n_features_in: int,
                 feature_names: tuple[str, ...], forest: PackedForest) -> None:
        self.kind = kind
        self.model = model
        self.n_features_in = n_features_in
        self.feature_names = feature_names
        self.forest = forest

    def predict_rows(self, rows) -> np.ndarray:
        """Vectorized predictions for a batch of raw feature rows.

        One validation pass plus one vectorized descent for the whole
        batch; every output row depends only on its input row, so any
        concatenation of requests (micro-batching) is value-preserving.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ValueError(
                f"rows must be 2-D (n_rows, n_features), got shape {rows.shape}")
        if rows.shape[1] != self.n_features_in:
            raise ValueError(
                f"rows have {rows.shape[1]} features, but the model expects "
                f"{self.n_features_in}")
        return self.model.predict(rows)

    def describe(self) -> dict:
        """JSON-safe metadata for the server's ``/models`` listing."""
        return {
            "kind": self.kind,
            "n_features_in": self.n_features_in,
            "feature_names": list(self.feature_names),
            "n_trees": self.forest.n_trees,
            "node_count": self.forest.node_count,
        }


def _decode_scaler(data, n_features: int) -> StandardScaler | None:
    if not int(data["has_scaler"]):
        return None
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(data["scaler_mean"], dtype=np.float64)
    scaler.scale_ = np.asarray(data["scaler_scale"], dtype=np.float64)
    if scaler.mean_.shape != (n_features,) or scaler.scale_.shape != (n_features,):
        raise ValueError(
            f"scaler state has shape {scaler.mean_.shape}, expected ({n_features},)")
    scaler.n_features_in_ = n_features
    return scaler


def decode_model(blob: bytes) -> ServedModel:
    """Rebuild a :class:`ServedModel` from :func:`encode_model` bytes.

    Pickle-free: only whitelisted estimator shapes are reconstructed.
    Raises :class:`ValueError` for unknown format versions, kinds or
    malformed arenas (the server answers 503 — the blob passed its
    checksum, so a decode failure means a format skew, not corruption).
    """
    with np.load(io.BytesIO(blob), allow_pickle=False) as data:
        version = int(data["format"])
        if version != MODEL_FORMAT_VERSION:
            raise ValueError(
                f"model blob has format version {version}, this build reads "
                f"{MODEL_FORMAT_VERSION}")
        kind = str(data["kind"])
        n_features_in = int(data["n_features_in"])
        feature_names = tuple(str(n) for n in data["feature_names"])
        forest = PackedForest.from_state(
            {name: data[f"forest_{name}"] for name in
             ("roots", "feature", "threshold", "value", "left", "right")})
        if kind == "ml_pipeline":
            scaler = _decode_scaler(data, n_features_in)
            regressor = PackedRegressor(forest=forest, n_features_in=n_features_in)
            steps = ([("scale", scaler)] if scaler is not None else [])
            steps.append(("model", regressor))
            pipeline = Pipeline(steps=list(steps))
            pipeline.steps_ = list(steps)
            return ServedModel(kind=kind, model=pipeline,
                               n_features_in=n_features_in,
                               feature_names=feature_names, forest=forest)
        if kind == "hybrid":
            from repro.experiments.plan import build_analytical

            if len(feature_names) != n_features_in:
                raise ValueError(
                    f"hybrid blob names {len(feature_names)} features for "
                    f"{n_features_in} columns")
            analytical_key = str(data["analytical"])
            model = HybridPerformanceModel(
                analytical_model=build_analytical(analytical_key),
                feature_names=list(feature_names),
                aggregate_analytical=bool(int(data["aggregate"])),
                analytical_weight=float(data["analytical_weight"]),
                log_analytical_feature=bool(int(data["log_feature"])),
                standardize=bool(int(data["has_scaler"])),
            )
            # The stacked feature matrix is the raw features plus the
            # analytical column, hence width n_features_in + 1.
            model.scaler_ = _decode_scaler(data, n_features_in + 1)
            model.stacked_model_ = PackedRegressor(
                forest=forest, n_features_in=n_features_in + 1)
            model.n_features_in_ = n_features_in
            return ServedModel(kind=kind, model=model,
                               n_features_in=n_features_in,
                               feature_names=feature_names, forest=forest)
        raise ValueError(f"unknown model kind {kind!r} in blob")


# --------------------------------------------------------------------------- #
# Fit-and-publish
# --------------------------------------------------------------------------- #
def publish_plan_models(plan, dataset, caches, store, *,
                        seed: int | None = None) -> dict:
    """Fit one canonical model per plan series and publish it to *store*.

    For every series of *plan*, the series' model factory is fitted on
    the **full** dataset (the experiment cells train on fractions; the
    published artifact is the best model the plan can produce) with
    *seed* (default: the plan's master ``random_state``, so republishing
    the same plan yields byte-identical predictions), encoded with
    :func:`encode_model` and written under
    ``models/<series>-<plan_fingerprint>.npz``.

    Series without a servable form (k-NN, bagged ensembles) are skipped
    with a warning.  Returns ``{"published": {series: key},
    "skipped": {series: reason}}``.
    """
    from repro.experiments.plan import build_factory

    seed = plan.random_state if seed is None else seed
    published: dict[str, str] = {}
    skipped: dict[str, str] = {}
    for spec in plan.series:
        factory = build_factory(spec.factory, dataset,
                                caches.get(spec.factory.analytical))
        model = factory(seed)
        try:
            model.fit(dataset.X, dataset.y)
            blob = encode_model(model, analytical_key=spec.factory.analytical)
        except ModelNotServableError as exc:
            logger.warning("series %r is not servable, skipping publish: %s",
                           spec.label, exc)
            skipped[spec.label] = str(exc)
            continue
        key = store.model_key(plan.fingerprint, spec.label)
        store.put_model_bytes(plan.fingerprint, spec.label, blob)
        published[spec.label] = key
    return {"published": published, "skipped": skipped}
