"""Prediction-as-a-service: fitted-model persistence + an HTTP model server.

Two halves:

* :mod:`repro.serving.model_io` — the pickle-free ``.npz`` model format.
  :func:`encode_model` flattens a fitted pipeline or hybrid model into
  :class:`~repro.ml._packed.PackedForest` arenas plus scaler/analytical
  state; :func:`decode_model` rebuilds a prediction-only model whose
  outputs are **bit-identical** to the original's.
  :func:`publish_plan_models` fits every servable series of an
  :class:`~repro.experiments.plan.ExperimentPlan` on the full dataset
  and writes the blobs into a :class:`~repro.datasets.store.DatasetStore`
  under ``models/<series>-<plan_fp>.npz``.
* :mod:`repro.serving.server` — :class:`ModelServer`, a threaded
  stdlib-HTTP service (console script ``repro-serve``) loading published
  models from any store URL and answering micro-batched ``/predict``
  and ``/recommend`` requests.

See ``docs/serving.md`` for the deployment/operations guide.
"""

from repro.serving.model_io import (
    MODEL_FORMAT_VERSION,
    ModelNotServableError,
    PackedRegressor,
    ServedModel,
    decode_model,
    encode_model,
    publish_plan_models,
)
from repro.serving.server import MicroBatcher, ModelServer

__all__ = [
    "MODEL_FORMAT_VERSION",
    "MicroBatcher",
    "ModelNotServableError",
    "ModelServer",
    "PackedRegressor",
    "ServedModel",
    "decode_model",
    "encode_model",
    "publish_plan_models",
]
