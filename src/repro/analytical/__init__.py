"""Analytical performance models (Section IV of the paper).

The models translate a configuration vector and a machine description into
a predicted execution time using closed-form expressions:

* :mod:`repro.analytical.base` — the roofline-style combination
  ``T = max(T_flops, T_mem)`` (Eq. 2) and the
  :class:`~repro.analytical.base.AnalyticalModel` interface consumed by
  the hybrid model,
* :mod:`repro.analytical.stencil_model` — the multi-level-cache stencil
  model of Section IV-A (Eq. 3–7 with the ``nplanes`` case analysis and
  linear-interpolation smoothing) plus the loop-blocking extension of
  Section VII-A (Eq. 15),
* :mod:`repro.analytical.fmm_model` — the FMM P2P and M2L computation and
  memory-access models of Section IV-B (Eq. 8–14),
* :mod:`repro.analytical.calibration` — optional least-squares calibration
  of the models' machine constants against a handful of measurements
  (the paper deliberately does *not* tune the models for Figs. 6 and 8;
  calibration is provided for the ablation studies).
"""

from repro.analytical.base import AnalyticalModel, roofline_time
from repro.analytical.cache import AnalyticalPredictionCache
from repro.analytical.calibration import CalibratedModel, calibrate_scale
from repro.analytical.communication import (
    AlphaBetaNetwork,
    fmm_communication_time,
    stencil_halo_exchange_time,
)
from repro.analytical.fmm_model import FmmAnalyticalModel
from repro.analytical.stencil_model import StencilAnalyticalModel

__all__ = [
    "AnalyticalModel",
    "AnalyticalPredictionCache",
    "roofline_time",
    "StencilAnalyticalModel",
    "FmmAnalyticalModel",
    "calibrate_scale",
    "CalibratedModel",
    "AlphaBetaNetwork",
    "stencil_halo_exchange_time",
    "fmm_communication_time",
]
