"""Memoization of analytical-model predictions.

Analytical models are *prediction-only and deterministic* (they have no
``fit`` step — Section VI trains only the ML component), so a given
feature row always maps to the same predicted time.  The learning-curve
protocol, however, re-evaluates the analytical model for every
``(fraction, repeat)`` cell on overlapping subsets of the same dataset
rows.  :class:`AnalyticalPredictionCache` binds one analytical model and
feature layout, computes predictions for previously unseen rows in one
vectorized :meth:`~repro.analytical.base.AnalyticalModel.predict` call,
and serves every repeated row from a hash lookup, so each dataset row is
evaluated exactly once per experiment.
"""

from __future__ import annotations

import numpy as np

from repro.analytical.base import AnalyticalModel

__all__ = ["AnalyticalPredictionCache"]


class AnalyticalPredictionCache:
    """Row-level memo of one analytical model's predictions.

    Parameters
    ----------
    model:
        The analytical model whose predictions are cached.
    feature_names:
        Column layout of every matrix that will be passed to
        :meth:`predict`; rows are keyed by their raw float64 bytes, so the
        layout must be consistent for lookups to be meaningful.
    """

    def __init__(self, model: AnalyticalModel, feature_names) -> None:
        if not isinstance(model, AnalyticalModel):
            raise TypeError(
                f"model must be an AnalyticalModel, got {type(model).__name__}"
            )
        self.model = model
        self.feature_names = list(feature_names)
        self._store: dict[bytes, float] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def warm(self, X: np.ndarray) -> AnalyticalPredictionCache:
        """Precompute predictions for every row of *X* (e.g. a full dataset)."""
        self.predict(X)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted times for *X*, computing only never-seen rows."""
        X = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        if X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"X has {X.shape[1]} columns but the cache is bound to "
                f"{len(self.feature_names)} feature names"
            )
        keys = [row.tobytes() for row in X]
        store = self._store
        missing = [i for i, key in enumerate(keys) if key not in store]
        if missing:
            values = self.model.predict(X[missing], self.feature_names)
            for i, value in zip(missing, values, strict=True):
                store[keys[i]] = float(value)
        self.misses += len(missing)
        self.hits += len(keys) - len(missing)
        return np.array([store[key] for key in keys], dtype=np.float64)

    def clear(self) -> None:
        """Drop all memoized rows and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Persistence (see repro.datasets.store for the fingerprint scheme)
    # ------------------------------------------------------------------ #
    def state(self) -> tuple[np.ndarray, np.ndarray]:
        """Memoized contents as ``(rows, values)`` arrays.

        ``rows`` is the ``(n_memoized, n_features)`` matrix of cached
        feature rows (reassembled from their byte keys) and ``values`` the
        matching predictions; together they rebuild the cache exactly.
        """
        d = len(self.feature_names)
        if not self._store:
            return (np.empty((0, d), dtype=np.float64),
                    np.empty(0, dtype=np.float64))
        rows = np.frombuffer(b"".join(self._store), dtype=np.float64)
        values = np.fromiter(self._store.values(), dtype=np.float64,
                             count=len(self._store))
        return rows.reshape(len(self._store), d), values

    def load_rows(self, rows: np.ndarray, values: np.ndarray) -> AnalyticalPredictionCache:
        """Insert precomputed ``(rows, values)`` pairs without touching the counters."""
        rows = np.ascontiguousarray(np.atleast_2d(np.asarray(rows, dtype=np.float64)))
        values = np.asarray(values, dtype=np.float64).ravel()
        if rows.shape[0] != values.shape[0]:
            raise ValueError(
                f"{rows.shape[0]} rows for {values.shape[0]} values")
        if rows.size and rows.shape[1] != len(self.feature_names):
            raise ValueError(
                f"rows have {rows.shape[1]} columns but the cache is bound to "
                f"{len(self.feature_names)} feature names")
        for row, value in zip(rows, values, strict=True):
            self._store[row.tobytes()] = float(value)
        return self

    def save(self, path) -> None:
        """Persist the memoized rows/values (and feature layout) to *path*."""
        rows, values = self.state()
        np.savez(path, rows=rows, values=values,
                 feature_names=np.array(self.feature_names))

    @classmethod
    def load(cls, path, model: AnalyticalModel, feature_names) -> AnalyticalPredictionCache:
        """Rebuild a warmed cache saved by :meth:`save`, bound to *model*.

        The stored feature layout must match *feature_names*; the caller
        is responsible for pairing the file with the right model (the
        store keys files by model key and dataset fingerprint).
        """
        cache = cls(model, feature_names)
        with np.load(path, allow_pickle=False) as data:
            stored = [str(n) for n in data["feature_names"]]
            if stored != cache.feature_names:
                raise ValueError(
                    f"cache file has feature layout {stored}, expected "
                    f"{cache.feature_names}")
            cache.load_rows(data["rows"], data["values"])
        return cache
