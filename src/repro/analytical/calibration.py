"""Optional calibration of analytical models against measurements.

Section VII of the paper stresses that the analytical models are *not*
tuned before being used in the hybrid framework ("we do not tune the
analytical models as our goal here is to study the effect of using
inaccurate analytical models").  Calibration is nevertheless useful for
the ablation benchmarks — it quantifies how much of the hybrid model's
advantage survives when the analytical model is made as accurate as a
simple scaling allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytical.base import AnalyticalModel

__all__ = ["calibrate_scale", "CalibratedModel"]


def calibrate_scale(predictions: np.ndarray, measurements: np.ndarray) -> float:
    """Least-squares multiplicative factor aligning predictions to measurements.

    Minimizes ``sum (s * p_i - m_i)^2`` over the scalar ``s``; with
    strictly positive predictions this is ``<p, m> / <p, p>``.
    """
    predictions = np.asarray(predictions, dtype=np.float64).ravel()
    measurements = np.asarray(measurements, dtype=np.float64).ravel()
    if predictions.shape != measurements.shape:
        raise ValueError("predictions and measurements must have the same shape")
    if predictions.size == 0:
        raise ValueError("cannot calibrate on an empty sample")
    denom = float(predictions @ predictions)
    if denom == 0.0:
        raise ValueError("predictions are identically zero; cannot calibrate")
    return float(predictions @ measurements / denom)


@dataclass
class CalibratedModel(AnalyticalModel):
    """An analytical model multiplied by a fitted scale factor.

    Parameters
    ----------
    base:
        The analytical model to wrap.
    scale:
        Multiplicative correction (from :func:`calibrate_scale`).
    """

    base: AnalyticalModel
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")

    def predict_config(self, config) -> float:
        """Scaled prediction of the wrapped model."""
        return self.scale * self.base.predict_config(config)

    def config_from_features(self, row, feature_names):
        """Delegate feature decoding to the wrapped model."""
        return self.base.config_from_features(row, feature_names)

    @classmethod
    def fit(cls, base: AnalyticalModel, configs, measurements) -> CalibratedModel:
        """Calibrate *base* on ``(configs, measurements)`` and return the wrapper."""
        preds = base.predict_configs(configs)
        return cls(base=base, scale=calibrate_scale(preds, np.asarray(measurements)))
