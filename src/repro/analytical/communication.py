"""Distributed-memory communication models (extension beyond the paper).

The paper's applications are run with hybrid MPI/OpenMP parallelism, but
its analytical models cover only single-node computation and memory.  The
same research group's companion work (Ibeid et al., "A performance model
for the communication in fast multipole methods", IJHPCA 2016 — reference
[20] of the paper) models the inter-node communication; this module
provides compact alpha-beta (latency-bandwidth) versions of those models
so the hybrid framework can also be exercised on multi-node feature
vectors:

* :func:`stencil_halo_exchange_time` — nearest-neighbour halo exchange of a
  3-D domain decomposition,
* :func:`fmm_communication_time` — the local-essential-tree exchange of a
  distributed FMM (P2P ghost particles + M2L ghost multipoles),
* :class:`AlphaBetaNetwork` — the network parameters shared by both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AlphaBetaNetwork", "stencil_halo_exchange_time", "fmm_communication_time"]


@dataclass(frozen=True)
class AlphaBetaNetwork:
    """Latency-bandwidth (alpha-beta) network description.

    Parameters
    ----------
    latency_s:
        Per-message latency ``alpha`` in seconds.
    bandwidth_bytes_per_s:
        Per-link bandwidth; ``beta`` is its inverse per byte.
    word_bytes:
        Bytes per transferred element.
    """

    latency_s: float = 1.5e-6
    bandwidth_bytes_per_s: float = 6e9
    word_bytes: int = 8

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth_bytes_per_s must be > 0")
        if self.word_bytes <= 0:
            raise ValueError("word_bytes must be > 0")

    def message_time(self, n_elements: float) -> float:
        """Time to send one message of ``n_elements`` elements."""
        if n_elements < 0:
            raise ValueError("n_elements must be >= 0")
        return self.latency_s + n_elements * self.word_bytes / self.bandwidth_bytes_per_s


def stencil_halo_exchange_time(shape: tuple[int, int, int], ranks: int,
                               network: AlphaBetaNetwork | None = None, *,
                               order: int = 1, timesteps: int = 1) -> float:
    """Halo-exchange time per rank for a 3-D block decomposition.

    The global ``I x J x K`` grid is split into ``ranks`` near-cubic
    blocks; every timestep each rank exchanges ``order`` ghost planes with
    up to six face neighbours.  Returns the per-timestep-summed time for
    the critical (interior) rank.
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    if timesteps < 1:
        raise ValueError("timesteps must be >= 1")
    network = network or AlphaBetaNetwork()
    if ranks == 1:
        return 0.0
    dims = _balanced_3d_factorization(ranks)
    local = [max(1, int(np.ceil(extent / d))) for extent, d in zip(shape, dims, strict=True)]
    faces = [
        local[1] * local[2],
        local[0] * local[2],
        local[0] * local[1],
    ]
    total = 0.0
    for face, d in zip(faces, dims, strict=True):
        if d == 1:
            continue  # no neighbour in this direction
        # Send + receive one ghost slab (order planes) to each of 2 neighbours.
        total += 2 * network.message_time(order * face)
    return total * timesteps


def fmm_communication_time(n_particles: int, ranks: int, *,
                           particles_per_leaf: int = 64, order: int = 4,
                           network: AlphaBetaNetwork | None = None) -> float:
    """Communication time per rank of a distributed FMM evaluation.

    Follows the structure of the local-essential-tree (LET) exchange: each
    rank owns ``N / p`` particles and must receive (i) the ghost particles
    of the neighbouring leaf shell for P2P and (ii) the multipole
    expansions of the well-separated cells of coarser levels for M2L.  The
    surface-to-volume argument gives ``O((N/p)^(2/3) q^(1/3))`` ghost
    particles and ``O(log8(N / (q p)) + p^(1/3))`` ghost multipoles of
    ``order^3``-ish coefficients each (see the paper's reference [20]).
    """
    if n_particles < 1 or ranks < 1:
        raise ValueError("n_particles and ranks must be >= 1")
    if particles_per_leaf < 1 or order < 1:
        raise ValueError("particles_per_leaf and order must be >= 1")
    network = network or AlphaBetaNetwork()
    if ranks == 1:
        return 0.0
    local_particles = n_particles / ranks
    local_leaves = max(1.0, local_particles / particles_per_leaf)
    # (i) ghost particle shell: the outer layer of leaf cells (4 values each).
    shell_leaves = max(0.0, local_leaves - max(0.0, (local_leaves ** (1.0 / 3.0) - 2.0)) ** 3)
    ghost_particles = shell_leaves * particles_per_leaf
    particle_elements = 4.0 * ghost_particles
    # (ii) ghost multipoles: levels of the local tree plus one coarse cell
    # per remote rank, each carrying ~order^3/6 coefficients.
    coeffs = order * (order + 1) * (order + 2) / 6.0
    levels = max(1.0, np.log(max(local_leaves, 8.0)) / np.log(8.0))
    ghost_cells = 189.0 * levels + ranks ** (1.0 / 3.0) * 8.0
    multipole_elements = ghost_cells * coeffs
    # Messages: one per neighbouring rank for particles (26 in a 3-D
    # decomposition, fewer for small rank counts) plus a tree-collective of
    # log2(p) messages for the multipoles.
    neighbour_ranks = min(26, ranks - 1)
    time_particles = neighbour_ranks * network.latency_s + network.message_time(
        particle_elements) - network.latency_s
    time_multipoles = np.ceil(np.log2(ranks)) * network.latency_s + network.message_time(
        multipole_elements) - network.latency_s
    return float(time_particles + time_multipoles)


def _balanced_3d_factorization(ranks: int) -> tuple[int, int, int]:
    """Split ``ranks`` into three factors as close to each other as possible."""
    best = (ranks, 1, 1)
    best_score = float("inf")
    for a in range(1, int(round(ranks ** (1.0 / 3.0))) + 2):
        if ranks % a:
            continue
        rest = ranks // a
        for b in range(a, int(np.sqrt(rest)) + 2):
            if rest % b:
                continue
            c = rest // b
            dims = tuple(sorted((a, b, c)))
            score = max(dims) / min(dims)
            if score < best_score:
                best_score = score
                best = dims
    return best  # type: ignore[return-value]
