"""Analytical model for the fast multipole method (Section IV-B).

The model covers the two dominant FMM phases:

* **P2P** computation cost (Eq. 8): ``T_flop = 27 q N t_c`` and memory
  cost (Eq. 12): ``T_mem = N beta + N L / (Z^(1/3) q^(2/3)) beta``;
* **M2L** computation cost (Eq. 9): ``T_flop = 189 N k^6 / q t_c`` and
  memory cost (Eq. 14):
  ``T_mem = N k^6 / q beta + N k^2 L / (q Z^(1/3)) beta``.

Each phase combines its flop and memory terms with the roofline rule
(Eq. 2) and the two phases are summed.  Like the paper's model it is a
*single-core*, full-tree model: it does not use the ``threads`` feature,
which is the main source of its error on the (t, N, q, k) dataset
(the paper reports 84.5% MAPE for the untuned model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytical.base import AnalyticalModel, roofline_time
from repro.fmm.config import FmmConfig
from repro.machine import MachineSpec, blue_waters_xe6

__all__ = ["FmmAnalyticalModel"]


@dataclass
class FmmAnalyticalModel(AnalyticalModel):
    """Analytical model of the dominant FMM phases (P2P and M2L).

    Parameters
    ----------
    machine:
        Node description providing ``t_c``, ``beta_mem``, the cache-line
        length ``L`` and last-level cache size ``Z``; defaults to the Blue
        Waters XE6 node.
    p2p_flops_constant:
        The ``27 q N`` prefactor of Eq. 8 counts interactions with the 26
        neighbours plus the cell itself; the per-interaction flop count is
        folded into this constant (1.0 reproduces the paper's expression
        verbatim, i.e. one flop-time ``t_c`` per interaction).
    m2l_flops_constant:
        The ``189 k^6`` operation count of the Cartesian M2L (Eq. 9).
    include_expansion_phases:
        If True, also charge the lighter P2M/M2M/L2L/L2P phases
        (``O(N k^3)`` and ``O((N/q) k^6)``); the paper's model omits them.
    """

    machine: MachineSpec = None
    p2p_flops_constant: float = 27.0
    m2l_flops_constant: float = 189.0
    include_expansion_phases: bool = False

    def __post_init__(self) -> None:
        if self.machine is None:
            self.machine = blue_waters_xe6()
        if self.p2p_flops_constant <= 0 or self.m2l_flops_constant <= 0:
            raise ValueError("flop constants must be > 0")

    # ------------------------------------------------------------------ #
    def predict_config(self, config: FmmConfig) -> float:
        """Predicted execution time (seconds) of one configuration."""
        n = float(config.n_particles)
        q = float(config.particles_per_leaf)
        k = float(config.order)
        tc = self.machine.tc
        beta = self.machine.beta_mem
        L = float(self.machine.line_elements)
        Z = float(self.machine.hierarchy.last_level.size_elements(self.machine.word_bytes))

        # ---- P2P (Eq. 8 and Eq. 12) ----
        t_flop_p2p = self.p2p_flops_constant * q * n * tc
        t_mem_p2p = n * beta + (n * L / (Z ** (1.0 / 3.0) * q ** (2.0 / 3.0))) * beta
        t_p2p = roofline_time(t_flop_p2p, t_mem_p2p)

        # ---- M2L (Eq. 9 and Eq. 14) ----
        t_flop_m2l = self.m2l_flops_constant * n * k ** 6 / q * tc
        t_mem_m2l = (n * k ** 6 / q) * beta + (n * k ** 2 * L / (q * Z ** (1.0 / 3.0))) * beta
        t_m2l = roofline_time(t_flop_m2l, t_mem_m2l)

        total = t_p2p + t_m2l

        if self.include_expansion_phases:
            terms = k ** 3 / 6.0
            t_p2m_l2p = 2.0 * n * terms * 6.0 * tc
            t_m2m_l2l = 2.0 * (n / q) * 8.0 * terms ** 2 * tc
            total += t_p2m_l2p + t_m2m_l2l

        return float(total)

    def predict_phases(self, config: FmmConfig) -> dict[str, float]:
        """Per-phase predictions (P2P and M2L separately), for inspection."""
        n = float(config.n_particles)
        q = float(config.particles_per_leaf)
        k = float(config.order)
        tc = self.machine.tc
        beta = self.machine.beta_mem
        L = float(self.machine.line_elements)
        Z = float(self.machine.hierarchy.last_level.size_elements(self.machine.word_bytes))
        return {
            "p2p_flops": self.p2p_flops_constant * q * n * tc,
            "p2p_mem": n * beta + (n * L / (Z ** (1.0 / 3.0) * q ** (2.0 / 3.0))) * beta,
            "m2l_flops": self.m2l_flops_constant * n * k ** 6 / q * tc,
            "m2l_mem": (n * k ** 6 / q) * beta
            + (n * k ** 2 * L / (q * Z ** (1.0 / 3.0))) * beta,
        }

    def predict_rows(self, X: np.ndarray, feature_names) -> np.ndarray:
        """Vectorized :meth:`predict_config` over a whole feature matrix.

        Applies the same integer rounding and range validation as
        :meth:`config_from_features` / :class:`FmmConfig` and evaluates
        Eq. 8/9/12/14 with the identical expression order, so the result
        matches the per-row path bit for bit without rebuilding an
        :class:`FmmConfig` per sample.
        """
        names = list(feature_names)

        def col(name: str, default: float) -> np.ndarray:
            if name in names:
                values = np.rint(X[:, names.index(name)])
            else:
                values = np.full(X.shape[0], float(default))
            # Same bound FmmConfig.__post_init__ enforces on the scalar path.
            if np.any(~(values >= 1)):
                bad = values[~(values >= 1)][0]
                raise ValueError(f"{name} must be >= 1, got {bad:g}")
            return values

        col("threads", 1)
        n = col("n_particles", 1)
        q = col("particles_per_leaf", 1)
        k = col("order", 1)
        tc = self.machine.tc
        beta = self.machine.beta_mem
        L = float(self.machine.line_elements)
        Z = float(self.machine.hierarchy.last_level.size_elements(self.machine.word_bytes))

        t_flop_p2p = self.p2p_flops_constant * q * n * tc
        t_mem_p2p = n * beta + (n * L / (Z ** (1.0 / 3.0) * q ** (2.0 / 3.0))) * beta
        t_p2p = np.maximum(t_flop_p2p, t_mem_p2p)

        t_flop_m2l = self.m2l_flops_constant * n * k ** 6 / q * tc
        t_mem_m2l = (n * k ** 6 / q) * beta + (n * k ** 2 * L / (q * Z ** (1.0 / 3.0))) * beta
        t_m2l = np.maximum(t_flop_m2l, t_mem_m2l)

        total = t_p2p + t_m2l

        if self.include_expansion_phases:
            terms = k ** 3 / 6.0
            t_p2m_l2p = 2.0 * n * terms * 6.0 * tc
            t_m2m_l2l = 2.0 * (n / q) * 8.0 * terms ** 2 * tc
            total = total + (t_p2m_l2p + t_m2m_l2l)

        return np.asarray(total, dtype=np.float64)

    def config_from_features(self, row: np.ndarray, feature_names) -> FmmConfig:
        """Build an :class:`FmmConfig` from a numeric feature row."""
        values = {name: float(v) for name, v in zip(feature_names, row, strict=True)}
        return FmmConfig(
            threads=int(round(values.get("threads", 1))),
            n_particles=int(round(values.get("n_particles", 1))),
            particles_per_leaf=int(round(values.get("particles_per_leaf", 1))),
            order=int(round(values.get("order", 1))),
        )
