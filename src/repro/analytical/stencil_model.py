"""Analytical model for 3-D stencil computations (Section IV-A).

The model follows de la Cruz & Araya-Polo's multi-level cache model as
presented in the paper:

* stencils are memory bound, so the flop cost is assumed to be hidden by
  memory transfers (Section IV-A, first paragraph);
* the time is the sum over cache levels plus main memory of
  ``T_Li = T_data_Li * Hits_Li`` (Eq. 5–6), where
  ``Hits_Li = Misses_L(i-1) - Misses_Li``;
* misses per level follow ``Misses_Li = ceil(II/W) * JJ * KK * nplanes_Li``
  (Eq. 7) with the ``nplanes`` case analysis driven by conditions R1–R4,
  smoothed by linear interpolation between the case boundaries;
* loop blocking (Section VII-A) is incorporated by re-mapping
  ``I, J, K -> TI, TJ, TK`` (and the extended dimensions) and multiplying
  by the number of tiles ``NB`` (Eq. 15).

The model is intentionally a *single-core* model: it does not see the
``threads`` feature at all, which is what the paper exploits in the
Figure 7 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analytical.base import AnalyticalModel
from repro.machine import MachineSpec, blue_waters_xe6
from repro.stencil.blocking import block_counts
from repro.stencil.config import StencilConfig

__all__ = ["StencilAnalyticalModel"]


@dataclass
class StencilAnalyticalModel(AnalyticalModel):
    """Multi-level cache analytical model of the 7-point 3-D stencil.

    Parameters
    ----------
    machine:
        Node description providing cache sizes, line length and per-level
        inverse bandwidths; defaults to the Blue Waters XE6 node.
    timesteps:
        Number of sweeps represented by one prediction (must match the
        convention of the measurements being modeled).
    write_allocate:
        Whether stores allocate cache lines (Eq. 3) or not (Eq. 4).
    """

    machine: MachineSpec = None
    timesteps: int = 1
    write_allocate: bool = True

    def __post_init__(self) -> None:
        if self.machine is None:
            self.machine = blue_waters_xe6()
        if self.timesteps < 1:
            raise ValueError("timesteps must be >= 1")

    # ------------------------------------------------------------------ #
    # AnalyticalModel interface
    # ------------------------------------------------------------------ #
    def predict_config(self, config: StencilConfig) -> float:
        """Predicted execution time (seconds) of one configuration."""
        ti, tj, tk = config.blocks
        l = config.order
        W = self.machine.line_elements

        # Blocking re-map of Section VII-A: the per-tile dimensions replace
        # I, J, K, and their extended (ghost-including) counterparts.
        I_eff = math.ceil(ti / W) * W
        II = math.ceil((ti + 2 * l) / W) * W
        J_eff = tj
        JJ = tj + 2 * l
        K_eff = tk
        KK = tk + 2 * l
        nb = int(np.prod(block_counts(config.shape, (ti, tj, tk))))

        pread = 2 * l + 1
        sread = II * JJ
        swrite = I_eff * J_eff
        if self.write_allocate:
            stotal = pread * sread + 1 * swrite          # Eq. 3
        else:
            stotal = pread * sread                        # Eq. 4

        # Misses per level (Eq. 7 x Eq. 15), from L1 outwards; the "misses"
        # of the register level are all accesses.
        lines_per_plane = math.ceil(II / W)
        accesses = lines_per_plane * JJ * KK * (2 * pread - 1) * nb
        misses_prev = accesses
        total_time = 0.0
        for level in self.machine.hierarchy.levels:
            nplanes = self._nplanes(level.size_elements(self.machine.word_bytes),
                                    W, pread, sread, stotal, II)
            misses = lines_per_plane * JJ * KK * nplanes * nb
            hits = max(0.0, misses_prev - misses)
            t_data = W * level.beta(self.machine.word_bytes)  # per cacheline
            total_time += t_data * hits
            misses_prev = misses

        # Main memory services the last level's misses.
        t_data_mem = W * self.machine.beta_mem
        total_time += t_data_mem * misses_prev

        return float(total_time * self.timesteps)

    def predict_rows(self, X: np.ndarray, feature_names) -> np.ndarray:
        """Vectorized :meth:`predict_config` over a whole feature matrix.

        Mirrors the scalar path expression by expression (same rounding,
        same range validation, same blocking re-map, same R1–R4
        interpolation) on float64 column arrays, so a dataset is predicted
        in a handful of array operations instead of one config rebuild per
        row.
        """
        names = list(feature_names)

        def col(name: str, default: float, minimum: float) -> np.ndarray:
            if name in names:
                values = np.rint(X[:, names.index(name)])
            else:
                values = np.full(X.shape[0], float(default))
            # Same bound StencilConfig.__post_init__ enforces per row.
            if np.any(~(values >= minimum)):
                bad = values[~(values >= minimum)][0]
                raise ValueError(f"{name} must be >= {minimum:g}, got {bad:g}")
            return values

        I = col("I", 1, 1)  # noqa: E741 — paper notation
        J = col("J", 1, 1)
        K = col("K", 1, 1)
        bi = col("bi", 0, 0)
        bj = col("bj", 0, 0)
        bk = col("bk", 0, 0)
        col("threads", 1, 1)

        l = 1.0  # StencilConfig default order
        W = self.machine.line_elements

        # Effective tile sizes: 0 means un-blocked (full extent).
        ti = np.minimum(np.where(bi > 0, bi, I), I)
        tj = np.minimum(np.where(bj > 0, bj, J), J)
        tk = np.minimum(np.where(bk > 0, bk, K), K)

        I_eff = np.ceil(ti / W) * W
        II = np.ceil((ti + 2 * l) / W) * W
        J_eff = tj
        JJ = tj + 2 * l
        KK = tk + 2 * l
        nb = np.ceil(I / ti) * np.ceil(J / tj) * np.ceil(K / tk)

        pread = 2 * l + 1
        sread = II * JJ
        swrite = I_eff * J_eff
        if self.write_allocate:
            stotal = pread * sread + 1 * swrite          # Eq. 3
        else:
            stotal = pread * sread                        # Eq. 4

        lines_per_plane = np.ceil(II / W)
        accesses = lines_per_plane * JJ * KK * (2 * pread - 1) * nb
        misses_prev = accesses
        total_time = np.zeros(X.shape[0])
        for level in self.machine.hierarchy.levels:
            nplanes = self._nplanes_rows(
                level.size_elements(self.machine.word_bytes), W, pread,
                sread, stotal, II)
            misses = lines_per_plane * JJ * KK * nplanes * nb
            hits = np.maximum(0.0, misses_prev - misses)
            t_data = W * level.beta(self.machine.word_bytes)
            total_time = total_time + t_data * hits
            misses_prev = misses

        t_data_mem = W * self.machine.beta_mem
        total_time = total_time + t_data_mem * misses_prev

        return np.asarray(total_time * self.timesteps, dtype=np.float64)

    def config_from_features(self, row: np.ndarray, feature_names) -> StencilConfig:
        """Build a :class:`StencilConfig` from a numeric feature row."""
        values = {name: float(v) for name, v in zip(feature_names, row, strict=True)}
        return StencilConfig(
            I=int(round(values.get("I", 1))),
            J=int(round(values.get("J", 1))),
            K=int(round(values.get("K", 1))),
            bi=int(round(values.get("bi", 0))),
            bj=int(round(values.get("bj", 0))),
            bk=int(round(values.get("bk", 0))),
            unroll=int(round(values.get("unroll", 0))),
            threads=int(round(values.get("threads", 1))),
        )

    # ------------------------------------------------------------------ #
    # nplanes case analysis (Section IV-A)
    # ------------------------------------------------------------------ #
    def _nplanes(self, cache_elements: int, W: int, pread: int,
                 sread: float, stotal: float, II: float) -> float:
        """Planes read from the next level per k-iteration.

        The paper gives five cases guarded by conditions R1–R4 and smooths
        the transitions with linear interpolation; we interpolate on the
        ratio of cache capacity to the working-set quantity that defines
        each boundary.
        """
        rcol = pread / (2.0 * pread - 1.0)
        cap = cache_elements / W        # capacity measured in "new lines" worth

        r1 = cap * rcol >= stotal        # whole working set fits (with column reuse)
        r2 = cap > stotal                # working set fits without column reuse
        r3 = cap * rcol > sread          # one read plane fits
        r4 = cap * rcol < pread * II     # not even pread rows fit

        if r1:
            return 1.0
        if r2:
            # Between 1 and pread - 1: interpolate on how far capacity is
            # below the R1 boundary.
            frac = self._fraction(cap * rcol, stotal, stotal * rcol)
            return 1.0 + (pread - 2.0) * frac
        if r3:
            # Between pread - 1 and pread.
            frac = self._fraction(cap, stotal, sread / rcol)
            return (pread - 1.0) + 1.0 * frac
        if not r4:
            # Between pread and 2*pread - 1.
            frac = self._fraction(cap * rcol, sread, pread * II)
            return pread + (pread - 1.0) * frac
        return 2.0 * pread - 1.0

    def _nplanes_rows(self, cache_elements: int, W: int, pread: float,
                      sread: np.ndarray, stotal: np.ndarray,
                      II: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_nplanes` (same R1–R4 cases and interpolation)."""
        rcol = pread / (2.0 * pread - 1.0)
        cap = cache_elements / W

        r1 = cap * rcol >= stotal
        r2 = cap > stotal
        r3 = cap * rcol > sread
        r4 = cap * rcol < pread * II

        v2 = 1.0 + (pread - 2.0) * self._fraction_rows(cap * rcol, stotal, stotal * rcol)
        v3 = (pread - 1.0) + 1.0 * self._fraction_rows(cap, stotal, sread / rcol)
        v4 = pread + (pread - 1.0) * self._fraction_rows(cap * rcol, sread, pread * II)
        return np.select([r1, r2, r3, ~r4], [1.0, v2, v3, v4],
                         default=2.0 * pread - 1.0)

    @staticmethod
    def _fraction(value: float, upper: float, lower: float) -> float:
        """Linear position of *value* between *upper* (-> 0) and *lower* (-> 1)."""
        if upper <= lower:
            return 1.0
        return float(np.clip((upper - value) / (upper - lower), 0.0, 1.0))

    @staticmethod
    def _fraction_rows(value, upper, lower) -> np.ndarray:
        """Vectorized :meth:`_fraction` (elementwise on row arrays)."""
        upper = np.asarray(upper, dtype=np.float64)
        lower = np.asarray(lower, dtype=np.float64)
        span = np.where(upper > lower, upper - lower, 1.0)
        return np.where(upper <= lower, 1.0,
                        np.clip((upper - value) / span, 0.0, 1.0))
