"""Analytical-model interface and the roofline combination rule.

Equation 2 of the paper: assuming arithmetic and memory operations can be
overlapped, ``T = max(T_flops, T_mem)``.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["roofline_time", "AnalyticalModel"]


def roofline_time(t_flops: float, t_mem: float) -> float:
    """Combine flop time and memory time assuming perfect overlap (Eq. 2)."""
    if t_flops < 0 or t_mem < 0:
        raise ValueError("times must be non-negative")
    return max(t_flops, t_mem)


class AnalyticalModel(abc.ABC):
    """Interface every analytical model exposes to the hybrid framework.

    An analytical model is a *prediction-only* component: it has no
    ``fit`` step (that is the point of the hybrid approach — the paper's
    Section VI trains only the ML component).  Implementations convert
    application configurations into predicted execution times.
    """

    @abc.abstractmethod
    def predict_config(self, config) -> float:
        """Predicted execution time in seconds for one configuration object."""

    def predict_configs(self, configs) -> np.ndarray:
        """Predicted execution times for a sequence of configurations."""
        return np.array([self.predict_config(cfg) for cfg in configs], dtype=np.float64)

    def predict(self, X: np.ndarray, feature_names) -> np.ndarray:
        """Predicted times for a numeric feature matrix.

        Parameters
        ----------
        X:
            ``(n_samples, n_features)`` matrix.
        feature_names:
            Names of the columns of *X*, used to rebuild configuration
            objects (subclasses define which names they understand).
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return self.predict_rows(X, feature_names)

    def predict_rows(self, X: np.ndarray, feature_names) -> np.ndarray:
        """Vectorized prediction hook for a validated 2-D feature matrix.

        The default rebuilds one configuration object per row and calls
        :meth:`predict_config`; subclasses whose formulas are pure
        arithmetic (the FMM and stencil models) override this with a
        whole-matrix implementation so predicting a dataset costs a few
        array expressions instead of ``n_samples`` Python round-trips.
        """
        return np.array(
            [self.predict_config(self.config_from_features(row, feature_names)) for row in X],
            dtype=np.float64,
        )

    @abc.abstractmethod
    def config_from_features(self, row: np.ndarray, feature_names):
        """Rebuild a configuration object from one numeric feature row."""
