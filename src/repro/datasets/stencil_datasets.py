"""Stencil performance datasets (Figures 3A, 5, 6 and 7).

Each generator pairs a named :class:`~repro.stencil.config.StencilConfigSpace`
from the paper with the :class:`~repro.stencil.perf_sim.StencilPerformanceSimulator`
(or any object exposing ``times(configs)``, e.g. the real
:class:`~repro.stencil.executor.StencilExecutor` for laptop-scale spaces).
"""

from __future__ import annotations

from repro.core.features import PerformanceDataset
from repro.stencil.config import StencilConfigSpace
from repro.stencil.perf_sim import StencilPerformanceSimulator

__all__ = [
    "stencil_dataset_from_space",
    "blocked_small_grid_dataset",
    "grid_only_dataset",
    "threaded_dataset",
]


def stencil_dataset_from_space(space: StencilConfigSpace, *, name: str,
                               simulator=None, max_configs: int | None = None,
                               random_state=0) -> PerformanceDataset:
    """Build a dataset from an arbitrary stencil configuration space.

    Parameters
    ----------
    space:
        The configuration space to enumerate.
    name:
        Dataset name.
    simulator:
        Object with a ``times(configs)`` method; defaults to a
        :class:`StencilPerformanceSimulator` on the Blue Waters node.
    max_configs:
        Optional uniform subsample of the space (keeps tests fast).
    random_state:
        Seed for the optional subsample.
    """
    simulator = simulator if simulator is not None else StencilPerformanceSimulator()
    configs = space.configs()
    if max_configs is not None and len(configs) > max_configs:
        from repro.utils.rng import check_random_state

        rng = check_random_state(random_state)
        idx = rng.permutation(len(configs))[:max_configs]
        configs = [configs[i] for i in sorted(idx)]
    X = space.to_feature_matrix(configs)
    y = simulator.times(configs)
    return PerformanceDataset(name=name, X=X, y=y,
                              feature_names=list(space.feature_names),
                              configs=configs)


def blocked_small_grid_dataset(*, simulator=None, max_configs: int | None = None,
                               random_state=0) -> PerformanceDataset:
    """Figure 3A / Figure 6 dataset: small plane grids with loop blocking.

    ``X = (I, J, K, bi, bj, bk)`` with ``I x J x K = 1x16x16 .. 1x128x128``
    (stride 16) and blocking from ``1x1x1`` up to the full extent.
    """
    return stencil_dataset_from_space(
        StencilConfigSpace.small_grids_with_blocking(),
        name="stencil-blocked",
        simulator=simulator,
        max_configs=max_configs,
        random_state=random_state,
    )


def grid_only_dataset(*, simulator=None, max_configs: int | None = None,
                      random_state=0) -> PerformanceDataset:
    """Figure 5 dataset: large cubic grids, no blocking.

    ``X = (I, J, K)`` with ``128^3 .. 256^3`` (stride 16).
    """
    return stencil_dataset_from_space(
        StencilConfigSpace.large_grids_no_blocking(),
        name="stencil-grid-only",
        simulator=simulator,
        max_configs=max_configs,
        random_state=random_state,
    )


def threaded_dataset(*, simulator=None, max_threads: int = 8,
                     max_configs: int | None = None,
                     random_state=0) -> PerformanceDataset:
    """Figure 7 dataset: plane grids with multi-threading.

    ``X = (I, J, K, t)`` with ``128x128x1 .. 176x176x1`` (stride 16) and
    ``t = 1 .. 8`` threads.
    """
    return stencil_dataset_from_space(
        StencilConfigSpace.threaded_plane_grids(max_threads=max_threads),
        name="stencil-threaded",
        simulator=simulator,
        max_configs=max_configs,
        random_state=random_state,
    )
