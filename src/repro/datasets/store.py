"""Fingerprint-keyed persistent dataset store.

The executable FMM and stencil simulators are deterministic but not free:
regenerating a dataset in every experiment — and, with a process-pool
executor, in every *worker* — wastes most of a run's wall clock.
:class:`DatasetStore` memoizes generated datasets to disk keyed by a
:class:`DatasetSpec` fingerprint, so a dataset is simulated once per
machine and afterwards loaded from ``.npz`` by every experiment,
repeated invocation and worker process alike.

Fingerprint scheme
------------------
A :class:`DatasetSpec` is the *recipe* for a dataset: the registry name
plus the generator arguments that affect its content (``max_configs``,
``random_state``).  Its fingerprint is the first 16 hex digits of the
SHA-256 of the canonical JSON encoding of those fields plus a format
version plus the *simulator versions* (the ``SIMULATOR_VERSION``
constants of :mod:`repro.fmm.perf_sim` and
:mod:`repro.stencil.perf_sim`).  Two specs with the same fingerprint
therefore denote the same arrays bit-for-bit (generation is
deterministic), bumping a simulator version automatically invalidates
every dataset that simulator produced, and bumping ``_FORMAT_VERSION``
invalidates every stored artifact at once when the on-disk layout
changes.

On-disk layout (under the store root)::

    datasets/<name>-<fingerprint>.npz    X, y, feature_names, JSON-encoded configs
    caches/<model_key>-<fingerprint>.npz warmed analytical-prediction caches

Configuration objects are serialized as JSON field dictionaries plus a
*whitelisted* class name (never pickle), so loading a store directory can
rebuild configs but cannot execute arbitrary code.

The store also persists warmed
:class:`~repro.analytical.cache.AnalyticalPredictionCache` contents keyed
by ``(analytical model key, dataset fingerprint)``, so the analytical
warm-up — one vectorized evaluation of the full dataset — happens once
ever rather than once per experiment or per worker process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.features import PerformanceDataset

__all__ = ["DatasetSpec", "DatasetStore"]

#: Bump to invalidate every stored dataset/cache when the layout changes.
#: Version 2 added the simulator-version token to the fingerprint recipe.
_FORMAT_VERSION = 2


def _simulator_versions() -> str:
    """Version token covering every executable performance simulator.

    Stored datasets are simulator *output*: a behavioural change to
    :mod:`repro.fmm.perf_sim` or :mod:`repro.stencil.perf_sim` makes every
    memoized dataset stale even though the recipe fields are unchanged.
    Folding the simulators' ``SIMULATOR_VERSION`` constants into the
    fingerprint invalidates stored artifacts automatically when either is
    bumped.  (Looked up at call time, not import time, so a bump is
    honored by already-constructed specs too.)
    """
    from repro.fmm import perf_sim as fmm_sim
    from repro.stencil import perf_sim as stencil_sim

    return f"fmm{fmm_sim.SIMULATOR_VERSION}-stencil{stencil_sim.SIMULATOR_VERSION}"


@dataclass(frozen=True)
class DatasetSpec:
    """Picklable recipe for one of the registry datasets.

    Attributes
    ----------
    name:
        Key in :data:`repro.datasets.registry.DATASET_REGISTRY`.
    max_configs:
        Optional uniform subsample of the configuration space.
    random_state:
        Seed of the optional subsample.
    """

    name: str
    max_configs: int | None = None
    random_state: int = 0

    def canonical(self) -> str:
        """Canonical JSON encoding (stable key order) used for fingerprinting."""
        return json.dumps(
            {
                "name": self.name,
                "max_configs": self.max_configs,
                "random_state": self.random_state,
                "version": _FORMAT_VERSION,
                "simulators": _simulator_versions(),
            },
            sort_keys=True,
        )

    @property
    def fingerprint(self) -> str:
        """First 16 hex digits of the SHA-256 of :meth:`canonical`."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    def build(self) -> PerformanceDataset:
        """Generate the dataset from scratch (deterministic)."""
        from repro.datasets.registry import load_dataset

        return load_dataset(self.name, max_configs=self.max_configs,
                            random_state=self.random_state)


class DatasetStore:
    """On-disk memo of generated datasets and warmed analytical caches.

    Parameters
    ----------
    root:
        Directory the store lives in (created on first write).

    Attributes
    ----------
    hits / misses:
        Number of :meth:`get` calls served from disk vs. generated.
    cache_hits / cache_misses:
        Number of :meth:`load_analytical_cache` calls that found vs.
        missed a persisted cache file.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ #
    # Datasets
    # ------------------------------------------------------------------ #
    def dataset_path(self, spec: DatasetSpec) -> Path:
        """File the dataset of *spec* is (or would be) stored at."""
        return self.root / "datasets" / f"{spec.name}-{spec.fingerprint}.npz"

    def get(self, spec: DatasetSpec) -> PerformanceDataset:
        """Load the dataset of *spec* from disk, generating (and saving) on miss."""
        path = self.dataset_path(spec)
        if path.exists():
            self.hits += 1
            return self._load_dataset(path)
        self.misses += 1
        dataset = spec.build()
        self._save_dataset(path, dataset)
        return dataset

    @staticmethod
    def _config_classes() -> dict:
        """Whitelist of configuration classes the store may rebuild on load."""
        from repro.fmm.config import FmmConfig
        from repro.stencil.config import StencilConfig

        return {"StencilConfig": StencilConfig, "FmmConfig": FmmConfig}

    @classmethod
    def _encode_configs(cls, configs: list) -> str:
        if not configs:
            return json.dumps(None)
        class_name = type(configs[0]).__name__
        if class_name not in cls._config_classes() or any(
                type(c).__name__ != class_name for c in configs):
            raise TypeError(
                f"cannot persist configs of type {class_name!r}; storable types: "
                f"{sorted(cls._config_classes())}")
        return json.dumps({"class": class_name,
                           "configs": [dataclasses.asdict(c) for c in configs]})

    @classmethod
    def _decode_configs(cls, encoded: str) -> list:
        data = json.loads(encoded)
        if data is None:
            return []
        config_cls = cls._config_classes()[data["class"]]
        return [config_cls(**fields) for fields in data["configs"]]

    @staticmethod
    def _tmp_path(path: Path) -> Path:
        """Per-process temp name next to *path* (np.savez insists on ``.npz``).

        The pid suffix keeps concurrent writers of the same entry from
        clobbering each other's half-written temp file; the final atomic
        rename means the last completed writer wins with a valid file.
        """
        return Path(f"{path}.{os.getpid()}.tmp.npz")

    @classmethod
    def _save_dataset(cls, path: Path, dataset: PerformanceDataset) -> None:
        cls._write_bytes(path, cls.encode_dataset(dataset))

    @classmethod
    def _load_dataset(cls, source) -> PerformanceDataset:
        """Rebuild a dataset from a stored ``.npz`` path or file object."""
        with np.load(source, allow_pickle=False) as data:
            return PerformanceDataset(
                name=str(data["name"]),
                X=data["X"],
                y=data["y"],
                feature_names=[str(n) for n in data["feature_names"]],
                configs=cls._decode_configs(str(data["configs"])),
            )

    @classmethod
    def encode_dataset(cls, dataset: PerformanceDataset) -> bytes:
        """The dataset as raw ``.npz`` bytes (the store's on-disk format).

        The byte form doubles as the wire format of the distributed
        fleet's store bootstrap: the coordinator ships exactly what the
        worker's store would hold, so a downloaded blob round-trips
        through :meth:`put_dataset_bytes` + :meth:`get` bit-for-bit.
        """
        buf = io.BytesIO()
        np.savez(
            buf,
            name=np.array(dataset.name),
            X=dataset.X,
            y=dataset.y,
            feature_names=np.array(list(dataset.feature_names)),
            configs=np.array(cls._encode_configs(dataset.configs)),
        )
        return buf.getvalue()

    @classmethod
    def decode_dataset_bytes(cls, data: bytes) -> PerformanceDataset:
        """Inverse of :meth:`encode_dataset` (store-less workers use this)."""
        return cls._load_dataset(io.BytesIO(data))

    @classmethod
    def _write_bytes(cls, path: Path, data: bytes) -> Path:
        """Atomically place *data* at *path* (same tmp+rename as datasets)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = cls._tmp_path(path)
        tmp.write_bytes(data)
        tmp.replace(path)
        return path

    def dataset_bytes(self, spec: DatasetSpec) -> bytes:
        """Raw stored bytes of the dataset of *spec* (must exist)."""
        return self.dataset_path(spec).read_bytes()

    def put_dataset_bytes(self, spec: DatasetSpec, data: bytes) -> Path:
        """Install pre-encoded dataset bytes under the fingerprint of *spec*."""
        return self._write_bytes(self.dataset_path(spec), data)

    # ------------------------------------------------------------------ #
    # Analytical-prediction caches
    # ------------------------------------------------------------------ #
    def cache_path(self, model_key: str, spec: DatasetSpec) -> Path:
        """File the warmed cache for ``(model_key, spec)`` is stored at."""
        return self.root / "caches" / f"{model_key}-{spec.fingerprint}.npz"

    def load_analytical_cache(self, model_key: str, spec: DatasetSpec,
                              model, feature_names):
        """Warmed cache for ``(model_key, spec)``, or ``None`` when not stored."""
        from repro.analytical.cache import AnalyticalPredictionCache

        path = self.cache_path(model_key, spec)
        if not path.exists():
            self.cache_misses += 1
            return None
        self.cache_hits += 1
        return AnalyticalPredictionCache.load(path, model, feature_names)

    def save_analytical_cache(self, model_key: str, spec: DatasetSpec,
                              cache) -> Path:
        """Persist the memoized rows of *cache* for ``(model_key, spec)``."""
        path = self.cache_path(model_key, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Same atomic tmp-write + rename as _save_dataset: an interrupted
        # run must not leave a truncated cache file that poisons later loads.
        tmp = self._tmp_path(path)
        cache.save(tmp)
        tmp.replace(path)
        return path

    def cache_bytes(self, model_key: str, spec: DatasetSpec) -> bytes:
        """Raw stored bytes of the ``(model_key, spec)`` cache (must exist)."""
        return self.cache_path(model_key, spec).read_bytes()

    def put_cache_bytes(self, model_key: str, spec: DatasetSpec,
                        data: bytes) -> Path:
        """Install pre-encoded cache bytes under ``(model_key, spec)``."""
        return self._write_bytes(self.cache_path(model_key, spec), data)

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def prune(self, keep_fingerprints) -> list[Path]:
        """Delete every stored artifact whose fingerprint is not kept.

        Long-lived stores accumulate entries for retired settings,
        subsample sizes and simulator versions (each fingerprint change
        *adds* files, it never removes the stale ones).  ``prune`` walks
        the ``datasets/`` and ``caches/`` directories, parses the
        fingerprint out of each ``<name>-<fingerprint>.npz`` filename and
        unlinks files whose fingerprint is not in *keep_fingerprints*
        (leftover ``*.tmp.npz`` files from interrupted writes never parse
        to a kept fingerprint and are collected too).  Returns the removed
        paths.  Not safe against concurrent writers of the entries being
        pruned.
        """
        keep = set(keep_fingerprints)
        removed: list[Path] = []
        for subdir in ("datasets", "caches"):
            directory = self.root / subdir
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.npz")):
                fingerprint = path.stem.rsplit("-", 1)[-1]
                if fingerprint not in keep:
                    path.unlink()
                    removed.append(path)
        return removed
