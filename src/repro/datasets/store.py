"""Fingerprint-keyed persistent dataset store.

The executable FMM and stencil simulators are deterministic but not free:
regenerating a dataset in every experiment — and, with a process-pool
executor, in every *worker* — wastes most of a run's wall clock.
:class:`DatasetStore` memoizes generated datasets to disk keyed by a
:class:`DatasetSpec` fingerprint, so a dataset is simulated once per
machine and afterwards loaded from ``.npz`` by every experiment,
repeated invocation and worker process alike.

Fingerprint scheme
------------------
A :class:`DatasetSpec` is the *recipe* for a dataset: the registry name
plus the generator arguments that affect its content (``max_configs``,
``random_state``).  Its fingerprint is the first 16 hex digits of the
SHA-256 of the canonical JSON encoding of those fields plus a format
version.  Two specs with the same fingerprint therefore denote the same
arrays bit-for-bit (generation is deterministic), and bumping
``_FORMAT_VERSION`` invalidates every stored artifact at once when the
on-disk layout changes.

On-disk layout (under the store root)::

    datasets/<name>-<fingerprint>.npz    X, y, feature_names, JSON-encoded configs
    caches/<model_key>-<fingerprint>.npz warmed analytical-prediction caches

Configuration objects are serialized as JSON field dictionaries plus a
*whitelisted* class name (never pickle), so loading a store directory can
rebuild configs but cannot execute arbitrary code.

The store also persists warmed
:class:`~repro.analytical.cache.AnalyticalPredictionCache` contents keyed
by ``(analytical model key, dataset fingerprint)``, so the analytical
warm-up — one vectorized evaluation of the full dataset — happens once
ever rather than once per experiment or per worker process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.features import PerformanceDataset

__all__ = ["DatasetSpec", "DatasetStore"]

#: Bump to invalidate every stored dataset/cache when the layout changes.
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class DatasetSpec:
    """Picklable recipe for one of the registry datasets.

    Attributes
    ----------
    name:
        Key in :data:`repro.datasets.registry.DATASET_REGISTRY`.
    max_configs:
        Optional uniform subsample of the configuration space.
    random_state:
        Seed of the optional subsample.
    """

    name: str
    max_configs: int | None = None
    random_state: int = 0

    def canonical(self) -> str:
        """Canonical JSON encoding (stable key order) used for fingerprinting."""
        return json.dumps(
            {
                "name": self.name,
                "max_configs": self.max_configs,
                "random_state": self.random_state,
                "version": _FORMAT_VERSION,
            },
            sort_keys=True,
        )

    @property
    def fingerprint(self) -> str:
        """First 16 hex digits of the SHA-256 of :meth:`canonical`."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    def build(self) -> PerformanceDataset:
        """Generate the dataset from scratch (deterministic)."""
        from repro.datasets.registry import load_dataset

        return load_dataset(self.name, max_configs=self.max_configs,
                            random_state=self.random_state)


class DatasetStore:
    """On-disk memo of generated datasets and warmed analytical caches.

    Parameters
    ----------
    root:
        Directory the store lives in (created on first write).

    Attributes
    ----------
    hits / misses:
        Number of :meth:`get` calls served from disk vs. generated.
    cache_hits / cache_misses:
        Number of :meth:`load_analytical_cache` calls that found vs.
        missed a persisted cache file.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ #
    # Datasets
    # ------------------------------------------------------------------ #
    def dataset_path(self, spec: DatasetSpec) -> Path:
        """File the dataset of *spec* is (or would be) stored at."""
        return self.root / "datasets" / f"{spec.name}-{spec.fingerprint}.npz"

    def get(self, spec: DatasetSpec) -> PerformanceDataset:
        """Load the dataset of *spec* from disk, generating (and saving) on miss."""
        path = self.dataset_path(spec)
        if path.exists():
            self.hits += 1
            return self._load_dataset(path)
        self.misses += 1
        dataset = spec.build()
        self._save_dataset(path, dataset)
        return dataset

    @staticmethod
    def _config_classes() -> dict:
        """Whitelist of configuration classes the store may rebuild on load."""
        from repro.fmm.config import FmmConfig
        from repro.stencil.config import StencilConfig

        return {"StencilConfig": StencilConfig, "FmmConfig": FmmConfig}

    @classmethod
    def _encode_configs(cls, configs: list) -> str:
        if not configs:
            return json.dumps(None)
        class_name = type(configs[0]).__name__
        if class_name not in cls._config_classes() or any(
                type(c).__name__ != class_name for c in configs):
            raise TypeError(
                f"cannot persist configs of type {class_name!r}; storable types: "
                f"{sorted(cls._config_classes())}")
        return json.dumps({"class": class_name,
                           "configs": [dataclasses.asdict(c) for c in configs]})

    @classmethod
    def _decode_configs(cls, encoded: str) -> list:
        data = json.loads(encoded)
        if data is None:
            return []
        config_cls = cls._config_classes()[data["class"]]
        return [config_cls(**fields) for fields in data["configs"]]

    @staticmethod
    def _tmp_path(path: Path) -> Path:
        """Per-process temp name next to *path* (np.savez insists on ``.npz``).

        The pid suffix keeps concurrent writers of the same entry from
        clobbering each other's half-written temp file; the final atomic
        rename means the last completed writer wins with a valid file.
        """
        return Path(f"{path}.{os.getpid()}.tmp.npz")

    @classmethod
    def _save_dataset(cls, path: Path, dataset: PerformanceDataset) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = cls._tmp_path(path)
        np.savez(
            tmp,
            name=np.array(dataset.name),
            X=dataset.X,
            y=dataset.y,
            feature_names=np.array(list(dataset.feature_names)),
            configs=np.array(cls._encode_configs(dataset.configs)),
        )
        tmp.replace(path)

    @classmethod
    def _load_dataset(cls, path: Path) -> PerformanceDataset:
        with np.load(path, allow_pickle=False) as data:
            return PerformanceDataset(
                name=str(data["name"]),
                X=data["X"],
                y=data["y"],
                feature_names=[str(n) for n in data["feature_names"]],
                configs=cls._decode_configs(str(data["configs"])),
            )

    # ------------------------------------------------------------------ #
    # Analytical-prediction caches
    # ------------------------------------------------------------------ #
    def cache_path(self, model_key: str, spec: DatasetSpec) -> Path:
        """File the warmed cache for ``(model_key, spec)`` is stored at."""
        return self.root / "caches" / f"{model_key}-{spec.fingerprint}.npz"

    def load_analytical_cache(self, model_key: str, spec: DatasetSpec,
                              model, feature_names):
        """Warmed cache for ``(model_key, spec)``, or ``None`` when not stored."""
        from repro.analytical.cache import AnalyticalPredictionCache

        path = self.cache_path(model_key, spec)
        if not path.exists():
            self.cache_misses += 1
            return None
        self.cache_hits += 1
        return AnalyticalPredictionCache.load(path, model, feature_names)

    def save_analytical_cache(self, model_key: str, spec: DatasetSpec,
                              cache) -> Path:
        """Persist the memoized rows of *cache* for ``(model_key, spec)``."""
        path = self.cache_path(model_key, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Same atomic tmp-write + rename as _save_dataset: an interrupted
        # run must not leave a truncated cache file that poisons later loads.
        tmp = self._tmp_path(path)
        cache.save(tmp)
        tmp.replace(path)
        return path
