"""Fingerprint-keyed persistent dataset store over pluggable byte backends.

The executable FMM and stencil simulators are deterministic but not free:
regenerating a dataset in every experiment — and, with a process-pool
executor, in every *worker* — wastes most of a run's wall clock.
:class:`DatasetStore` memoizes generated datasets keyed by a
:class:`DatasetSpec` fingerprint, so a dataset is simulated once and
afterwards loaded by every experiment, repeated invocation and worker
process alike.

All byte I/O is delegated to a
:class:`~repro.datasets.backends.StoreBackend`:

* a directory path (or ``file://`` URL) opens the historical on-disk
  layout via :class:`~repro.datasets.backends.LocalBackend`;
* ``memory://`` URLs open an in-memory store;
* ``http(s)://`` URLs open an S3-style object store (see
  :mod:`repro.datasets.object_server` for the bundled server), which
  lets distributed fleet workers bootstrap shared artifacts directly
  instead of relaying blobs through the coordinator.

Fingerprint scheme
------------------
A :class:`DatasetSpec` is the *recipe* for a dataset: the registry name
plus the generator arguments that affect its content (``max_configs``,
``random_state``).  Its fingerprint is the first 16 hex digits of the
SHA-256 of the canonical JSON encoding of those fields plus a format
version plus the *simulator versions* (the ``SIMULATOR_VERSION``
constants of :mod:`repro.fmm.perf_sim` and
:mod:`repro.stencil.perf_sim`).  Two specs with the same fingerprint
therefore denote the same arrays bit-for-bit (generation is
deterministic), bumping a simulator version automatically invalidates
every dataset that simulator produced, and bumping ``_FORMAT_VERSION``
invalidates every stored artifact at once when the layout changes.

Key layout (identical on every backend)::

    datasets/<name>-<fingerprint>.npz    X, y, feature_names, JSON-encoded configs
    caches/<model_key>-<fingerprint>.npz warmed analytical-prediction caches
    models/<series>-<plan_fp>.npz        published fitted models (serving tier)

The ``models/`` family holds *fitted* hybrid/ML models published by
``run_plan(..., publish_models=True)``, keyed by the experiment plan's
content fingerprint plus the series label; the blob format (packed tree
arenas + scaler/analytical state, no pickle) is owned by
:mod:`repro.serving.model_io`, the store just moves the bytes — which is
what gives the serving tier checksum sidecars and local/memory/HTTP
backend independence for free.

Configuration objects are serialized as JSON field dictionaries plus a
*whitelisted* class name (never pickle), so loading a store can rebuild
configs but cannot execute arbitrary code.

The store also persists warmed
:class:`~repro.analytical.cache.AnalyticalPredictionCache` contents keyed
by ``(analytical model key, dataset fingerprint)``, so the analytical
warm-up — one vectorized evaluation of the full dataset — happens once
ever rather than once per experiment or per worker process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import logging
from dataclasses import dataclass
from pathlib import Path, PurePosixPath

import numpy as np

from repro.core.features import PerformanceDataset
from repro.datasets.backends import (
    CHECKSUM_SUFFIX,
    IntegrityError,
    LocalBackend,
    StoreBackend,
    is_checksum_key,
    resolve_backend,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["DatasetSpec", "DatasetStore"]

logger = logging.getLogger(__name__)

#: Bump to invalidate every stored dataset/cache when the layout changes.
#: Version 2 added the simulator-version token to the fingerprint recipe.
_FORMAT_VERSION = 2


def _simulator_versions() -> str:
    """Version token covering every executable performance simulator.

    Stored datasets are simulator *output*: a behavioural change to
    :mod:`repro.fmm.perf_sim` or :mod:`repro.stencil.perf_sim` makes every
    memoized dataset stale even though the recipe fields are unchanged.
    Folding the simulators' ``SIMULATOR_VERSION`` constants into the
    fingerprint invalidates stored artifacts automatically when either is
    bumped.  (Looked up at call time, not import time, so a bump is
    honored by already-constructed specs too.)
    """
    from repro.fmm import perf_sim as fmm_sim
    from repro.stencil import perf_sim as stencil_sim

    return f"fmm{fmm_sim.SIMULATOR_VERSION}-stencil{stencil_sim.SIMULATOR_VERSION}"


@dataclass(frozen=True)
class DatasetSpec:
    """Picklable recipe for one of the registry datasets.

    Attributes
    ----------
    name:
        Key in :data:`repro.datasets.registry.DATASET_REGISTRY`.
    max_configs:
        Optional uniform subsample of the configuration space.
    random_state:
        Seed of the optional subsample.
    """

    name: str
    max_configs: int | None = None
    random_state: int = 0

    def canonical(self) -> str:
        """Canonical JSON encoding (stable key order) used for fingerprinting."""
        return json.dumps(
            {
                "name": self.name,
                "max_configs": self.max_configs,
                "random_state": self.random_state,
                "version": _FORMAT_VERSION,
                "simulators": _simulator_versions(),
            },
            sort_keys=True,
        )

    @property
    def fingerprint(self) -> str:
        """First 16 hex digits of the SHA-256 of :meth:`canonical`."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    def build(self) -> PerformanceDataset:
        """Generate the dataset from scratch (deterministic)."""
        from repro.datasets.registry import load_dataset

        return load_dataset(self.name, max_configs=self.max_configs,
                            random_state=self.random_state)


class DatasetStore:
    """Memo of generated datasets and warmed analytical caches.

    Parameters
    ----------
    root:
        Where the store lives: a directory path (the historical local
        layout), a ``file://`` / ``memory://`` / ``http(s)://`` store
        URL, or an explicit :class:`StoreBackend` instance.
    auth:
        Shared-secret key bytes for backends that sign their requests
        (an ``http(s)://`` object store); ignored for local/memory
        roots and explicit backend instances.

    Attributes
    ----------
    hits / misses:
        Number of :meth:`get` calls served from the backend vs. generated.
    cache_hits / cache_misses:
        Number of :meth:`load_analytical_cache` calls that found vs.
        missed a persisted cache.
    """

    def __init__(self, root: str | Path | StoreBackend, *,
                 auth: bytes | None = None) -> None:
        if isinstance(root, StoreBackend):
            self.backend = root
        elif isinstance(root, str) and "://" in root:
            self.backend = resolve_backend(root, auth=auth)
        else:
            self.backend = LocalBackend(root)
        # Hit/miss/integrity counters live on the shared telemetry plane
        # (visible on any /metrics endpoint); the public attribute names
        # stay available as the read-only properties below.
        self.metrics = MetricsRegistry(attach_to=REGISTRY)
        self._counters = {
            key: self.metrics.counter(f"repro_store_{key}_total", help)
            for key, help in (
                ("hits", "Dataset reads served from the backend"),
                ("misses", "Dataset reads that had to generate"),
                ("cache_hits", "Analytical-cache reads served from the backend"),
                ("cache_misses", "Analytical-cache reads that had to re-warm"),
                ("integrity_failures",
                 "Blobs rejected by checksum verification (each one is "
                 "deleted and regenerated/refetched instead of "
                 "deserializing garbage)"),
            )
        }

    @property
    def hits(self) -> int:
        """Dataset reads served from the backend."""
        return int(self._counters["hits"].value)

    @property
    def misses(self) -> int:
        """Dataset reads that had to generate."""
        return int(self._counters["misses"].value)

    @property
    def cache_hits(self) -> int:
        """Analytical-cache reads served from the backend."""
        return int(self._counters["cache_hits"].value)

    @property
    def cache_misses(self) -> int:
        """Analytical-cache reads that had to re-warm."""
        return int(self._counters["cache_misses"].value)

    @property
    def integrity_failures(self) -> int:
        """Blobs rejected by checksum verification."""
        return int(self._counters["integrity_failures"].value)

    @property
    def root(self) -> Path | None:
        """The store directory for local backends, ``None`` otherwise."""
        return self.backend.root if isinstance(self.backend, LocalBackend) else None

    @property
    def locator(self) -> str | None:
        """URL another process can open this store with (``None``: not shareable).

        The distributed coordinator advertises this in its
        ``PlanAssignment`` manifests so fleet workers can bootstrap
        artifacts directly from shared storage.
        """
        return self.backend.locator

    def _artifact_path(self, key: str):
        """Path-like identity of *key*: a real :class:`Path` on local backends."""
        if isinstance(self.backend, LocalBackend):
            return self.backend.path(key)
        return PurePosixPath(key)

    # ------------------------------------------------------------------ #
    # Datasets
    # ------------------------------------------------------------------ #
    @staticmethod
    def dataset_key(spec: DatasetSpec) -> str:
        """Backend key the dataset of *spec* is (or would be) stored under."""
        return f"datasets/{spec.name}-{spec.fingerprint}.npz"

    def dataset_path(self, spec: DatasetSpec):
        """Path-like identity of the dataset of *spec* (a file on local stores)."""
        return self._artifact_path(self.dataset_key(spec))

    def has_dataset(self, spec: DatasetSpec) -> bool:
        """Whether the dataset of *spec* is stored (no counter update)."""
        return self.backend.exists(self.dataset_key(spec))

    def get(self, spec: DatasetSpec) -> PerformanceDataset:
        """Load the dataset of *spec* from the store, generating (and saving) on miss.

        Read-first (no exists/read pair): one backend round trip on the
        warm path, and no window for a concurrent prune to turn an
        observed hit into a crash.  A blob that fails checksum
        verification is rejected — deleted and regenerated like a miss —
        instead of deserializing garbage into an experiment.
        """
        key = self.dataset_key(spec)
        try:
            data = self.backend.read(key)
        except IntegrityError as exc:
            self._counters["integrity_failures"].inc()
            logger.warning("rejecting corrupt dataset blob: %s; regenerating", exc)
            self._discard(key)
        except KeyError:
            pass
        else:
            self._counters["hits"].inc()
            return self._load_dataset(io.BytesIO(data))
        self._counters["misses"].inc()
        dataset = spec.build()
        self.backend.write(key, self.encode_dataset(dataset))
        return dataset

    def _discard(self, key: str) -> None:
        """Best-effort removal of a corrupt blob (and its sidecar)."""
        try:
            self.backend.delete(key)
        except (KeyError, OSError):
            pass

    @staticmethod
    def _config_classes() -> dict:
        """Whitelist of configuration classes the store may rebuild on load."""
        from repro.fmm.config import FmmConfig
        from repro.stencil.config import StencilConfig

        return {"StencilConfig": StencilConfig, "FmmConfig": FmmConfig}

    @classmethod
    def _encode_configs(cls, configs: list) -> str:
        if not configs:
            return json.dumps(None)
        class_name = type(configs[0]).__name__
        if class_name not in cls._config_classes() or any(
                type(c).__name__ != class_name for c in configs):
            raise TypeError(
                f"cannot persist configs of type {class_name!r}; storable types: "
                f"{sorted(cls._config_classes())}")
        return json.dumps({"class": class_name,
                           "configs": [dataclasses.asdict(c) for c in configs]})

    @classmethod
    def _decode_configs(cls, encoded: str) -> list:
        data = json.loads(encoded)
        if data is None:
            return []
        config_cls = cls._config_classes()[data["class"]]
        return [config_cls(**fields) for fields in data["configs"]]

    @classmethod
    def _load_dataset(cls, source) -> PerformanceDataset:
        """Rebuild a dataset from stored ``.npz`` bytes (path or file object)."""
        with np.load(source, allow_pickle=False) as data:
            return PerformanceDataset(
                name=str(data["name"]),
                X=data["X"],
                y=data["y"],
                feature_names=[str(n) for n in data["feature_names"]],
                configs=cls._decode_configs(str(data["configs"])),
            )

    @classmethod
    def encode_dataset(cls, dataset: PerformanceDataset) -> bytes:
        """The dataset as raw ``.npz`` bytes (the store's artifact format).

        The byte form doubles as the wire format of the distributed
        fleet's store bootstrap: the coordinator (or the shared object
        store) ships exactly what the worker's store would hold, so a
        downloaded blob round-trips through :meth:`put_dataset_bytes` +
        :meth:`get` bit-for-bit.
        """
        buf = io.BytesIO()
        np.savez(
            buf,
            name=np.array(dataset.name),
            X=dataset.X,
            y=dataset.y,
            feature_names=np.array(list(dataset.feature_names)),
            configs=np.array(cls._encode_configs(dataset.configs)),
        )
        return buf.getvalue()

    @classmethod
    def decode_dataset_bytes(cls, data: bytes) -> PerformanceDataset:
        """Inverse of :meth:`encode_dataset` (store-less workers use this)."""
        return cls._load_dataset(io.BytesIO(data))

    def dataset_bytes(self, spec: DatasetSpec) -> bytes:
        """Raw stored bytes of the dataset of *spec* (:class:`KeyError` when absent)."""
        return self.backend.read(self.dataset_key(spec))

    def put_dataset_bytes(self, spec: DatasetSpec, data: bytes):
        """Install pre-encoded dataset bytes under the fingerprint of *spec*."""
        key = self.dataset_key(spec)
        self.backend.write(key, data)
        return self._artifact_path(key)

    # ------------------------------------------------------------------ #
    # Analytical-prediction caches
    # ------------------------------------------------------------------ #
    @staticmethod
    def cache_key(model_key: str, spec: DatasetSpec) -> str:
        """Backend key of the warmed cache for ``(model_key, spec)``."""
        return f"caches/{model_key}-{spec.fingerprint}.npz"

    def cache_path(self, model_key: str, spec: DatasetSpec):
        """Path-like identity of the ``(model_key, spec)`` cache."""
        return self._artifact_path(self.cache_key(model_key, spec))

    def has_cache(self, model_key: str, spec: DatasetSpec) -> bool:
        """Whether the ``(model_key, spec)`` cache is stored (no counter update)."""
        return self.backend.exists(self.cache_key(model_key, spec))

    def load_analytical_cache(self, model_key: str, spec: DatasetSpec,
                              model, feature_names):
        """Warmed cache for ``(model_key, spec)``, or ``None`` when not stored."""
        from repro.analytical.cache import AnalyticalPredictionCache

        key = self.cache_key(model_key, spec)
        try:
            data = self.backend.read(key)
        except IntegrityError as exc:
            self._counters["integrity_failures"].inc()
            logger.warning("rejecting corrupt cache blob: %s; re-warming", exc)
            self._discard(key)
            self._counters["cache_misses"].inc()
            return None
        except KeyError:
            self._counters["cache_misses"].inc()
            return None
        self._counters["cache_hits"].inc()
        return AnalyticalPredictionCache.load(io.BytesIO(data), model, feature_names)

    def save_analytical_cache(self, model_key: str, spec: DatasetSpec, cache):
        """Persist the memoized rows of *cache* for ``(model_key, spec)``.

        The cache is serialized to memory first and handed to the
        backend whole, so the write inherits the backend's atomicity
        (tmp + rename locally, single PUT on an object store): an
        interrupted run must not leave a truncated cache that poisons
        later loads.
        """
        key = self.cache_key(model_key, spec)
        buf = io.BytesIO()
        cache.save(buf)
        self.backend.write(key, buf.getvalue())
        return self._artifact_path(key)

    def cache_bytes(self, model_key: str, spec: DatasetSpec) -> bytes:
        """Raw bytes of the ``(model_key, spec)`` cache (:class:`KeyError` when absent)."""
        return self.backend.read(self.cache_key(model_key, spec))

    def put_cache_bytes(self, model_key: str, spec: DatasetSpec, data: bytes):
        """Install pre-encoded cache bytes under ``(model_key, spec)``."""
        key = self.cache_key(model_key, spec)
        self.backend.write(key, data)
        return self._artifact_path(key)

    # ------------------------------------------------------------------ #
    # Published fitted models (the serving tier's artifacts)
    # ------------------------------------------------------------------ #
    @staticmethod
    def model_key(plan_fingerprint: str, series: str) -> str:
        """Backend key of the published model for ``(plan, series)``.

        The plan fingerprint comes last, matching the
        ``<name>-<fingerprint>`` convention of the other key families,
        so :meth:`prune` parses it the same way.
        """
        if not plan_fingerprint or "/" in plan_fingerprint or "-" in plan_fingerprint:
            raise ValueError(f"invalid plan fingerprint {plan_fingerprint!r}")
        if not series or "/" in series:
            raise ValueError(f"invalid series label {series!r}")
        return f"models/{series}-{plan_fingerprint}.npz"

    def model_path(self, plan_fingerprint: str, series: str):
        """Path-like identity of the ``(plan, series)`` model artifact."""
        return self._artifact_path(self.model_key(plan_fingerprint, series))

    def has_model(self, plan_fingerprint: str, series: str) -> bool:
        """Whether the ``(plan, series)`` model is stored (no counter update)."""
        return self.backend.exists(self.model_key(plan_fingerprint, series))

    def model_bytes(self, plan_fingerprint: str, series: str) -> bytes:
        """Raw bytes of the ``(plan, series)`` model, checksum-verified.

        :class:`KeyError` when absent.  A blob failing checksum
        verification raises :class:`IntegrityError` after being counted
        and discarded — unlike datasets there is nothing to regenerate
        from here, so the caller (the model server answers 503) decides
        what degraded service looks like; the next publish simply
        rewrites the key.
        """
        key = self.model_key(plan_fingerprint, series)
        try:
            return self.backend.read(key)
        except IntegrityError:
            self._counters["integrity_failures"].inc()
            logger.warning("rejecting corrupt model blob %s", key)
            self._discard(key)
            raise

    def put_model_bytes(self, plan_fingerprint: str, series: str, data: bytes):
        """Publish pre-encoded model bytes under ``(plan, series)``."""
        key = self.model_key(plan_fingerprint, series)
        self.backend.write(key, data)
        return self._artifact_path(key)

    def list_models(self, plan_fingerprint: str | None = None) -> list[tuple[str, str]]:
        """``(series, plan_fingerprint)`` pairs of every published model.

        Optionally filtered to one plan.  Sidecars and stray tmp files
        are skipped; ordering follows the backend's sorted key listing.
        """
        models: list[tuple[str, str]] = []
        for key in self.backend.list("models/"):
            if is_checksum_key(key) or not key.endswith(".npz"):
                continue
            stem = PurePosixPath(key).stem
            if stem.endswith(".tmp"):
                continue
            series, sep, fingerprint = stem.rpartition("-")
            if not sep or not series:
                continue
            if plan_fingerprint is None or fingerprint == plan_fingerprint:
                models.append((series, fingerprint))
        return models

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def prune(self, keep_fingerprints) -> list:
        """Delete every stored artifact whose fingerprint is not kept.

        Long-lived stores accumulate entries for retired settings,
        subsample sizes and simulator versions (each fingerprint change
        *adds* artifacts, it never removes the stale ones).  ``prune``
        lists the ``datasets/``, ``caches/`` and ``models/`` namespaces
        of the backend, parses the fingerprint out of each
        ``<name>-<fingerprint>.npz`` key and deletes artifacts whose
        fingerprint is not in *keep_fingerprints*.  Note the families
        are keyed by different fingerprint kinds — datasets and caches
        by the *dataset* fingerprint, published models by the *plan*
        fingerprint — so a keep set covering both kinds must contain
        both (the CLI's ``--store-prune`` collects them from every
        executed experiment).  Orphaned
        ``*.tmp.npz`` files (left by a writer killed between write and
        rename on a local backend) never parse to a kept fingerprint and
        are collected too.  Checksum sidecars (``*.sha256``) are pruned
        with their blob; a sidecar whose blob is gone (a crash between
        blob delete and sidecar delete, or a kill mid-write) is an
        orphan and is collected even when its fingerprint is kept.
        Returns the removed blob paths (real :class:`Path` objects on
        local backends; sidecars removed alongside a blob are not listed
        separately, orphaned sidecars are).  Not safe against concurrent
        writers of the entries being pruned.
        """
        keep = set(keep_fingerprints)
        removed: list = []
        for prefix in ("datasets/", "caches/", "models/"):
            keys = self.backend.list(prefix)
            present = set(keys)
            for key in keys:
                if is_checksum_key(key):
                    # Sidecars ride with their blob: backend.delete of the
                    # blob removes them, so only orphans (blob gone) or
                    # stale fingerprints are handled here.
                    base = key[:-len(CHECKSUM_SUFFIX)]
                    fingerprint = PurePosixPath(base).stem.rsplit("-", 1)[-1]
                    if base in present and fingerprint in keep:
                        continue
                else:
                    fingerprint = PurePosixPath(key).stem.rsplit("-", 1)[-1]
                    if fingerprint in keep:
                        continue
                try:
                    self.backend.delete(key)
                except KeyError:
                    continue  # pruned with its blob, or a concurrent prune
                removed.append(self._artifact_path(key))
        return removed
