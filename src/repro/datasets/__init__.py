"""Dataset generators for every experiment in the paper's evaluation.

Each generator enumerates the configuration space of one figure, obtains
"measured" execution times from the corresponding performance simulator
(the Blue Waters stand-in, see DESIGN.md) and packages the result as a
:class:`~repro.core.features.PerformanceDataset`.

| Generator                      | Paper figure(s) | Modeling vector              |
|--------------------------------|-----------------|------------------------------|
| ``blocked_small_grid_dataset`` | Fig. 3A, Fig. 6 | (I, J, K, bi, bj, bk)        |
| ``grid_only_dataset``          | Fig. 5          | (I, J, K)                    |
| ``threaded_dataset``           | Fig. 7          | (I, J, K, t)                 |
| ``fmm_dataset``                | Fig. 3B, Fig. 8 | (t, N, q, k)                 |

:mod:`repro.datasets.store` adds a fingerprint-keyed persistent layer on
top: :class:`DatasetSpec` names a dataset recipe, :class:`DatasetStore`
memoizes the generated arrays (and warmed analytical-prediction caches)
to disk so they are built at most once per machine.
"""

from repro.datasets.backends import (
    LocalBackend,
    MemoryBackend,
    ObjectStoreBackend,
    StoreBackend,
    resolve_backend,
)
from repro.datasets.fmm_datasets import fmm_dataset, fmm_dataset_from_space
from repro.datasets.registry import DATASET_REGISTRY, load_dataset
from repro.datasets.sampling import latin_hypercube_indices, uniform_sample_indices
from repro.datasets.stencil_datasets import (
    blocked_small_grid_dataset,
    grid_only_dataset,
    stencil_dataset_from_space,
    threaded_dataset,
)
from repro.datasets.store import DatasetSpec, DatasetStore

__all__ = [
    "DatasetSpec",
    "DatasetStore",
    "StoreBackend",
    "LocalBackend",
    "MemoryBackend",
    "ObjectStoreBackend",
    "resolve_backend",
    "uniform_sample_indices",
    "latin_hypercube_indices",
    "blocked_small_grid_dataset",
    "grid_only_dataset",
    "threaded_dataset",
    "stencil_dataset_from_space",
    "fmm_dataset",
    "fmm_dataset_from_space",
    "DATASET_REGISTRY",
    "load_dataset",
]
