"""Bundled S3-style HTTP object store for :class:`DatasetStore` artifacts.

A deliberately minimal object server built on the stdlib
:mod:`http.server`, so the ``http://`` store backend — and the fleet's
bootstrap-from-object-store path — is testable end to end without any
external service.  It serves the four-verb API
:class:`~repro.datasets.backends.ObjectStoreBackend` speaks:

* ``GET /<key>`` — blob bytes (404 when absent);
* ``HEAD /<key>`` — existence probe (200/404, no body);
* ``PUT /<key>`` — store the request body under the key (201);
* ``DELETE /<key>`` — remove the key (204, 404 when absent);
* ``GET /?prefix=<p>`` — JSON array of keys under the prefix;
* ``GET /metrics`` — Prometheus text exposition of the server's request
  counters (a reserved key: real blob keys are always prefixed
  ``datasets/``/``caches/``/``models/``, so no artifact can shadow it).

Storage is delegated to any :class:`~repro.datasets.backends.StoreBackend`
(a :class:`LocalBackend` directory for persistence, a
:class:`MemoryBackend` for throwaway CI smoke stores), so the server is
a thin HTTP skin: keys are validated against path traversal at the
backend seam and writes inherit the backend's atomicity.

Integrity is enforced at the edges, not in the middle: the server turns
off read-side checksum verification on its backend (clients verify the
blob against its ``.sha256`` sidecar end to end, covering the HTTP
transport too), but a PUT whose body does not match the client-supplied
``X-Repro-SHA256`` digest header is rejected with 422 before anything
is stored, and an unexpected backend failure answers 500 (retryable)
instead of severing the connection.

Run it standalone::

    python -m repro.datasets.object_server --bind 127.0.0.1 --port 8123 --root ./store
    python -m repro.datasets.object_server --port 8123 --memory   # non-persistent

and point coordinators/workers at it with ``--store-url
http://127.0.0.1:8123/``.  Like the fleet protocol it authenticates
nothing: trusted networks only (the default bind is loopback).
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.datasets.backends import (
    LocalBackend,
    MemoryBackend,
    StoreBackend,
    sha256_hex,
)
from repro.obs.http import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.obs.http import metrics_body
from repro.obs.logging import add_logging_args, configure_logging
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import TRACER

__all__ = ["ObjectStoreServer", "main"]


class _Handler(BaseHTTPRequestHandler):
    """One request: translate an HTTP verb into a backend call."""

    protocol_version = "HTTP/1.1"
    server_version = "ReproObjectStore/1.0"

    # The ThreadingHTTPServer instance carries the backend + stats.
    server: ObjectStoreServer

    def log_message(self, fmt, *args):
        if self.server.verbose:
            sys.stderr.write("object-server: " + fmt % args + "\n")

    def _send(self, status: int, body: bytes = b"",
              content_type: str = "application/octet-stream") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _key(self) -> tuple[str, dict]:
        parsed = urllib.parse.urlsplit(self.path)
        key = urllib.parse.unquote(parsed.path).lstrip("/")
        query = urllib.parse.parse_qs(parsed.query)
        return key, query

    def do_GET(self) -> None:  # (BaseHTTPRequestHandler naming)
        key, query = self._key()
        try:
            with TRACER.span("request", attrs={"method": "GET", "key": key}):
                if not key:
                    prefix = query.get("prefix", [""])[0]
                    body = json.dumps(self.server.backend.list(prefix)).encode()
                    self.server.count("lists")
                    self._send(200, body, content_type="application/json")
                    return
                if key == "metrics":
                    # Reserved telemetry endpoint (store keys are always
                    # prefixed — datasets/, caches/, models/ — so no blob
                    # can shadow it): the process-wide Prometheus view.
                    self._send(200, metrics_body(),
                               content_type=_METRICS_CONTENT_TYPE)
                    return
                data = self.server.backend.read(key)
        except KeyError:
            self._send(404, b"no such key")
        except ValueError as exc:
            self._send(400, str(exc).encode())
        except Exception as exc:  # noqa: BLE001 - 500 is retryable, a dead socket is not
            self._server_error("GET", key, exc)
        else:
            self.server.count("gets")
            self._send(200, data)

    def do_HEAD(self) -> None:
        key, _ = self._key()
        try:
            exists = bool(key) and self.server.backend.exists(key)
        except ValueError:
            status = 400
        except Exception:  # noqa: BLE001
            status = 500
            self.server.count("errors")
        else:
            status = 200 if exists else 404
        if status == 200:
            self.server.count("heads")
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_PUT(self) -> None:
        key, _ = self._key()
        length = int(self.headers.get("Content-Length", 0) or 0)
        with TRACER.span("request",
                         attrs={"method": "PUT", "key": key, "bytes": length}):
            self._put(key, length)

    def _put(self, key: str, length: int) -> None:
        data = self.rfile.read(length)
        expected = self.headers.get("X-Repro-SHA256")
        if expected is not None and sha256_hex(data) != expected.strip().lower():
            # The body was corrupted (or truncated) in flight: refuse to
            # store it so garbage never lands under a valid key.  422 is
            # a client-class status — the client's retry resends the
            # request from its intact in-memory bytes.
            self.server.count("rejected_puts")
            self._send(422, b"body does not match X-Repro-SHA256 digest")
            return
        try:
            self.server.backend.write(key, data)
        except ValueError as exc:
            self._send(400, str(exc).encode())
        except Exception as exc:  # noqa: BLE001
            self._server_error("PUT", key, exc)
        else:
            self.server.count("puts")
            self._send(201, b"stored")

    def do_DELETE(self) -> None:
        key, _ = self._key()
        try:
            self.server.backend.delete(key)
        except KeyError:
            self._send(404, b"no such key")
        except ValueError as exc:
            self._send(400, str(exc).encode())
        except Exception as exc:  # noqa: BLE001
            self._server_error("DELETE", key, exc)
        else:
            self.server.count("deletes")
            self._send(204)

    def _server_error(self, verb: str, key: str, exc: Exception) -> None:
        """Unexpected backend failure: answer 500 (clients retry 5xx)."""
        self.server.count("errors")
        self.log_message("%s /%s failed: %s", verb, key, exc)
        self._send(500, f"{type(exc).__name__}: {exc}".encode())


class ObjectStoreServer(ThreadingHTTPServer):
    """Threaded HTTP object store over a :class:`StoreBackend`.

    ``stats`` counts served operations (``gets``/``puts``/``lists``/
    ``deletes``) — the server-side hit counters the fleet smoke tests
    use to prove artifacts really moved over HTTP.

    Use as a context manager in tests::

        with ObjectStoreServer(MemoryBackend()) as server:
            store = DatasetStore(server.url)
    """

    daemon_threads = True

    def __init__(self, backend: StoreBackend,
                 address: tuple[str, int] = ("127.0.0.1", 0), *,
                 verbose: bool = False) -> None:
        self.backend = backend
        # Clients own the integrity layer end to end: they verify blobs
        # against the .sha256 sidecar (covering the HTTP hop) and PUT the
        # sidecar as its own key.  The server stores and serves raw bytes
        # — re-recording checksums here would replace the client's digest
        # with a post-transport one and mask in-flight corruption.
        self.backend.verify_reads = False
        self.backend.record_checksums = False
        self.verbose = verbose
        # Registry-backed operation counters; ``stats`` stays available
        # as the property view below.
        self.metrics = MetricsRegistry(attach_to=REGISTRY)
        self._counters = {
            op: self.metrics.counter(f"repro_object_store_{op}_total", help)
            for op, help in (
                ("gets", "Blob GETs served"),
                ("heads", "Existence probes answered 200"),
                ("puts", "Blobs stored"),
                ("lists", "Prefix listings served"),
                ("deletes", "Blobs deleted"),
                ("rejected_puts", "PUTs refused for a digest mismatch"),
                ("errors", "Requests answered with a 5xx status"),
            )
        }
        self._thread: threading.Thread | None = None
        super().__init__(address, _Handler)

    @property
    def stats(self) -> dict[str, int]:
        """Compatibility view of the operation counters (atomic snapshot)."""
        return {op: int(counter.value)
                for op, counter in self._counters.items()}

    def count(self, op: str) -> None:
        self._counters[op].inc()

    @property
    def url(self) -> str:
        """Base URL clients pass as ``--store-url``.

        A wildcard bind address is not a destination: substitute this
        machine's hostname so the advertised locator routes from other
        hosts.
        """
        host, port = self.server_address[:2]
        if host in ("0.0.0.0", "::"):
            host = socket.gethostname()
        return f"http://{host}:{port}/"

    def start(self) -> ObjectStoreServer:
        """Serve requests on a daemon thread (the in-process test mode)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="object-store", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> ObjectStoreServer:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datasets.object_server",
        description="Minimal S3-style object store for DatasetStore artifacts",
    )
    parser.add_argument("--bind", default="127.0.0.1", metavar="HOST",
                        help="listen address (default loopback; the server is "
                             "unauthenticated — trusted networks only)")
    parser.add_argument("--port", type=int, default=8123, metavar="PORT",
                        help="listen port (default 8123; 0 = ephemeral)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--root", default=None, metavar="DIR",
                       help="persist blobs under this directory")
    group.add_argument("--memory", action="store_true",
                       help="keep blobs in memory only (CI smoke stores)")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    add_logging_args(parser)
    args = parser.parse_args(argv)
    configure_logging(fmt=args.log_format, level=args.log_level)

    backend: StoreBackend
    if args.root is not None:
        backend = LocalBackend(args.root)
    else:
        backend = MemoryBackend()
    server = ObjectStoreServer(backend, (args.bind, args.port), verbose=args.verbose)
    kind = f"directory {args.root}" if args.root is not None else "memory"
    print(f"object store serving {kind} at {server.url} "
          f"(--store-url {server.url})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
