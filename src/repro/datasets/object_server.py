"""Bundled S3-style HTTP object store for :class:`DatasetStore` artifacts.

A deliberately minimal object server built on the shared
:class:`~repro.obs.http.ReproHTTPServer` base, so the ``http://`` store
backend — and the fleet's bootstrap-from-object-store path — is testable
end to end without any external service.  It serves the four-verb API
:class:`~repro.datasets.backends.ObjectStoreBackend` speaks:

* ``GET /<key>`` — blob bytes (404 when absent);
* ``HEAD /<key>`` — existence probe (200/404, no body);
* ``PUT /<key>`` — store the request body under the key (201);
* ``DELETE /<key>`` — remove the key (204, 404 when absent);
* ``GET /?prefix=<p>`` — JSON array of keys under the prefix;
* ``GET /metrics`` / ``GET /healthz`` — the shared telemetry endpoints
  (reserved paths: real blob keys are always prefixed
  ``datasets/``/``caches/``/``models/``, so no artifact can shadow them).

Storage is delegated to any :class:`~repro.datasets.backends.StoreBackend`
(a :class:`LocalBackend` directory for persistence, a
:class:`MemoryBackend` for throwaway CI smoke stores), so the server is
a thin HTTP skin: keys are validated against path traversal at the
backend seam and writes inherit the backend's atomicity.

Integrity is enforced at the edges, not in the middle: the server turns
off read-side checksum verification on its backend (clients verify the
blob against its ``.sha256`` sidecar end to end, covering the HTTP
transport too), but a PUT whose body does not match the client-supplied
``X-Repro-SHA256`` digest header is rejected with 422 before anything
is stored, and an unexpected backend failure answers 500 (retryable)
instead of severing the connection.

Run it standalone::

    python -m repro.datasets.object_server --bind 127.0.0.1 --port 8123 --root ./store
    python -m repro.datasets.object_server --port 8123 --memory   # non-persistent

and point coordinators/workers at it with ``--store-url
http://127.0.0.1:8123/``.  On a non-loopback ``--bind`` a shared key is
mandatory (``--auth-key-file``, or ``--insecure`` to opt out): every
request except ``GET /healthz`` must then carry a valid
``Authorization: Repro-HMAC`` header, and rejected requests increment
``repro_auth_failures_total{server="object-store"}``.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.parse

from repro.cli import (
    add_auth_args,
    add_bind_args,
    add_logging_parent,
    check_bind_safety,
    load_auth_key,
)
from repro.datasets.backends import (
    LocalBackend,
    MemoryBackend,
    StoreBackend,
    sha256_hex,
)
from repro.obs.http import ReproHTTPServer, RequestError
from repro.obs.logging import configure_logging
from repro.obs.metrics import MetricsRegistry

__all__ = ["ObjectStoreServer", "main"]


class ObjectStoreServer(ReproHTTPServer):
    """Threaded HTTP object store over a :class:`StoreBackend`.

    ``stats`` counts served operations (``gets``/``puts``/``lists``/
    ``deletes``) — the server-side hit counters the fleet smoke tests
    use to prove artifacts really moved over HTTP.

    Use as a context manager in tests::

        with ObjectStoreServer(MemoryBackend()) as server:
            store = DatasetStore(server.url)
    """

    name = "object-store"

    def __init__(self, backend: StoreBackend,
                 address: tuple[str, int] = ("127.0.0.1", 0), *,
                 auth: bytes | None = None,
                 registry: MetricsRegistry | None = None,
                 verbose: bool = False) -> None:
        self.backend = backend
        # Clients own the integrity layer end to end: they verify blobs
        # against the .sha256 sidecar (covering the HTTP hop) and PUT the
        # sidecar as its own key.  The server stores and serves raw bytes
        # — re-recording checksums here would replace the client's digest
        # with a post-transport one and mask in-flight corruption.
        self.backend.verify_reads = False
        self.backend.record_checksums = False
        super().__init__(address, auth=auth, registry=registry,
                         verbose=verbose)
        self._counters = {
            op: self.metrics.counter(f"repro_object_store_{op}_total", help)
            for op, help in (
                ("gets", "Blob GETs served"),
                ("heads", "Existence probes answered 200"),
                ("puts", "Blobs stored"),
                ("lists", "Prefix listings served"),
                ("deletes", "Blobs deleted"),
                ("rejected_puts", "PUTs refused for a digest mismatch"),
                ("errors", "Requests answered with a 5xx status"),
            )
        }

    @property
    def stats(self) -> dict[str, int]:
        """Compatibility view of the operation counters (atomic snapshot)."""
        return {op: int(counter.value)
                for op, counter in self._counters.items()}

    def count(self, op: str) -> None:
        self._counters[op].inc()

    def count_error(self, status: int) -> None:
        if status >= 500:
            self.count("errors")

    # ------------------------------------------------------------------ #
    # Request routing (the base owns auth, /metrics, /healthz, spans)
    # ------------------------------------------------------------------ #
    def handle(self, request, method: str, path: str, query: dict,
               body: bytes) -> None:
        key = urllib.parse.unquote(path).lstrip("/")
        try:
            if method in ("GET", "HEAD") and not key:
                prefix = query.get("prefix", [""])[0]
                listing = json.dumps(self.backend.list(prefix)).encode()
                self.count("lists")
                request.send_body(200, listing, content_type="application/json")
            elif method == "GET":
                data = self.backend.read(key)
                self.count("gets")
                request.send_body(200, data)
            elif method == "HEAD":
                if not self.backend.exists(key):
                    raise KeyError(key)
                self.count("heads")
                request.send_body(200)
            elif method == "PUT":
                self._put(request, key, body)
            elif method == "DELETE":
                self.backend.delete(key)
                self.count("deletes")
                request.send_body(204)
            else:
                raise RequestError(405, f"unsupported method {method}")
        except KeyError:
            # The 404 probe is routine (exists() before a write) — it is
            # neither an error counter nor a served operation.
            raise RequestError(404, "no such key") from None
        except ValueError as exc:
            raise RequestError(400, str(exc)) from None

    def _put(self, request, key: str, data: bytes) -> None:
        expected = request.headers.get("X-Repro-SHA256")
        if expected is not None and sha256_hex(data) != expected.strip().lower():
            # The body was corrupted (or truncated) in flight: refuse to
            # store it so garbage never lands under a valid key.  422 is
            # a client-class status — the client's retry resends the
            # request from its intact in-memory bytes.
            self.count("rejected_puts")
            raise RequestError(422, "body does not match X-Repro-SHA256 digest")
        self.backend.write(key, data)
        self.count("puts")
        request.send_body(201, b"stored", content_type="text/plain")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datasets.object_server",
        description="Minimal S3-style object store for DatasetStore artifacts",
        parents=[add_bind_args(default_port=8123), add_auth_args(),
                 add_logging_parent()],
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--root", default=None, metavar="DIR",
                       help="persist blobs under this directory")
    group.add_argument("--memory", action="store_true",
                       help="keep blobs in memory only (CI smoke stores)")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)
    configure_logging(fmt=args.log_format, level=args.log_level)
    auth = load_auth_key(args.auth_key_file, parser=parser)
    check_bind_safety(parser, args.bind, auth=auth, insecure=args.insecure)

    backend: StoreBackend
    if args.root is not None:
        backend = LocalBackend(args.root)
    else:
        backend = MemoryBackend()
    server = ObjectStoreServer(backend, (args.bind, args.port), auth=auth,
                               verbose=args.verbose)
    kind = f"directory {args.root}" if args.root is not None else "memory"
    mode = "authenticated" if auth is not None else "unauthenticated"
    print(f"object store serving {kind} at {server.url} "
          f"({mode}; --store-url {server.url})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
