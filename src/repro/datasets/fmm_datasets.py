"""FMM performance datasets (Figures 3B and 8).

The modeling vector is ``X = (t, N, q, k)`` (Section III-B); the full
paper space sweeps ``t = 1..16``, ``N in {4096, 8192, 16384}``,
``k = 2..12`` and a range of particles-per-leaf values.
"""

from __future__ import annotations

from repro.core.features import PerformanceDataset
from repro.fmm.config import FmmConfigSpace
from repro.fmm.perf_sim import FmmPerformanceSimulator

__all__ = ["fmm_dataset_from_space", "fmm_dataset"]


def fmm_dataset_from_space(space: FmmConfigSpace, *, name: str,
                           simulator=None, max_configs: int | None = None,
                           random_state=0) -> PerformanceDataset:
    """Build a dataset from an arbitrary FMM configuration space."""
    simulator = simulator if simulator is not None else FmmPerformanceSimulator()
    configs = space.configs()
    if max_configs is not None and len(configs) > max_configs:
        from repro.utils.rng import check_random_state

        rng = check_random_state(random_state)
        idx = rng.permutation(len(configs))[:max_configs]
        configs = [configs[i] for i in sorted(idx)]
    X = space.to_feature_matrix(configs)
    y = simulator.times(configs)
    return PerformanceDataset(name=name, X=X, y=y,
                              feature_names=list(space.feature_names),
                              configs=configs)


def fmm_dataset(*, simulator=None, max_configs: int | None = None,
                random_state=0) -> PerformanceDataset:
    """Figure 3B / Figure 8 dataset: the full (t, N, q, k) ExaFMM space."""
    return fmm_dataset_from_space(
        FmmConfigSpace.paper_space(),
        name="fmm",
        simulator=simulator,
        max_configs=max_configs,
        random_state=random_state,
    )
