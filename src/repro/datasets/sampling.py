"""Training-set sampling strategies.

The paper uses uniform random sampling of the configuration space
(Section V).  A space-filling alternative (greedy maximin / farthest-point
selection) is provided and exercised by the ablation benchmarks — it
spreads a tiny training budget more evenly over the configuration space,
which is exactly the regime the hybrid model targets.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["uniform_sample_indices", "latin_hypercube_indices", "maximin_sample_indices"]


def uniform_sample_indices(n_samples: int, n_select: int, *, random_state=None) -> np.ndarray:
    """Select ``n_select`` indices uniformly at random without replacement."""
    if not 1 <= n_select <= n_samples:
        raise ValueError(f"n_select must be in [1, {n_samples}], got {n_select}")
    rng = check_random_state(random_state)
    return rng.permutation(n_samples)[:n_select]


def maximin_sample_indices(X: np.ndarray, n_select: int, *, random_state=None) -> np.ndarray:
    """Space-filling selection of existing configurations.

    Greedy maximin (farthest-point) design on standardized features: start
    from a random configuration, then repeatedly add the configuration
    whose distance to the already-selected set is largest.  This fills the
    configuration space far more evenly than uniform sampling when only a
    handful of points can be measured.
    """
    X = np.asarray(X, dtype=np.float64)
    n_samples = X.shape[0]
    if not 1 <= n_select <= n_samples:
        raise ValueError(f"n_select must be in [1, {n_samples}], got {n_select}")
    rng = check_random_state(random_state)
    # Standardize so no single feature dominates the distances.
    std = X.std(axis=0)
    std[std == 0.0] = 1.0
    Z = (X - X.mean(axis=0)) / std

    first = int(rng.integers(0, n_samples))
    chosen = [first]
    min_dist = np.linalg.norm(Z - Z[first], axis=1)
    for _ in range(n_select - 1):
        candidate = int(np.argmax(min_dist))
        chosen.append(candidate)
        dist = np.linalg.norm(Z - Z[candidate], axis=1)
        np.minimum(min_dist, dist, out=min_dist)
    return np.asarray(chosen, dtype=np.int64)


def latin_hypercube_indices(X: np.ndarray, n_select: int, *, random_state=None) -> np.ndarray:
    """Stratified selection of existing configurations.

    A pragmatic Latin-hypercube-like design for *discrete* existing
    configuration sets: implemented as greedy maximin selection (see
    :func:`maximin_sample_indices`), which achieves the same goal — every
    region of the configuration space is represented — without requiring a
    continuous sampling box.
    """
    return maximin_sample_indices(X, n_select, random_state=random_state)
