"""Pluggable byte-storage backends behind :class:`~repro.datasets.store.DatasetStore`.

The store's artifacts are content-addressed ``.npz`` byte blobs under
string keys (``datasets/<name>-<fingerprint>.npz``,
``caches/<model_key>-<fingerprint>.npz``).  Everything fingerprint- and
format-related lives in :mod:`repro.datasets.store`; a backend only has
to move bytes:

* :class:`LocalBackend` — one directory per store, atomic
  tmp-write + rename exactly like the pre-backend store (a half-written
  temp file is cleaned up on error instead of leaking);
* :class:`MemoryBackend` — a plain dict; tests and store-less scratch
  runs.  ``memory://<name>`` URLs resolve to a process-global named
  instance so several components of one process can share it;
* :class:`ObjectStoreBackend` — a minimal S3-style HTTP object store
  speaking GET/PUT/LIST/DELETE (the bundled
  :mod:`repro.datasets.object_server` serves this API from the stdlib,
  so fleets can share artifacts without an external service).  Transient
  transport failures (5xx, connection refused/reset, mid-body
  truncation, timeouts) are retried through a
  :class:`~repro.utils.retry.RetryPolicy`.

Integrity layer
---------------
Every write records a SHA-256 *checksum sidecar* (``<key>.sha256``,
the hex digest) next to the blob, and every read verifies the blob
against it — in the :class:`StoreBackend` base class, so the guarantee
is uniform across backends and survives any transport: a bit-flipped
blob raises :class:`IntegrityError` instead of deserializing garbage.
Subclasses implement the raw ``_read``/``_write``/``_delete`` byte
moves; the base class owns checksum bookkeeping (sidecars are written
after their blob, deleted with it, and never checksummed themselves).
A blob without a sidecar (written by a pre-checksum version) is served
unverified for backward compatibility.

``resolve_backend`` maps a locator URL (``file://``, ``memory://``,
``http://``/``https://``) to a backend instance — the registry behind
the ``--store-url`` CLI flag and the store locator the distributed
coordinator advertises to fleet workers, so a cold worker can bootstrap
datasets and warmed caches *directly* from shared storage instead of
relaying blobs through the coordinator's socket.
"""

from __future__ import annotations

import abc
import hashlib
import http.client
import json
import logging
import os
import threading
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path, PurePosixPath

from repro.obs.http import sign_request
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.utils.retry import RetryPolicy

__all__ = [
    "StoreBackend",
    "LocalBackend",
    "MemoryBackend",
    "ObjectStoreBackend",
    "IntegrityError",
    "CHECKSUM_SUFFIX",
    "checksum_key",
    "is_checksum_key",
    "sha256_hex",
    "resolve_backend",
    "backend_schemes",
]

logger = logging.getLogger(__name__)

#: Suffix of the checksum sidecar stored next to every blob.
CHECKSUM_SUFFIX = ".sha256"


def checksum_key(key: str) -> str:
    """The sidecar key holding the SHA-256 hex digest of *key*'s blob."""
    return key + CHECKSUM_SUFFIX


def is_checksum_key(key: str) -> bool:
    """Whether *key* names a checksum sidecar rather than a blob."""
    return key.endswith(CHECKSUM_SUFFIX)


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 of *data* — the store's checksum format."""
    return hashlib.sha256(data).hexdigest()


class IntegrityError(RuntimeError):
    """A stored blob does not match its recorded SHA-256 checksum.

    Raised by :meth:`StoreBackend.read` before the corrupt bytes reach
    any deserializer.  Consumers reject-and-refetch: the
    :class:`~repro.datasets.store.DatasetStore` deletes the blob and
    regenerates, a fleet worker falls back to the coordinator relay.
    """

    def __init__(self, key: str, expected: str, actual: str) -> None:
        super().__init__(
            f"checksum mismatch for {key!r}: stored sha256 {expected[:16]}…, "
            f"blob hashes to {actual[:16]}…")
        self.key = key
        self.expected = expected
        self.actual = actual


def _check_key(key: str) -> str:
    """Validate a store key: relative, slash-separated, no traversal.

    Keys cross process (and with the object store, host) boundaries, so
    they are validated at the backend seam rather than trusting callers:
    a key must never be able to escape the backend's namespace.
    """
    if not key or key.startswith(("/", "\\")) or "\\" in key:
        raise ValueError(f"invalid store key {key!r}")
    parts = PurePosixPath(key).parts
    if not parts or any(part in (".", "..") for part in parts):
        raise ValueError(f"invalid store key {key!r}")
    return key


class StoreBackend(abc.ABC):
    """Byte-blob storage: the only surface :class:`DatasetStore` needs.

    Keys are relative slash-separated paths (``datasets/foo.npz``).
    ``read``/``delete`` raise :class:`KeyError` for missing keys so the
    store can distinguish "absent" from transport failures uniformly
    across backends.  The public ``read``/``write``/``delete`` are
    template methods owning the checksum-sidecar discipline; subclasses
    implement the raw ``_read``/``_write``/``_delete`` byte moves.
    """

    #: URL scheme the backend registers under (``file``, ``memory``, ``http``).
    scheme: str = ""

    #: Verify blobs against their checksum sidecar on read.  Off only for
    #: backends that deliberately serve raw bytes (the object *server*
    #: trusts its local disk; its HTTP *clients* verify end to end).
    verify_reads: bool = True

    #: Record a checksum sidecar on every write.  Off only where another
    #: party owns the checksums: the object *server* stores exactly what
    #: clients PUT (clients write the sidecar as its own key; the server
    #: recomputing it would replace the end-to-end digest with a local
    #: one and mask in-flight corruption).
    record_checksums: bool = True

    @property
    @abc.abstractmethod
    def locator(self) -> str | None:
        """URL another process can use to open this same store.

        ``None`` when the backend is not shareable (an anonymous
        in-memory store); the distributed coordinator only advertises
        non-``None`` locators to fleet workers.
        """

    @abc.abstractmethod
    def _read(self, key: str) -> bytes:
        """Raw bytes of *key*; :class:`KeyError` when absent."""

    @abc.abstractmethod
    def _write(self, key: str, data: bytes) -> None:
        """Store *data* under *key* atomically (readers see old or new, never half)."""

    @abc.abstractmethod
    def _delete(self, key: str) -> None:
        """Remove *key*; :class:`KeyError` when absent."""

    @abc.abstractmethod
    def exists(self, key: str) -> bool:
        """Whether *key* currently holds a blob."""

    @abc.abstractmethod
    def list(self, prefix: str = "") -> list[str]:
        """Sorted keys starting with *prefix* (``""`` lists everything).

        Checksum sidecars are real keys and are listed; callers that
        iterate artifacts filter with :func:`is_checksum_key`.
        """

    def read(self, key: str) -> bytes:
        """The stored bytes of *key*, verified against the checksum sidecar.

        :class:`KeyError` when absent, :class:`IntegrityError` when the
        blob does not hash to the recorded digest.  A blob without a
        sidecar (pre-checksum store) is returned unverified.
        """
        data = self._read(key)
        if not self.verify_reads or is_checksum_key(key):
            return data
        try:
            expected = self._read(checksum_key(key)).decode("ascii").strip()
        except KeyError:
            return data  # legacy blob predating the integrity layer
        actual = sha256_hex(data)
        if actual != expected:
            raise IntegrityError(key, expected, actual)
        return data

    def write(self, key: str, data: bytes) -> None:
        """Store *data* under *key* and record its SHA-256 sidecar.

        The blob lands first, the sidecar second: artifacts are
        content-addressed (one key always holds the same bytes), so the
        only observable in-between state is "blob without sidecar" —
        served unverified, never a false mismatch.
        """
        data = bytes(data)
        self._write(key, data)
        if self.record_checksums and not is_checksum_key(key):
            self._write(checksum_key(key), sha256_hex(data).encode("ascii"))

    def delete(self, key: str) -> None:
        """Remove *key* and its checksum sidecar; :class:`KeyError` when absent."""
        self._delete(key)
        if not is_checksum_key(key):
            try:
                self._delete(checksum_key(key))
            except KeyError:
                pass  # legacy blob, or a concurrent delete got there first


class LocalBackend(StoreBackend):
    """Filesystem-backed store rooted at one directory.

    Preserves the original :class:`DatasetStore` write discipline: bytes
    land in a per-process ``.tmp.npz`` sibling first and are atomically
    renamed into place, so concurrent writers of the same entry cannot
    clobber each other and readers never see a torn file.  A failed
    write (disk full, permissions, a crash between write and rename)
    unlinks its temp file instead of leaking it; leftovers from a hard
    kill are collected by :meth:`DatasetStore.prune`.
    """

    scheme = "file"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    @property
    def locator(self) -> str:
        return self.root.resolve().as_uri()

    def path(self, key: str) -> Path:
        """Absolute file the blob of *key* is (or would be) stored at."""
        return self.root / _check_key(key)

    def _tmp_path(self, path: Path) -> Path:
        # The pid suffix keeps concurrent writers of the same entry from
        # clobbering each other's half-written temp file; np.savez-style
        # tooling insists on a .npz suffix.
        return Path(f"{path}.{os.getpid()}.tmp.npz")

    def _read(self, key: str) -> bytes:
        try:
            return self.path(key).read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None

    def _write(self, key: str, data: bytes) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(path)
        try:
            tmp.write_bytes(data)
            tmp.replace(path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def exists(self, key: str) -> bool:
        return self.path(key).is_file()

    def list(self, prefix: str = "") -> list[str]:
        # Walk only the prefix's directory component, not the whole root:
        # existence probes and namespace listings stay O(entries under
        # the prefix) instead of O(total artifacts).
        if prefix:
            _check_key(prefix.rstrip("/") or prefix)
        directory, _, _ = prefix.rpartition("/")
        base = self.root / directory if directory else self.root
        if not base.is_dir():
            return []
        keys = [
            path.relative_to(self.root).as_posix()
            for path in base.rglob("*")
            if path.is_file()
        ]
        return sorted(key for key in keys if key.startswith(prefix))

    def _delete(self, key: str) -> None:
        try:
            self.path(key).unlink()
        except FileNotFoundError:
            raise KeyError(key) from None


#: Process-global ``memory://<name>`` stores, shared by every resolver call
#: with the same name (anonymous ``memory://`` stores are private).
_NAMED_MEMORY_STORES: dict[str, MemoryBackend] = {}
_NAMED_MEMORY_LOCK = threading.Lock()


class MemoryBackend(StoreBackend):
    """Dict-backed store: tests, demos and store-less scratch runs.

    A *named* instance (``MemoryBackend.named("x")`` / ``memory://x``)
    is process-global, so several components of one process can reopen
    the same store by URL.  No memory store ever advertises a locator:
    the :attr:`~StoreBackend.locator` contract is "another *process* can
    open this", and a ``memory://`` URL resolved in a subprocess is a
    fresh empty dict — advertising it would make process-pool workers
    silently regenerate datasets instead of receiving the parent's copy.
    """

    scheme = "memory"

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()

    @classmethod
    def named(cls, name: str) -> MemoryBackend:
        with _NAMED_MEMORY_LOCK:
            backend = _NAMED_MEMORY_STORES.get(name)
            if backend is None:
                backend = _NAMED_MEMORY_STORES[name] = cls(name)
            return backend

    @property
    def locator(self) -> None:
        return None

    def _read(self, key: str) -> bytes:
        with self._lock:
            return self._blobs[_check_key(key)]

    def _write(self, key: str, data: bytes) -> None:
        with self._lock:
            self._blobs[_check_key(key)] = bytes(data)

    def exists(self, key: str) -> bool:
        with self._lock:
            return _check_key(key) in self._blobs

    def list(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(key for key in self._blobs if key.startswith(prefix))

    def _delete(self, key: str) -> None:
        with self._lock:
            del self._blobs[_check_key(key)]


#: Default transport policy of :class:`ObjectStoreBackend`: three
#: attempts, 100 ms first backoff, jittered, 30 s per-attempt timeout.
OBJECT_STORE_RETRY = RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=2.0,
                                 attempt_timeout=30.0)

#: Transient transport failures worth retrying: every OSError
#: (connection refused/reset, DNS, socket timeouts, and urllib's URLError
#: wrapper) plus http.client protocol breakage (mid-body truncation is
#: IncompleteRead, a dropped keep-alive is RemoteDisconnected).
_RETRYABLE = (OSError, http.client.HTTPException)


def _giveup(exc: BaseException) -> bool:
    """Client errors (4xx) are permanent; only 5xx HTTP errors retry.

    In particular 401/403 — a missing, wrong or rejected credential —
    must never retry: re-sending the same signature cannot succeed, and
    hammering an auth-rejecting server only floods its
    ``repro_auth_failures_total`` counter.
    """
    return isinstance(exc, urllib.error.HTTPError) and exc.code < 500


class ObjectStoreBackend(StoreBackend):
    """Client of a minimal S3-style HTTP object store.

    The API (served by the bundled
    :mod:`repro.datasets.object_server`, or by anything speaking plain
    HTTP object semantics):

    * ``GET /<key>`` — blob bytes, 404 when absent;
    * ``HEAD /<key>`` — existence probe (200/404, no body);
    * ``PUT /<key>`` — store the request body under the key;
    * ``DELETE /<key>`` — remove the key, 404 when absent;
    * ``GET /?prefix=<p>`` — JSON array of keys under the prefix.

    Every request runs under *retry* (default
    :data:`OBJECT_STORE_RETRY`): HTTP 5xx, connection refused/reset,
    mid-body truncation and per-attempt timeouts back off and retry,
    other 4xx fail immediately — 401/403 auth rejections are permanent
    by construction.  PUT requests carry an ``X-Repro-SHA256`` header
    so the server can reject a body corrupted in flight before storing
    it.  With *auth* key bytes, every request is signed with an
    ``Authorization: Repro-HMAC`` header covering the method, the
    request target and the body digest (see
    :func:`repro.obs.http.sign_request`).

    ``reads``/``writes`` count successful blob transfers (the
    hit-counter instrumentation the fleet tests use to prove workers
    bootstrap from the object store rather than the coordinator);
    ``retries`` counts backed-off attempts across all requests.
    """

    scheme = "http"

    def __init__(self, base_url: str, *, timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 auth: bytes | None = None) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(f"object store URL must be http(s), got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.auth = auth
        self.retry = retry or OBJECT_STORE_RETRY
        self.timeout = timeout if timeout is not None else (
            self.retry.attempt_timeout or 30.0)
        # Transfer counters on the shared telemetry plane; the public
        # ``reads``/``writes``/``retries`` attributes stay as properties.
        self.metrics = MetricsRegistry(attach_to=REGISTRY)
        self._reads = self.metrics.counter(
            "repro_object_client_reads_total", "Blob GETs completed")
        self._writes = self.metrics.counter(
            "repro_object_client_writes_total", "Blob PUTs completed")
        self._retries = self.metrics.counter(
            "repro_object_client_retries_total",
            "Backed-off HTTP attempts across all requests")

    @property
    def locator(self) -> str:
        return self.base_url + "/"

    @property
    def reads(self) -> int:
        """Successful blob GETs (compatibility view of the counter)."""
        return int(self._reads.value)

    @property
    def writes(self) -> int:
        """Successful blob PUTs (compatibility view of the counter)."""
        return int(self._writes.value)

    @property
    def retries(self) -> int:
        """Backed-off attempts (compatibility view of the counter)."""
        return int(self._retries.value)

    def _url(self, key: str) -> str:
        return f"{self.base_url}/{urllib.parse.quote(_check_key(key))}"

    def _request(self, method: str, url: str, data: bytes | None = None) -> bytes:
        def attempt() -> bytes:
            request = urllib.request.Request(url, data=data, method=method)
            if data is not None:
                request.add_header("Content-Type", "application/octet-stream")
                request.add_header("X-Repro-SHA256", sha256_hex(data))
            if self.auth is not None:
                # Sign the exact request target (percent-encoded path +
                # query) the request line will carry, so the server's
                # verification canonicalizes to the same bytes.
                parsed = urllib.parse.urlsplit(url)
                target = (parsed.path or "/") + \
                    (f"?{parsed.query}" if parsed.query else "")
                request.add_header("Authorization", sign_request(
                    self.auth, method, target, data or b""))
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()

        def on_retry(attempt_no: int, exc: BaseException, delay: float) -> None:
            self._retries.inc()
            logger.warning(
                "object store %s %s failed (attempt %d/%d): %s; retrying in %.2fs",
                method, url, attempt_no, self.retry.max_attempts, exc, delay)

        return self.retry.call(attempt, retry_on=_RETRYABLE, giveup=_giveup,
                               on_retry=on_retry)

    def _read(self, key: str) -> bytes:
        try:
            data = self._request("GET", self._url(key))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                raise KeyError(key) from None
            raise
        self._reads.inc()
        return data

    def _write(self, key: str, data: bytes) -> None:
        self._request("PUT", self._url(key), data=bytes(data))
        self._writes.inc()

    def exists(self, key: str) -> bool:
        # HEAD: one round trip, no body, no server-side listing walk.
        try:
            self._request("HEAD", self._url(key))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return False
            raise
        return True

    def list(self, prefix: str = "") -> list[str]:
        query = urllib.parse.urlencode({"prefix": prefix})
        data = self._request("GET", f"{self.base_url}/?{query}")
        keys = json.loads(data.decode("utf-8"))
        if not isinstance(keys, list):
            raise ValueError(f"object store list endpoint returned {type(keys).__name__}")
        return sorted(str(key) for key in keys)

    def _delete(self, key: str) -> None:
        try:
            self._request("DELETE", self._url(key))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                raise KeyError(key) from None
            raise


def _file_backend(url: str, retry: RetryPolicy | None = None,
                  auth: bytes | None = None) -> LocalBackend:
    parsed = urllib.parse.urlsplit(url)
    if parsed.netloc not in ("", "localhost"):
        raise ValueError(
            f"file:// store URLs must be local (file:///path), got {url!r}")
    path = urllib.parse.unquote(parsed.path)
    if not path:
        raise ValueError(f"file:// store URL has no path: {url!r}")
    return LocalBackend(path)


def _memory_backend(url: str, retry: RetryPolicy | None = None,
                    auth: bytes | None = None) -> MemoryBackend:
    name = url[len("memory://"):].strip("/")
    return MemoryBackend.named(name) if name else MemoryBackend()


def _object_backend(url: str, retry: RetryPolicy | None = None,
                    auth: bytes | None = None) -> ObjectStoreBackend:
    return ObjectStoreBackend(url, retry=retry, auth=auth)


_SCHEMES = {
    "file": _file_backend,
    "memory": _memory_backend,
    "http": _object_backend,
    "https": _object_backend,
}


def backend_schemes() -> tuple[str, ...]:
    """URL schemes ``resolve_backend`` understands."""
    return tuple(sorted(_SCHEMES))


def resolve_backend(url: str, *, retry: RetryPolicy | None = None,
                    auth: bytes | None = None) -> StoreBackend:
    """Instantiate the backend a ``--store-url`` locator names.

    ``file:///dir`` opens a :class:`LocalBackend`, ``memory://`` (or
    ``memory://name`` for a process-shared instance) a
    :class:`MemoryBackend`, ``http(s)://host:port/`` an
    :class:`ObjectStoreBackend`.  *retry* overrides the transport retry
    policy and *auth* supplies the request-signing key, on backends
    that have one (the object store client; local/memory stores need
    neither).
    """
    scheme, sep, _ = url.partition("://")
    if not sep:
        raise ValueError(
            f"store URL {url!r} has no scheme; expected one of "
            f"{', '.join(s + '://' for s in backend_schemes())}")
    try:
        factory = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown store URL scheme {scheme!r} in {url!r}; known schemes: "
            f"{', '.join(backend_schemes())}") from None
    return factory(url, retry, auth)
