"""Pluggable byte-storage backends behind :class:`~repro.datasets.store.DatasetStore`.

The store's artifacts are content-addressed ``.npz`` byte blobs under
string keys (``datasets/<name>-<fingerprint>.npz``,
``caches/<model_key>-<fingerprint>.npz``).  Everything fingerprint- and
format-related lives in :mod:`repro.datasets.store`; a backend only has
to move bytes:

* :class:`LocalBackend` — one directory per store, atomic
  tmp-write + rename exactly like the pre-backend store (a half-written
  temp file is cleaned up on error instead of leaking);
* :class:`MemoryBackend` — a plain dict; tests and store-less scratch
  runs.  ``memory://<name>`` URLs resolve to a process-global named
  instance so several components of one process can share it;
* :class:`ObjectStoreBackend` — a minimal S3-style HTTP object store
  speaking GET/PUT/LIST/DELETE (the bundled
  :mod:`repro.datasets.object_server` serves this API from the stdlib,
  so fleets can share artifacts without an external service).

``resolve_backend`` maps a locator URL (``file://``, ``memory://``,
``http://``/``https://``) to a backend instance — the registry behind
the ``--store-url`` CLI flag and the store locator the distributed
coordinator advertises to fleet workers, so a cold worker can bootstrap
datasets and warmed caches *directly* from shared storage instead of
relaying blobs through the coordinator's socket.
"""

from __future__ import annotations

import abc
import json
import os
import threading
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path, PurePosixPath

__all__ = [
    "StoreBackend",
    "LocalBackend",
    "MemoryBackend",
    "ObjectStoreBackend",
    "resolve_backend",
    "backend_schemes",
]


def _check_key(key: str) -> str:
    """Validate a store key: relative, slash-separated, no traversal.

    Keys cross process (and with the object store, host) boundaries, so
    they are validated at the backend seam rather than trusting callers:
    a key must never be able to escape the backend's namespace.
    """
    if not key or key.startswith(("/", "\\")) or "\\" in key:
        raise ValueError(f"invalid store key {key!r}")
    parts = PurePosixPath(key).parts
    if not parts or any(part in (".", "..") for part in parts):
        raise ValueError(f"invalid store key {key!r}")
    return key


class StoreBackend(abc.ABC):
    """Byte-blob storage: the only surface :class:`DatasetStore` needs.

    Keys are relative slash-separated paths (``datasets/foo.npz``).
    ``read``/``delete`` raise :class:`KeyError` for missing keys so the
    store can distinguish "absent" from transport failures uniformly
    across backends.
    """

    #: URL scheme the backend registers under (``file``, ``memory``, ``http``).
    scheme: str = ""

    @property
    @abc.abstractmethod
    def locator(self) -> str | None:
        """URL another process can use to open this same store.

        ``None`` when the backend is not shareable (an anonymous
        in-memory store); the distributed coordinator only advertises
        non-``None`` locators to fleet workers.
        """

    @abc.abstractmethod
    def read(self, key: str) -> bytes:
        """The stored bytes of *key*; :class:`KeyError` when absent."""

    @abc.abstractmethod
    def write(self, key: str, data: bytes) -> None:
        """Store *data* under *key* atomically (readers see old or new, never half)."""

    @abc.abstractmethod
    def exists(self, key: str) -> bool:
        """Whether *key* currently holds a blob."""

    @abc.abstractmethod
    def list(self, prefix: str = "") -> list[str]:
        """Sorted keys starting with *prefix* (``""`` lists everything)."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove *key*; :class:`KeyError` when absent."""


class LocalBackend(StoreBackend):
    """Filesystem-backed store rooted at one directory.

    Preserves the original :class:`DatasetStore` write discipline: bytes
    land in a per-process ``.tmp.npz`` sibling first and are atomically
    renamed into place, so concurrent writers of the same entry cannot
    clobber each other and readers never see a torn file.  A failed
    write (disk full, permissions, a crash between write and rename)
    unlinks its temp file instead of leaking it; leftovers from a hard
    kill are collected by :meth:`DatasetStore.prune`.
    """

    scheme = "file"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    @property
    def locator(self) -> str:
        return self.root.resolve().as_uri()

    def path(self, key: str) -> Path:
        """Absolute file the blob of *key* is (or would be) stored at."""
        return self.root / _check_key(key)

    def _tmp_path(self, path: Path) -> Path:
        # The pid suffix keeps concurrent writers of the same entry from
        # clobbering each other's half-written temp file; np.savez-style
        # tooling insists on a .npz suffix.
        return Path(f"{path}.{os.getpid()}.tmp.npz")

    def read(self, key: str) -> bytes:
        try:
            return self.path(key).read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None

    def write(self, key: str, data: bytes) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(path)
        try:
            tmp.write_bytes(data)
            tmp.replace(path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def exists(self, key: str) -> bool:
        return self.path(key).is_file()

    def list(self, prefix: str = "") -> list[str]:
        # Walk only the prefix's directory component, not the whole root:
        # existence probes and namespace listings stay O(entries under
        # the prefix) instead of O(total artifacts).
        if prefix:
            _check_key(prefix.rstrip("/") or prefix)
        directory, _, _ = prefix.rpartition("/")
        base = self.root / directory if directory else self.root
        if not base.is_dir():
            return []
        keys = [
            path.relative_to(self.root).as_posix()
            for path in base.rglob("*")
            if path.is_file()
        ]
        return sorted(key for key in keys if key.startswith(prefix))

    def delete(self, key: str) -> None:
        try:
            self.path(key).unlink()
        except FileNotFoundError:
            raise KeyError(key) from None


#: Process-global ``memory://<name>`` stores, shared by every resolver call
#: with the same name (anonymous ``memory://`` stores are private).
_NAMED_MEMORY_STORES: dict[str, MemoryBackend] = {}
_NAMED_MEMORY_LOCK = threading.Lock()


class MemoryBackend(StoreBackend):
    """Dict-backed store: tests, demos and store-less scratch runs.

    A *named* instance (``MemoryBackend.named("x")`` / ``memory://x``)
    is process-global, so several components of one process can reopen
    the same store by URL.  No memory store ever advertises a locator:
    the :attr:`~StoreBackend.locator` contract is "another *process* can
    open this", and a ``memory://`` URL resolved in a subprocess is a
    fresh empty dict — advertising it would make process-pool workers
    silently regenerate datasets instead of receiving the parent's copy.
    """

    scheme = "memory"

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()

    @classmethod
    def named(cls, name: str) -> MemoryBackend:
        with _NAMED_MEMORY_LOCK:
            backend = _NAMED_MEMORY_STORES.get(name)
            if backend is None:
                backend = _NAMED_MEMORY_STORES[name] = cls(name)
            return backend

    @property
    def locator(self) -> None:
        return None

    def read(self, key: str) -> bytes:
        with self._lock:
            return self._blobs[_check_key(key)]

    def write(self, key: str, data: bytes) -> None:
        with self._lock:
            self._blobs[_check_key(key)] = bytes(data)

    def exists(self, key: str) -> bool:
        with self._lock:
            return _check_key(key) in self._blobs

    def list(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(key for key in self._blobs if key.startswith(prefix))

    def delete(self, key: str) -> None:
        with self._lock:
            del self._blobs[_check_key(key)]


class ObjectStoreBackend(StoreBackend):
    """Client of a minimal S3-style HTTP object store.

    The API (served by the bundled
    :mod:`repro.datasets.object_server`, or by anything speaking plain
    HTTP object semantics):

    * ``GET /<key>`` — blob bytes, 404 when absent;
    * ``HEAD /<key>`` — existence probe (200/404, no body);
    * ``PUT /<key>`` — store the request body under the key;
    * ``DELETE /<key>`` — remove the key, 404 when absent;
    * ``GET /?prefix=<p>`` — JSON array of keys under the prefix.

    ``reads``/``writes`` count successful blob transfers (the
    hit-counter instrumentation the fleet tests use to prove workers
    bootstrap from the object store rather than the coordinator).
    """

    scheme = "http"

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(f"object store URL must be http(s), got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.reads = 0
        self.writes = 0

    @property
    def locator(self) -> str:
        return self.base_url + "/"

    def _url(self, key: str) -> str:
        return f"{self.base_url}/{urllib.parse.quote(_check_key(key))}"

    def _request(self, method: str, url: str, data: bytes | None = None) -> bytes:
        request = urllib.request.Request(url, data=data, method=method)
        if data is not None:
            request.add_header("Content-Type", "application/octet-stream")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read()

    def read(self, key: str) -> bytes:
        try:
            data = self._request("GET", self._url(key))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                raise KeyError(key) from None
            raise
        self.reads += 1
        return data

    def write(self, key: str, data: bytes) -> None:
        self._request("PUT", self._url(key), data=bytes(data))
        self.writes += 1

    def exists(self, key: str) -> bool:
        # HEAD: one round trip, no body, no server-side listing walk.
        try:
            self._request("HEAD", self._url(key))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return False
            raise
        return True

    def list(self, prefix: str = "") -> list[str]:
        query = urllib.parse.urlencode({"prefix": prefix})
        data = self._request("GET", f"{self.base_url}/?{query}")
        keys = json.loads(data.decode("utf-8"))
        if not isinstance(keys, list):
            raise ValueError(f"object store list endpoint returned {type(keys).__name__}")
        return sorted(str(key) for key in keys)

    def delete(self, key: str) -> None:
        try:
            self._request("DELETE", self._url(key))
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                raise KeyError(key) from None
            raise


def _file_backend(url: str) -> LocalBackend:
    parsed = urllib.parse.urlsplit(url)
    if parsed.netloc not in ("", "localhost"):
        raise ValueError(
            f"file:// store URLs must be local (file:///path), got {url!r}")
    path = urllib.parse.unquote(parsed.path)
    if not path:
        raise ValueError(f"file:// store URL has no path: {url!r}")
    return LocalBackend(path)


def _memory_backend(url: str) -> MemoryBackend:
    name = url[len("memory://"):].strip("/")
    return MemoryBackend.named(name) if name else MemoryBackend()


_SCHEMES = {
    "file": _file_backend,
    "memory": _memory_backend,
    "http": ObjectStoreBackend,
    "https": ObjectStoreBackend,
}


def backend_schemes() -> tuple[str, ...]:
    """URL schemes ``resolve_backend`` understands."""
    return tuple(sorted(_SCHEMES))


def resolve_backend(url: str) -> StoreBackend:
    """Instantiate the backend a ``--store-url`` locator names.

    ``file:///dir`` opens a :class:`LocalBackend`, ``memory://`` (or
    ``memory://name`` for a process-shared instance) a
    :class:`MemoryBackend`, ``http(s)://host:port/`` an
    :class:`ObjectStoreBackend`.
    """
    scheme, sep, _ = url.partition("://")
    if not sep:
        raise ValueError(
            f"store URL {url!r} has no scheme; expected one of "
            f"{', '.join(s + '://' for s in backend_schemes())}")
    try:
        factory = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown store URL scheme {scheme!r} in {url!r}; known schemes: "
            f"{', '.join(backend_schemes())}") from None
    return factory(url)
