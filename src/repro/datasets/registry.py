"""Name-based dataset registry.

Lets examples, experiments and benchmarks refer to the paper's datasets by
the short names used throughout DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.features import PerformanceDataset
from repro.datasets.fmm_datasets import fmm_dataset
from repro.datasets.stencil_datasets import (
    blocked_small_grid_dataset,
    grid_only_dataset,
    threaded_dataset,
)

__all__ = ["DATASET_REGISTRY", "load_dataset"]

DATASET_REGISTRY: dict[str, Callable[..., PerformanceDataset]] = {
    "stencil-blocked": blocked_small_grid_dataset,
    "stencil-grid-only": grid_only_dataset,
    "stencil-threaded": threaded_dataset,
    "fmm": fmm_dataset,
}


def load_dataset(name: str, **kwargs) -> PerformanceDataset:
    """Build one of the paper's datasets by name.

    ``kwargs`` are forwarded to the generator (e.g. ``max_configs=500`` for
    a quick subsampled version, or a custom ``simulator``).
    """
    try:
        factory = DATASET_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        ) from None
    return factory(**kwargs)
