"""Adaptive octree construction.

The FMM decomposes space by recursive subdivision into eight children
until every leaf holds at most ``q`` particles (the paper's
"particles per leaf cell").  For the uniform cube distribution used in the
evaluation, the resulting tree is essentially a full octree, which is the
assumption behind the analytical models of Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fmm.particles import ParticleSet

__all__ = ["Cell", "Octree"]

#: Offsets of the eight octants relative to a parent center (unit half-width).
_OCTANT_OFFSETS = np.array(
    [[dx, dy, dz] for dx in (-0.5, 0.5) for dy in (-0.5, 0.5) for dz in (-0.5, 0.5)]
)


@dataclass
class Cell:
    """One octree cell.

    Attributes
    ----------
    index:
        Position of the cell in ``Octree.cells``.
    parent:
        Index of the parent cell (-1 for the root).
    children:
        Indices of the child cells (empty for leaves).
    center, radius:
        Geometric center and half-width of the cube.
    level:
        Tree depth (root = 0).
    particle_indices:
        Indices (into the particle set) of the particles contained in this
        cell.  Populated for every cell, so P2M/P2P never have to gather
        through the children.
    """

    index: int
    parent: int
    center: np.ndarray
    radius: float
    level: int
    particle_indices: np.ndarray
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether the cell has no children."""
        return not self.children

    @property
    def n_particles(self) -> int:
        """Number of particles contained in the cell."""
        return len(self.particle_indices)


class Octree:
    """Adaptive octree over a :class:`~repro.fmm.particles.ParticleSet`.

    Parameters
    ----------
    particles:
        The particle set to partition.
    max_per_leaf:
        The paper's ``q``: a cell with more than this many particles is
        subdivided (until ``max_level`` is reached).
    max_level:
        Hard depth cap to keep degenerate distributions bounded.
    """

    def __init__(self, particles: ParticleSet, *, max_per_leaf: int = 64,
                 max_level: int = 21) -> None:
        if max_per_leaf < 1:
            raise ValueError(f"max_per_leaf must be >= 1, got {max_per_leaf}")
        if max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {max_level}")
        self.particles = particles
        self.max_per_leaf = max_per_leaf
        self.max_level = max_level
        self.cells: list[Cell] = []
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        center, radius = self.particles.bounding_cube()
        root = Cell(
            index=0, parent=-1, center=center, radius=radius, level=0,
            particle_indices=np.arange(self.particles.n),
        )
        self.cells.append(root)
        stack = [0]
        positions = self.particles.positions
        while stack:
            cell_index = stack.pop()
            cell = self.cells[cell_index]
            if cell.n_particles <= self.max_per_leaf or cell.level >= self.max_level:
                continue
            child_radius = cell.radius / 2.0
            local = positions[cell.particle_indices]
            octant = (
                (local[:, 0] >= cell.center[0]).astype(np.int8) * 4
                + (local[:, 1] >= cell.center[1]).astype(np.int8) * 2
                + (local[:, 2] >= cell.center[2]).astype(np.int8)
            )
            for o in range(8):
                mask = octant == o
                if not np.any(mask):
                    continue
                child_center = cell.center + _OCTANT_OFFSETS[o] * cell.radius
                child = Cell(
                    index=len(self.cells),
                    parent=cell.index,
                    center=child_center,
                    radius=child_radius,
                    level=cell.level + 1,
                    particle_indices=cell.particle_indices[mask],
                )
                self.cells.append(child)
                cell.children.append(child.index)
                stack.append(child.index)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> Cell:
        """The root cell."""
        return self.cells[0]

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        return len(self.cells)

    @property
    def n_levels(self) -> int:
        """Number of levels (root level counts as 1)."""
        return 1 + max(cell.level for cell in self.cells)

    @property
    def leaves(self) -> list[Cell]:
        """All leaf cells."""
        return [cell for cell in self.cells if cell.is_leaf]

    def cells_at_level(self, level: int) -> list[Cell]:
        """All cells at a given depth."""
        return [cell for cell in self.cells if cell.level == level]

    def max_leaf_population(self) -> int:
        """Largest number of particles in any leaf."""
        return max(cell.n_particles for cell in self.leaves)

    def mean_leaf_population(self) -> float:
        """Average number of particles per leaf."""
        leaves = self.leaves
        return float(np.mean([cell.n_particles for cell in leaves]))

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on violation.

        * every particle belongs to exactly one leaf,
        * children partition their parent's particles,
        * children are geometrically inside their parent,
        * leaves respect ``max_per_leaf`` unless at ``max_level``.
        """
        seen = np.zeros(self.particles.n, dtype=np.int64)
        for leaf in self.leaves:
            seen[leaf.particle_indices] += 1
        assert np.all(seen == 1), "particles must be covered exactly once by leaves"
        for cell in self.cells:
            if cell.is_leaf:
                assert (cell.n_particles <= self.max_per_leaf
                        or cell.level >= self.max_level), "oversized leaf"
                continue
            child_union = np.concatenate(
                [self.cells[c].particle_indices for c in cell.children]
            )
            assert len(child_union) == cell.n_particles, "children must partition parent"
            assert set(child_union.tolist()) == set(cell.particle_indices.tolist())
            for c in cell.children:
                child = self.cells[c]
                assert child.level == cell.level + 1
                assert np.all(
                    np.abs(child.center - cell.center) <= cell.radius + 1e-12
                ), "child center outside parent"

    def __repr__(self) -> str:
        return (f"Octree(n_particles={self.particles.n}, n_cells={self.n_cells}, "
                f"levels={self.n_levels}, max_per_leaf={self.max_per_leaf})")
