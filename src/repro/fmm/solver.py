"""The FMM driver.

:class:`Fmm` wires the substrate together into the standard pipeline
(Section II-B of the paper):

1. octree construction,
2. **P2M** at the leaves, **M2M** up the tree (upward pass),
3. **M2L** across the interaction lists produced by dual tree traversal
   (or the classic U/V lists),
4. **L2L** down the tree, **L2P** at the leaves (downward pass),
5. **P2P** over the near field.

Per-phase wall-clock timings are recorded so the executable solver can be
compared against the analytical models of Section IV-B and the performance
simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.fmm.expansions import CartesianExpansion
from repro.fmm.kernels import l2l, l2p, m2l, m2m, p2m, p2p
from repro.fmm.octree import Octree
from repro.fmm.particles import ParticleSet
from repro.fmm.traversal import Interactions, build_interaction_lists, dual_tree_traversal
from repro.parallel.threadpool import parallel_map

__all__ = ["PhaseTimings", "FmmResult", "Fmm"]


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each FMM phase."""

    tree: float = 0.0
    p2m: float = 0.0
    m2m: float = 0.0
    m2l: float = 0.0
    l2l: float = 0.0
    l2p: float = 0.0
    p2p: float = 0.0
    traversal: float = 0.0

    @property
    def total(self) -> float:
        """Total time across all phases."""
        return (self.tree + self.p2m + self.m2m + self.m2l
                + self.l2l + self.l2p + self.p2p + self.traversal)

    def as_dict(self) -> dict[str, float]:
        """Phase-name to seconds mapping (including the total)."""
        return {
            "tree": self.tree, "p2m": self.p2m, "m2m": self.m2m,
            "m2l": self.m2l, "l2l": self.l2l, "l2p": self.l2p,
            "p2p": self.p2p, "traversal": self.traversal, "total": self.total,
        }


@dataclass
class FmmResult:
    """Output of one FMM evaluation."""

    potentials: np.ndarray
    timings: PhaseTimings
    octree: Octree
    interactions: Interactions
    order: int

    @property
    def n_particles(self) -> int:
        """Number of particles evaluated."""
        return len(self.potentials)


class Fmm:
    """Fast multipole method for the 3-D Laplace kernel.

    Parameters
    ----------
    order:
        Expansion order ``k`` (the paper sweeps 2..12).
    max_per_leaf:
        Particles per leaf cell ``q``.
    traversal:
        ``"dual"`` (ExaFMM-style dual tree traversal, default) or
        ``"lists"`` (classic U/V interaction lists; intended for the
        near-uniform distributions the paper's models assume).
    theta:
        Multipole acceptance criterion for the dual traversal.
    n_jobs:
        Worker threads for the P2P phase.
    """

    def __init__(self, *, order: int = 4, max_per_leaf: int = 64,
                 traversal: str = "dual", theta: float = 0.6,
                 n_jobs: int = 1) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if max_per_leaf < 1:
            raise ValueError(f"max_per_leaf must be >= 1, got {max_per_leaf}")
        if traversal not in ("dual", "lists"):
            raise ValueError(f"traversal must be 'dual' or 'lists', got {traversal!r}")
        self.order = order
        self.max_per_leaf = max_per_leaf
        self.traversal = traversal
        self.theta = theta
        self.n_jobs = n_jobs
        self.expansion = CartesianExpansion(order=order)

    # ------------------------------------------------------------------ #
    def evaluate(self, particles: ParticleSet) -> FmmResult:
        """Compute the potential at every particle due to all others."""
        timings = PhaseTimings()
        n_terms = self.expansion.n_terms

        t0 = time.perf_counter()
        octree = Octree(particles, max_per_leaf=self.max_per_leaf)
        timings.tree = time.perf_counter() - t0

        t0 = time.perf_counter()
        if self.traversal == "dual":
            interactions = dual_tree_traversal(octree, theta=self.theta)
        else:
            interactions = build_interaction_lists(octree)
        timings.traversal = time.perf_counter() - t0

        cells = octree.cells
        positions = particles.positions
        weights = particles.weights
        multipoles = np.zeros((len(cells), n_terms))
        locals_ = np.zeros((len(cells), n_terms))
        potentials = np.zeros(particles.n)

        # ---------------- upward pass: P2M at leaves, M2M up ---------------- #
        t0 = time.perf_counter()
        for cell in octree.leaves:
            multipoles[cell.index] = p2m(
                self.expansion, positions[cell.particle_indices],
                weights[cell.particle_indices], cell.center,
            )
        timings.p2m = time.perf_counter() - t0

        t0 = time.perf_counter()
        by_depth = sorted(
            (c for c in cells if not c.is_leaf),
            key=lambda c: c.level, reverse=True,
        )
        for cell in by_depth:
            for child_index in cell.children:
                child = cells[child_index]
                multipoles[cell.index] += m2m(
                    self.expansion, multipoles[child_index],
                    child.center, cell.center,
                )
        timings.m2m = time.perf_counter() - t0

        # ---------------- far field: batched M2L ---------------- #
        t0 = time.perf_counter()
        if interactions.m2l_pairs:
            pairs = np.asarray(interactions.m2l_pairs, dtype=np.int64)
            target_centers = np.array([cells[t].center for t in pairs[:, 0]])
            source_centers = np.array([cells[s].center for s in pairs[:, 1]])
            contributions = m2l(
                self.expansion,
                multipoles[pairs[:, 1]].T,
                source_centers,
                target_centers,
            )
            np.add.at(locals_, pairs[:, 0], contributions.T)
        timings.m2l = time.perf_counter() - t0

        # ---------------- downward pass: L2L then L2P ---------------- #
        t0 = time.perf_counter()
        for cell in sorted((c for c in cells if not c.is_leaf), key=lambda c: c.level):
            for child_index in cell.children:
                child = cells[child_index]
                locals_[child_index] += l2l(
                    self.expansion, locals_[cell.index], cell.center, child.center,
                )
        timings.l2l = time.perf_counter() - t0

        t0 = time.perf_counter()
        for cell in octree.leaves:
            potentials[cell.particle_indices] += l2p(
                self.expansion, locals_[cell.index], cell.center,
                positions[cell.particle_indices],
            )
        timings.l2p = time.perf_counter() - t0

        # ---------------- near field: P2P ---------------- #
        t0 = time.perf_counter()
        p2p_by_target: dict[int, list[int]] = {}
        for t, s in interactions.p2p_pairs:
            p2p_by_target.setdefault(t, []).append(s)

        def _near_field(item: tuple[int, list[int]]) -> tuple[np.ndarray, np.ndarray]:
            target_index, source_cells = item
            target_cell = cells[target_index]
            src_idx = np.concatenate([cells[s].particle_indices for s in source_cells])
            values = p2p(positions[target_cell.particle_indices],
                         positions[src_idx], weights[src_idx])
            return target_cell.particle_indices, values

        for idx, values in parallel_map(_near_field, list(p2p_by_target.items()),
                                        n_jobs=self.n_jobs):
            potentials[idx] += values
        timings.p2p = time.perf_counter() - t0

        return FmmResult(potentials=potentials, timings=timings, octree=octree,
                         interactions=interactions, order=self.order)

    # ------------------------------------------------------------------ #
    def relative_error(self, particles: ParticleSet, *, reference: np.ndarray | None = None,
                       sample: int | None = None, random_state=0) -> float:
        """L2 relative error against direct summation.

        ``sample`` limits the reference computation to a random subset of
        targets (the usual practice for large N).
        """
        from repro.fmm.direct import DirectSummation
        from repro.utils.rng import check_random_state

        result = self.evaluate(particles)
        if reference is not None:
            ref = np.asarray(reference, dtype=float)
            approx = result.potentials
        elif sample is not None and sample < particles.n:
            rng = check_random_state(random_state)
            idx = rng.choice(particles.n, size=sample, replace=False)
            ref_full = DirectSummation().potentials(
                particles, targets=particles.positions[idx])
            # Remove the self contribution that the FMM also excludes: the
            # direct evaluation at a source point already skips r == 0.
            ref = ref_full
            approx = result.potentials[idx]
        else:
            ref = DirectSummation().potentials(particles)
            approx = result.potentials
        denom = float(np.linalg.norm(ref))
        if denom == 0.0:
            return float(np.linalg.norm(approx - ref))
        return float(np.linalg.norm(approx - ref) / denom)
