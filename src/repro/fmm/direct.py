"""Direct O(N^2) summation baseline.

The reference the FMM is validated against (and the natural baseline any
FMM paper compares to).  Evaluation is blocked so memory stays bounded for
large N, and an optional thread pool parallelizes over target blocks.
"""

from __future__ import annotations

import numpy as np

from repro.fmm.kernels import laplace_potential
from repro.fmm.particles import ParticleSet
from repro.parallel.threadpool import chunk_indices, parallel_map

__all__ = ["DirectSummation"]


class DirectSummation:
    """Direct all-pairs Laplace potential evaluation.

    Parameters
    ----------
    block_size:
        Number of target particles processed per block (bounds the
        ``block_size x N`` distance matrix).
    n_jobs:
        Worker threads over target blocks (NumPy releases the GIL inside
        the kernel evaluation).
    """

    def __init__(self, *, block_size: int = 1024, n_jobs: int = 1) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.n_jobs = n_jobs

    def potentials(self, particles: ParticleSet,
                   targets: np.ndarray | None = None) -> np.ndarray:
        """Potential at every target due to all particles (self term excluded).

        Parameters
        ----------
        particles:
            Source particles.
        targets:
            Optional ``(M, 3)`` evaluation points; defaults to the source
            positions themselves.
        """
        sources = particles.positions
        weights = particles.weights
        eval_points = sources if targets is None else np.atleast_2d(targets)
        n_targets = eval_points.shape[0]
        n_blocks = max(1, int(np.ceil(n_targets / self.block_size)))
        blocks = chunk_indices(n_targets, n_blocks)

        def _block(block: range) -> np.ndarray:
            rows = eval_points[block.start: block.stop]
            return laplace_potential(rows, sources, weights)

        results = parallel_map(_block, blocks, n_jobs=self.n_jobs)
        return np.concatenate(results) if results else np.zeros(0, dtype=np.float64)

    def operation_count(self, n: int) -> int:
        """Kernel evaluations performed for an N-body problem (N^2)."""
        return int(n) * int(n)
