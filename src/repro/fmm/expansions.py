"""Cartesian Taylor expansion machinery for the Laplace kernel.

ExaFMM's Laplace kernels used in the paper are based on Cartesian series
expansions (Section IV-B: "ExaFMM uses Cartesian series expansion which
has operations count of 189 k^6").  This module provides the pieces the
FMM kernels are built from:

* :class:`MultiIndexSet` — enumeration of multi-indices
  ``n = (nx, ny, nz)`` with ``|n| <= p``, factorials and index lookup;
* monomial evaluation ``dx^n`` for batches of points;
* the Taylor coefficients ``T_n(R)`` of ``1 / |R + t|`` about ``t = 0``
  computed with the classical treecode recurrence (Duan & Krasny style),
  vectorized over many expansion centers ``R`` simultaneously;
* shift (translation) matrices used by the M2M and L2L operators.

The convention used throughout:

* **Multipole expansion** of a source cell with center ``zc``:
  ``M_n = sum_i w_i (x_i - zc)^n / n!``.
* The potential induced far away is
  ``phi(y) = sum_n M_n n! (-1)^{|n|} T_n(y - zc)`` — equivalently
  ``sum_n M_n D^n (1/r)`` evaluated at ``r = y - zc``.
* **Local expansion** of a target cell with center ``zt``:
  ``phi(zt + dy) = sum_m L_m dy^m``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial

import numpy as np

__all__ = ["MultiIndexSet", "CartesianExpansion", "taylor_coefficients"]


class MultiIndexSet:
    """All multi-indices ``(nx, ny, nz)`` with total degree ``<= order``.

    Indices are sorted by total degree (then lexicographically), so the
    recurrences that build coefficients degree by degree can simply walk
    the array once.
    """

    def __init__(self, order: int) -> None:
        if order < 0:
            raise ValueError(f"order must be >= 0, got {order}")
        self.order = order
        indices = []
        for total in range(order + 1):
            for nx in range(total, -1, -1):
                for ny in range(total - nx, -1, -1):
                    nz = total - nx - ny
                    indices.append((nx, ny, nz))
        self.indices = np.array(indices, dtype=np.int64)
        self.degrees = self.indices.sum(axis=1)
        self.factorials = np.array(
            [factorial(nx) * factorial(ny) * factorial(nz) for nx, ny, nz in indices],
            dtype=np.float64,
        )
        self._lookup = {tuple(idx): i for i, idx in enumerate(indices)}

    # ------------------------------------------------------------------ #
    @property
    def n_terms(self) -> int:
        """Number of multi-indices (``C(order + 3, 3)``)."""
        return len(self.indices)

    def index_of(self, multi: tuple[int, int, int]) -> int:
        """Position of a multi-index in the set (-1 if absent)."""
        return self._lookup.get(tuple(int(v) for v in multi), -1)

    def monomials(self, dx: np.ndarray) -> np.ndarray:
        """Evaluate ``dx^n`` for every point and multi-index.

        Parameters
        ----------
        dx:
            ``(npoints, 3)`` displacements.

        Returns
        -------
        ndarray of shape ``(npoints, n_terms)``.
        """
        dx = np.atleast_2d(np.asarray(dx, dtype=np.float64))
        if dx.shape[1] != 3:
            raise ValueError(f"dx must have shape (npoints, 3), got {dx.shape}")
        # Precompute powers of each coordinate up to `order`.
        npoints = dx.shape[0]
        pows = np.ones((3, self.order + 1, npoints))
        for axis in range(3):
            for d in range(1, self.order + 1):
                pows[axis, d] = pows[axis, d - 1] * dx[:, axis]
        nx, ny, nz = self.indices[:, 0], self.indices[:, 1], self.indices[:, 2]
        return (pows[0, nx] * pows[1, ny] * pows[2, nz]).T

    def shift_matrix(self, shift: np.ndarray, *, weighted: bool = True) -> np.ndarray:
        """Matrix ``S`` with ``S[m, n] = shift^(m-n) / (m-n)!`` for ``n <= m``.

        With ``weighted=True`` this is exactly the multipole-to-multipole
        (M2M) translation matrix in the ``M_n = sum w dx^n / n!`` convention:
        ``M'_m = sum_n S[m, n] M_n``.  With ``weighted=False`` the entries
        are multinomial-free monomials ``shift^(m-n)`` scaled by the
        binomial ``C(m, n)``, which is the local-to-local (L2L) matrix for
        unweighted local coefficients.
        """
        shift = np.asarray(shift, dtype=np.float64).reshape(3)
        n_terms = self.n_terms
        S = np.zeros((n_terms, n_terms))
        for mi, m in enumerate(self.indices):
            for ni, n in enumerate(self.indices):
                d = m - n
                if np.any(d < 0):
                    continue
                mono = shift[0] ** d[0] * shift[1] ** d[1] * shift[2] ** d[2]
                if weighted:
                    S[mi, ni] = mono / (factorial(d[0]) * factorial(d[1]) * factorial(d[2]))
                else:
                    binom = (
                        _binom(m[0], n[0]) * _binom(m[1], n[1]) * _binom(m[2], n[2])
                    )
                    S[mi, ni] = mono * binom
        return S


def _binom(a: int, b: int) -> float:
    if b < 0 or b > a:
        return 0.0
    return factorial(a) / (factorial(b) * factorial(a - b))


def taylor_coefficients(mset: MultiIndexSet, R: np.ndarray) -> np.ndarray:
    """Taylor coefficients ``T_n`` of ``1 / |R + t|`` about ``t = 0``.

    Uses the classical recurrence (obtained from the Legendre three-term
    recurrence through the Gegenbauer generating function)::

        |n| |R|^2 T_n + (2|n| - 1) sum_i R_i T_{n - e_i}
                      + (|n| - 1) sum_i T_{n - 2 e_i} = 0,    T_0 = 1 / |R|

    vectorized over a batch of expansion centers.

    Parameters
    ----------
    mset:
        Multi-index set defining which coefficients to compute.
    R:
        ``(nbatch, 3)`` (or ``(3,)``) array of centers; ``|R|`` must be
        non-zero.

    Returns
    -------
    ndarray of shape ``(n_terms, nbatch)``.
    """
    R = np.atleast_2d(np.asarray(R, dtype=np.float64))
    if R.shape[1] != 3:
        raise ValueError(f"R must have shape (nbatch, 3), got {R.shape}")
    r2 = np.einsum("ij,ij->i", R, R)
    if np.any(r2 <= 0):
        raise ValueError("taylor_coefficients requires non-zero separation |R| > 0")
    nbatch = R.shape[0]
    n_terms = mset.n_terms
    T = np.zeros((n_terms, nbatch))
    T[0] = 1.0 / np.sqrt(r2)
    e = np.eye(3, dtype=np.int64)
    for idx in range(1, n_terms):
        n = mset.indices[idx]
        total = int(mset.degrees[idx])
        acc = np.zeros(nbatch)
        for axis in range(3):
            if n[axis] >= 1:
                j = mset.index_of(tuple(n - e[axis]))
                acc += (2 * total - 1) * R[:, axis] * T[j]
            if n[axis] >= 2:
                j = mset.index_of(tuple(n - 2 * e[axis]))
                acc += (total - 1) * T[j]
        T[idx] = -acc / (total * r2)
    return T


@dataclass
class CartesianExpansion:
    """Bundle of multi-index sets used by an order-``p`` Cartesian FMM.

    Attributes
    ----------
    order:
        Expansion order ``p`` (the paper's ``k``): multipole and local
        expansions keep all terms of total degree ``< p`` (``p`` terms per
        dimension counting from degree 0), matching the usual "order k"
        accuracy convention ``O((d/r)^k)``.
    mset:
        Multi-index set of degree ``p - 1`` for multipole/local expansions.
    mset_ext:
        Extended set of degree ``2 (p - 1)`` needed by the M2L operator.
    """

    order: int

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError(f"order must be >= 1, got {self.order}")
        self.mset = MultiIndexSet(self.order - 1)
        self.mset_ext = MultiIndexSet(2 * (self.order - 1))
        # Map (multipole index n, local index m) -> position of n+m in mset_ext,
        # plus the combinatorial factor (n+m)! / m! and the (-1)^|n| sign.
        n_terms = self.mset.n_terms
        self._shift_cache: dict = {}
        self._nm_index = np.empty((n_terms, n_terms), dtype=np.int64)
        self._nm_factor = np.empty((n_terms, n_terms), dtype=np.float64)
        for ni, n in enumerate(self.mset.indices):
            sign = -1.0 if (self.mset.degrees[ni] % 2) else 1.0
            for mi, m in enumerate(self.mset.indices):
                s = n + m
                self._nm_index[mi, ni] = self.mset_ext.index_of(tuple(s))
                fact_nm = (factorial(s[0]) * factorial(s[1]) * factorial(s[2]))
                self._nm_factor[mi, ni] = sign * fact_nm / self.mset.factorials[mi]

    # ------------------------------------------------------------------ #
    @property
    def n_terms(self) -> int:
        """Terms per multipole/local expansion."""
        return self.mset.n_terms

    def monomials(self, dx: np.ndarray) -> np.ndarray:
        """``dx^n`` for the expansion's multi-index set; shape ``(npoints, n_terms)``."""
        return self.mset.monomials(dx)

    def kernel_derivative_table(self, R: np.ndarray) -> np.ndarray:
        """Extended Taylor coefficient table ``T_s(R)``; shape ``(n_terms_ext, nbatch)``."""
        return taylor_coefficients(self.mset_ext, R)

    def m2l_apply(self, M: np.ndarray, T: np.ndarray) -> np.ndarray:
        """Convert multipole coefficients to local coefficients.

        Parameters
        ----------
        M:
            ``(n_terms, nbatch)`` multipole coefficients of the *source*
            cell of each interaction.
        T:
            ``(n_terms_ext, nbatch)`` Taylor table of ``R = zt - zc`` for
            each interaction (from :meth:`kernel_derivative_table`).

        Returns
        -------
        ndarray ``(n_terms, nbatch)`` — local coefficient *contributions*
        for the target cell of each interaction (caller accumulates).
        """
        if M.shape[0] != self.n_terms:
            raise ValueError(
                f"M has {M.shape[0]} terms, expected {self.n_terms}"
            )
        nbatch = M.shape[1]
        L = np.zeros((self.n_terms, nbatch))
        # Loop over multipole terms (order p^3 / 6 iterations), vectorized over
        # local terms and interactions.
        for ni in range(self.n_terms):
            L += self._nm_factor[:, ni][:, None] * T[self._nm_index[:, ni], :] * M[ni][None, :]
        return L

    def m2m_matrix(self, shift: np.ndarray) -> np.ndarray:
        """M2M translation matrix for moving a multipole center by ``shift``.

        ``shift = child_center - parent_center`` (the new expansion is
        about the parent).  Matrices are cached by the (rounded) shift
        vector: in an octree the parent-child shifts take only eight
        distinct values per level, so the cache turns the upward/downward
        passes from O(cells * terms^2) matrix rebuilds into dictionary
        lookups.
        """
        return self._cached_shift_matrix(shift, weighted=True)

    def l2l_matrix(self, shift: np.ndarray) -> np.ndarray:
        """L2L translation matrix for moving a local center by ``shift``.

        ``shift = child_center - parent_center``; the new expansion is
        about the child.  In the unweighted ``phi = sum L_m dy^m``
        convention the matrix entries are ``C(m, j) shift^(m - j)`` and the
        translation is ``L'_j = sum_m L_m C(m, j) shift^(m-j)``, i.e. the
        *transpose* pattern of :meth:`m2m_matrix`; this method returns the
        matrix already oriented so that ``L' = matrix @ L``.
        """
        return self._cached_shift_matrix(shift, weighted=False).T

    def _cached_shift_matrix(self, shift: np.ndarray, *, weighted: bool) -> np.ndarray:
        shift = np.asarray(shift, dtype=np.float64).reshape(3)
        key = (bool(weighted), tuple(np.round(shift, 12)))
        cached = self._shift_cache.get(key)
        if cached is None:
            cached = self.mset.shift_matrix(shift, weighted=weighted)
            self._shift_cache[key] = cached
        return cached
