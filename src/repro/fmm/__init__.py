"""Fast-multipole-method substrate (an ExaFMM-like solver).

The paper's second application is ExaFMM (Section II-B / III-B): a fast
multipole method for the 3-D Laplace kernel with Cartesian series
expansions, dual tree traversal, and hybrid MPI/OpenMP parallelism.  The
modeling vector is ``X = (t, N, q, k)`` — threads, particles, particles
per leaf cell, and expansion order.

This package implements the method from scratch:

* :mod:`repro.fmm.particles` — particle sets and distributions,
* :mod:`repro.fmm.octree` — adaptive octree construction,
* :mod:`repro.fmm.expansions` — Cartesian Taylor machinery (multi-index
  tables, kernel-derivative recurrences, translation operators),
* :mod:`repro.fmm.kernels` — the P2M, M2M, M2L, L2L, L2P and P2P kernels,
* :mod:`repro.fmm.traversal` — dual tree traversal plus explicit
  neighbor/well-separated interaction lists,
* :mod:`repro.fmm.solver` — the :class:`Fmm` driver with per-phase
  instrumentation,
* :mod:`repro.fmm.direct` — the O(N^2) direct-summation baseline,
* :mod:`repro.fmm.config` / :mod:`repro.fmm.perf_sim` — the (t, N, q, k)
  configuration space and the per-phase performance simulator that stands
  in for Blue Waters measurements (DESIGN.md, substitution table).
"""

from repro.fmm.config import FmmConfig, FmmConfigSpace
from repro.fmm.direct import DirectSummation
from repro.fmm.expansions import CartesianExpansion, MultiIndexSet
from repro.fmm.kernels import (
    l2l,
    l2p,
    laplace_potential,
    m2l,
    m2m,
    p2m,
    p2p,
)
from repro.fmm.octree import Cell, Octree
from repro.fmm.particles import ParticleSet, plummer, random_cube, random_sphere
from repro.fmm.perf_sim import FmmPerformanceSimulator
from repro.fmm.solver import Fmm, FmmResult, PhaseTimings
from repro.fmm.traversal import Interactions, build_interaction_lists, dual_tree_traversal

__all__ = [
    "ParticleSet",
    "random_cube",
    "random_sphere",
    "plummer",
    "Octree",
    "Cell",
    "MultiIndexSet",
    "CartesianExpansion",
    "laplace_potential",
    "p2p",
    "p2m",
    "m2m",
    "m2l",
    "l2l",
    "l2p",
    "dual_tree_traversal",
    "build_interaction_lists",
    "Interactions",
    "Fmm",
    "FmmResult",
    "PhaseTimings",
    "DirectSummation",
    "FmmConfig",
    "FmmConfigSpace",
    "FmmPerformanceSimulator",
]
