"""Per-phase performance simulator for FMM configurations.

Stand-in for the paper's ExaFMM measurements on Blue Waters (DESIGN.md,
substitution table).  Given a configuration ``(t, N, q, k)`` and a machine
description it produces an execution time built phase by phase — tree
construction, P2M, M2M, M2L, L2L, L2P and P2P — from operation counts and
memory-traffic estimates that *extend* the Section IV-B analytical model
with the effects real FMM codes exhibit and the model ignores:

* the tree depth is discrete, so the *actual* particles-per-leaf is
  ``N / 8^depth`` rather than the requested ``q`` (staircase response);
* leaf cells on the domain boundary have fewer than 26 neighbours and 189
  well-separated cells;
* the P2P inner kernel vectorizes poorly for small leaves (SIMD remainder
  loops) and the M2L operator has a non-trivial constant per coefficient
  pair;
* each phase scales differently with threads (P2P is compute bound, M2L
  partially bandwidth bound, the upward/downward passes and the tree build
  barely scale);
* deterministic configuration-dependent "measurement" noise.

The analytical model of Section IV-B is single-core and assumes an ideal
full tree, so its error against this simulator is small for serial,
tree-friendly configurations and large once threads and staircase effects
enter — mirroring the paper's reported 84.5% analytical-model MAPE on the
full (t, N, q, k) dataset.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.fmm.config import FmmConfig
from repro.machine import MachineSpec, blue_waters_xe6
from repro.parallel.scaling import ThreadScalingModel

__all__ = ["FmmPerformanceSimulator", "SimulatedFmmRun", "SIMULATOR_VERSION"]

#: Bump on any change to the simulated execution times.  The constant is
#: folded into every :class:`~repro.datasets.store.DatasetSpec`
#: fingerprint, so stored datasets produced by an older simulator are
#: invalidated automatically instead of silently served stale.
SIMULATOR_VERSION = 1


@dataclass(frozen=True)
class SimulatedFmmRun:
    """Breakdown of one simulated FMM execution."""

    config: FmmConfig
    seconds: float
    phase_seconds: dict[str, float]
    noise_factor: float

    @property
    def dominant_phase(self) -> str:
        """Name of the costliest phase."""
        return max(self.phase_seconds, key=self.phase_seconds.get)


class FmmPerformanceSimulator:
    """Simulate "measured" execution times of ExaFMM-style runs.

    Parameters
    ----------
    machine:
        Node description; defaults to the Blue Waters XE6 node.
    noise:
        Relative magnitude of the deterministic configuration jitter.
    flops_per_p2p_interaction:
        Floating-point operations per particle-particle interaction
        (distance, rsqrt, accumulate — ~20 for a Laplace potential+force
        kernel).
    simd_width:
        Vector width in doubles, used for the small-leaf SIMD-efficiency
        penalty.
    random_state:
        Seed folded into the deterministic noise.
    """

    def __init__(self, machine: MachineSpec | None = None, *,
                 noise: float = 0.05,
                 flops_per_p2p_interaction: float = 11.0,
                 flops_per_m2l_coeff_pair: float = 30.0,
                 simd_width: int = 4,
                 random_state=0) -> None:
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self.machine = machine if machine is not None else blue_waters_xe6()
        self.noise = noise
        self.flops_per_p2p_interaction = flops_per_p2p_interaction
        self.flops_per_m2l_coeff_pair = flops_per_m2l_coeff_pair
        self.simd_width = simd_width
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, config: FmmConfig) -> SimulatedFmmRun:
        """Simulate one configuration and return the per-phase breakdown."""
        n = config.n_particles
        k = config.order
        q_req = config.particles_per_leaf
        tc = self.machine.tc
        beta = self.machine.beta_mem
        word = self.machine.word_bytes
        L = self.machine.line_elements
        Z = self.machine.hierarchy.last_level.size_elements(word)

        # Discrete full-tree geometry: the real code rounds the tree depth.
        depth = max(0, int(np.ceil(np.log(max(n / q_req, 1.0)) / np.log(8.0))))
        n_leaves = 8 ** depth
        q_eff = n / n_leaves                      # actual particles per leaf
        n_cells = (8 ** (depth + 1) - 1) // 7     # all levels of a full octree
        terms = k * (k + 1) * (k + 2) / 6.0       # Cartesian coefficients per cell

        # Boundary-corrected average list sizes (interior values 26 and 189).
        cells_per_dim = max(1.0, n_leaves ** (1.0 / 3.0))
        interior_frac = ((cells_per_dim - 2.0) / cells_per_dim) ** 3 if cells_per_dim > 2 else 0.0
        b_p2p = 26.0 * (0.55 + 0.45 * interior_frac)
        b_m2l = 189.0 * (0.45 + 0.55 * interior_frac)

        phases: dict[str, float] = {}

        # ---------------- tree construction + traversal ---------------- #
        phases["tree"] = 90.0 * n * max(1.0, np.log2(max(n_leaves, 2))) \
            / self.machine.clock_hz
        phases["traversal"] = 400.0 * n_leaves * 1.2 / self.machine.clock_hz

        # ---------------- P2M / M2M ---------------- #
        phases["p2m"] = n * terms * 6.0 * tc
        phases["m2m"] = max(0, n_cells - n_leaves) * 8 * terms ** 2 * 1.2 * tc

        # ---------------- M2L ---------------- #
        m2l_interactions = b_m2l * n_leaves * 1.15  # parent levels add ~15%
        flop_m2l = m2l_interactions * (terms ** 2) * self.flops_per_m2l_coeff_pair
        # Memory: multipole+local coefficients streamed per interaction; reuse
        # degrades once the per-level working set exceeds the LLC.
        coeff_bytes = terms * word
        working_set = n_leaves * coeff_bytes * 2.0
        reuse = 1.0 / (1.0 + working_set / (Z * word))
        mem_m2l = m2l_interactions * coeff_bytes * (1.0 - 0.7 * reuse) \
            + n_leaves * coeff_bytes * 2.0
        t_m2l = max(flop_m2l * tc, (mem_m2l / word) * beta) \
            + 0.2 * min(flop_m2l * tc, (mem_m2l / word) * beta)
        phases["m2l"] = t_m2l

        # ---------------- L2L / L2P ---------------- #
        phases["l2l"] = max(0, n_cells - n_leaves) * 8 * terms ** 2 * 1.2 * tc
        phases["l2p"] = n * terms * 6.0 * tc

        # ---------------- P2P ---------------- #
        pair_count = (b_p2p + 1.0) * q_eff * n
        # SIMD remainder penalty for small leaves.
        simd_eff = min(1.0, (q_eff / (q_eff + self.simd_width)) + 0.25)
        flop_p2p = pair_count * self.flops_per_p2p_interaction / simd_eff
        # Memory: 4 values per source particle (paper's factor), plus list reads.
        mem_p2p = (4.0 * n + b_p2p * n / max(q_eff, 1.0)) * word \
            + n * word * (L / (max(Z, 1.0) ** (1.0 / 3.0) * max(q_eff, 1.0) ** (2.0 / 3.0)))
        t_p2p = max(flop_p2p * tc, (mem_p2p / word) * beta) \
            + 0.2 * min(flop_p2p * tc, (mem_p2p / word) * beta)
        phases["p2p"] = t_p2p

        # ---------------- thread scaling, per phase ---------------- #
        scaled = {name: self._scale_phase(name, seconds, config.threads)
                  for name, seconds in phases.items()}

        total = sum(scaled.values())
        noise_factor = self._noise_factor(config)
        total *= noise_factor

        return SimulatedFmmRun(config=config, seconds=float(total),
                               phase_seconds={k_: float(v) for k_, v in scaled.items()},
                               noise_factor=float(noise_factor))

    def time(self, config: FmmConfig) -> float:
        """Simulated execution time in seconds for one configuration."""
        return self.run(config).seconds

    def times(self, configs) -> np.ndarray:
        """Simulated execution times for a sequence of configurations."""
        return np.array([self.time(cfg) for cfg in configs], dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    _PHASE_SCALING = {
        # (serial_fraction, saturation_threads, compute_fraction)
        "tree": (0.45, 2.5, 0.30),
        "traversal": (0.30, 3.0, 0.50),
        "p2m": (0.05, 4.0, 0.85),
        "m2m": (0.25, 4.0, 0.80),
        "m2l": (0.04, 5.0, 0.70),
        "l2l": (0.25, 4.0, 0.80),
        "l2p": (0.05, 4.0, 0.85),
        "p2p": (0.02, 8.0, 0.92),
    }

    def _scale_phase(self, name: str, seconds: float, threads: int) -> float:
        serial_fraction, saturation, compute_fraction = self._PHASE_SCALING[name]
        model = ThreadScalingModel(
            serial_fraction=serial_fraction,
            saturation_threads=saturation,
            compute_fraction=compute_fraction,
            cores_per_socket=self.machine.cores_per_socket,
            numa_penalty=1.12,
            overhead_s=4e-6,
        )
        return model.time(seconds, threads)

    def _noise_factor(self, config: FmmConfig) -> float:
        if self.noise == 0.0:
            return 1.0
        key = (f"{config.threads},{config.n_particles},{config.particles_per_leaf},"
               f"{config.order},{self.random_state}")
        digest = hashlib.sha256(key.encode()).digest()
        u1 = int.from_bytes(digest[:8], "little") / 2**64
        u2 = int.from_bytes(digest[8:16], "little") / 2**64
        z = np.sqrt(-2.0 * np.log(max(u1, 1e-12))) * np.cos(2.0 * np.pi * u2)
        return float(np.exp(self.noise * float(np.clip(z, -3.0, 3.0))))
