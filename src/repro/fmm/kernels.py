"""FMM kernels: P2P, P2M, M2M, M2L, L2L, L2P.

These are the six translation/evaluation operators of Figure 2 in the
paper.  All operate on NumPy arrays; the expensive ones (P2P and M2L, the
paper's dominant phases) are vectorized over particles respectively over
batches of interacting cell pairs.

Conventions (see :mod:`repro.fmm.expansions`):

* multipole coefficients ``M_n = sum_i w_i (x_i - zc)^n / n!``;
* local expansion ``phi(zt + dy) = sum_m L_m dy^m``;
* the Laplace kernel is ``K(y, x) = 1 / |y - x|`` with the self term
  excluded.
"""

from __future__ import annotations

import numpy as np

from repro.fmm.expansions import CartesianExpansion, taylor_coefficients

__all__ = [
    "laplace_potential",
    "p2p",
    "p2p_self",
    "p2m",
    "m2m",
    "m2l",
    "l2l",
    "l2p",
    "m2p",
]


def laplace_potential(targets: np.ndarray, sources: np.ndarray,
                      weights: np.ndarray) -> np.ndarray:
    """Direct Laplace potential of *sources* evaluated at *targets*.

    Coincident points (distance 0) contribute nothing, which both excludes
    the self interaction when the two sets overlap and keeps the kernel
    finite for duplicated points.
    """
    targets = np.atleast_2d(targets)
    sources = np.atleast_2d(sources)
    diff = targets[:, None, :] - sources[None, :, :]
    r2 = np.einsum("ijk,ijk->ij", diff, diff)
    with np.errstate(divide="ignore"):
        inv_r = np.where(r2 > 0.0, 1.0 / np.sqrt(np.maximum(r2, 1e-300)), 0.0)
    return inv_r @ weights


def p2p(target_positions: np.ndarray, source_positions: np.ndarray,
        source_weights: np.ndarray) -> np.ndarray:
    """Particle-to-particle kernel: near-field direct sum."""
    return laplace_potential(target_positions, source_positions, source_weights)


def p2p_self(positions: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """P2P of a cell with itself (self interaction excluded)."""
    return laplace_potential(positions, positions, weights)


def p2m(expansion: CartesianExpansion, positions: np.ndarray,
        weights: np.ndarray, center: np.ndarray) -> np.ndarray:
    """Particle-to-multipole: moments of a leaf cell about its center."""
    dx = np.atleast_2d(positions) - np.asarray(center).reshape(1, 3)
    mono = expansion.monomials(dx)                       # (npart, n_terms)
    return (mono.T @ np.asarray(weights)) / expansion.mset.factorials


def m2m(expansion: CartesianExpansion, child_multipole: np.ndarray,
        child_center: np.ndarray, parent_center: np.ndarray) -> np.ndarray:
    """Multipole-to-multipole: shift a child expansion to the parent center."""
    shift = np.asarray(child_center, dtype=float) - np.asarray(parent_center, dtype=float)
    return expansion.m2m_matrix(shift) @ child_multipole


def m2l(expansion: CartesianExpansion, source_multipoles: np.ndarray,
        source_centers: np.ndarray, target_centers: np.ndarray) -> np.ndarray:
    """Multipole-to-local for a batch of well-separated cell pairs.

    Parameters
    ----------
    source_multipoles:
        ``(n_terms, nbatch)`` multipole coefficients of each source cell.
    source_centers, target_centers:
        ``(nbatch, 3)`` centers of the source and target cell of each pair.

    Returns
    -------
    ndarray ``(n_terms, nbatch)`` of local-coefficient contributions.
    """
    R = np.atleast_2d(target_centers) - np.atleast_2d(source_centers)
    T = expansion.kernel_derivative_table(R)
    return expansion.m2l_apply(np.atleast_2d(source_multipoles), T)


def l2l(expansion: CartesianExpansion, parent_local: np.ndarray,
        parent_center: np.ndarray, child_center: np.ndarray) -> np.ndarray:
    """Local-to-local: shift a parent local expansion to a child center."""
    shift = np.asarray(child_center, dtype=float) - np.asarray(parent_center, dtype=float)
    return expansion.l2l_matrix(shift) @ parent_local


def l2p(expansion: CartesianExpansion, local: np.ndarray,
        center: np.ndarray, target_positions: np.ndarray) -> np.ndarray:
    """Local-to-particle: evaluate a local expansion at target particles."""
    dy = np.atleast_2d(target_positions) - np.asarray(center).reshape(1, 3)
    mono = expansion.monomials(dy)                       # (npart, n_terms)
    return mono @ local


def m2p(expansion: CartesianExpansion, multipole: np.ndarray,
        center: np.ndarray, target_positions: np.ndarray) -> np.ndarray:
    """Multipole-to-particle (treecode-style far-field evaluation).

    Not part of the standard FMM pipeline, but useful for validating the
    multipole expansions independently of the M2L/L2L/L2P chain:
    ``phi(y) = sum_n M_n n! (-1)^{|n|} T_n(y - center)``.
    """
    dy = np.atleast_2d(target_positions) - np.asarray(center).reshape(1, 3)
    T = taylor_coefficients(expansion.mset, dy)          # (n_terms, npart)
    signs = np.where(expansion.mset.degrees % 2 == 0, 1.0, -1.0)
    coeff = multipole * expansion.mset.factorials * signs
    return T.T @ coeff
