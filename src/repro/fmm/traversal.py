"""Tree traversal: interaction-list construction and dual tree traversal.

Two equivalent ways to decide which cell pairs interact via M2L and which
via P2P are provided:

* :func:`build_interaction_lists` — the classic FMM *U/V list* scheme for
  a single tree: the neighbor (U) list of each leaf feeds P2P, the
  well-separated (V) list of every cell feeds M2L.  For a uniform
  distribution the average list sizes are the paper's ``b_P2P = 26`` and
  ``b_M2L = 189`` (Section IV-B).
* :func:`dual_tree_traversal` — ExaFMM's strategy (Section III-B: "employs
  dual tree traversal which is an efficient strategy for finding the list
  of cell-cell interactions"): a simultaneous recursive descent of the
  target and source trees governed by a multipole acceptance criterion
  (MAC).

Both return an :class:`Interactions` container holding P2P leaf pairs and
M2L cell pairs; the solver accepts either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fmm.octree import Cell, Octree

__all__ = ["Interactions", "build_interaction_lists", "dual_tree_traversal"]


@dataclass
class Interactions:
    """Cell-pair interaction lists.

    Attributes
    ----------
    p2p_pairs:
        List of ``(target_cell_index, source_cell_index)`` pairs evaluated
        directly.  A cell interacting with itself appears as ``(i, i)``.
    m2l_pairs:
        List of ``(target_cell_index, source_cell_index)`` pairs evaluated
        through multipole-to-local translations.
    """

    p2p_pairs: list[tuple[int, int]] = field(default_factory=list)
    m2l_pairs: list[tuple[int, int]] = field(default_factory=list)

    @property
    def n_p2p(self) -> int:
        """Number of near-field pairs."""
        return len(self.p2p_pairs)

    @property
    def n_m2l(self) -> int:
        """Number of far-field (M2L) pairs."""
        return len(self.m2l_pairs)

    def average_p2p_neighbors(self, octree: Octree) -> float:
        """Average number of source cells in a leaf's near-field list (excluding itself)."""
        targets = {}
        for t, s in self.p2p_pairs:
            targets.setdefault(t, 0)
            if s != t:
                targets[t] += 1
        if not targets:
            return 0.0
        return float(np.mean(list(targets.values())))

    def average_m2l_sources(self) -> float:
        """Average number of source cells in a target's well-separated list."""
        targets = {}
        for t, _ in self.m2l_pairs:
            targets[t] = targets.get(t, 0) + 1
        if not targets:
            return 0.0
        return float(np.mean(list(targets.values())))


def _are_adjacent(a: Cell, b: Cell, *, tol: float = 1e-9) -> bool:
    """Whether two cells touch or overlap (share a face, edge, corner or volume)."""
    gap = np.abs(a.center - b.center) - (a.radius + b.radius)
    return bool(np.all(gap <= tol))


def _well_separated_mac(a: Cell, b: Cell, theta: float) -> bool:
    """Multipole acceptance criterion: ``(r_a + r_b) / d < theta``."""
    d = float(np.linalg.norm(a.center - b.center))
    if d <= 0.0:
        return False
    return (a.radius + b.radius) / d < theta


def build_interaction_lists(octree: Octree) -> Interactions:
    """Adjacency-based interaction lists (classic U/V-list behaviour).

    A simultaneous descent of the tree against itself where the acceptance
    criterion is geometric *non-adjacency* rather than a multipole
    acceptance criterion:

    * a pair of non-touching cells interacts through M2L,
    * a pair of touching leaves interacts through P2P,
    * otherwise the larger cell of the pair is split and the children are
      examined.

    For a uniform full octree this reproduces exactly the classic lists —
    M2L pairs are same-level children of a parent's neighbours that are not
    themselves neighbours (the paper's ``b_M2L = 189`` interior count) and
    P2P pairs are the ``b_P2P = 26`` touching leaves plus the cell itself —
    while remaining an exact partition of all particle pairs for adaptive
    trees as well.
    """
    interactions = Interactions()
    cells = octree.cells
    stack = [(0, 0)]
    while stack:
        ti, si = stack.pop()
        target, source = cells[ti], cells[si]
        if not _are_adjacent(target, source):
            interactions.m2l_pairs.append((ti, si))
            continue
        if target.is_leaf and source.is_leaf:
            interactions.p2p_pairs.append((ti, si))
            continue
        split_target = (not target.is_leaf) and (
            source.is_leaf or target.radius >= source.radius
        )
        if split_target:
            for child in target.children:
                stack.append((child, si))
        else:
            for child in source.children:
                stack.append((ti, child))
    return interactions


def dual_tree_traversal(octree: Octree, *, theta: float = 0.6,
                        source_octree: Octree | None = None) -> Interactions:
    """ExaFMM-style dual tree traversal with a multipole acceptance criterion.

    Parameters
    ----------
    octree:
        Target tree (and source tree unless ``source_octree`` is given).
    theta:
        Opening angle of the MAC; pairs with ``(r_t + r_s) / d < theta``
        are accepted for M2L, smaller ``theta`` means more direct work and
        higher accuracy.
    source_octree:
        Optional distinct source tree (for target != source evaluations).
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    src_tree = source_octree if source_octree is not None else octree
    interactions = Interactions()
    t_cells, s_cells = octree.cells, src_tree.cells

    stack = [(0, 0)]
    while stack:
        ti, si = stack.pop()
        target, source = t_cells[ti], s_cells[si]
        if _well_separated_mac(target, source, theta):
            interactions.m2l_pairs.append((ti, si))
            continue
        if target.is_leaf and source.is_leaf:
            interactions.p2p_pairs.append((ti, si))
            continue
        # Split the larger cell (ExaFMM heuristic); ties split the target.
        split_target = (not target.is_leaf) and (
            source.is_leaf or target.radius >= source.radius
        )
        if split_target:
            for child in target.children:
                stack.append((child, si))
        else:
            for child in source.children:
                stack.append((ti, child))
    return interactions
