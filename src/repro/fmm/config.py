"""FMM configuration vectors and the (t, N, q, k) configuration space.

Section III-B / V: "Our ExaFMM modeling vector ``X = (t, N, q, k)`` where
``t`` is the number of threads, ``N`` is the total number of particles,
``q`` is the number of particles per leaf cell, and ``k`` is the order of
expansion", with ``t = 1..16``, ``N in {4096, 8192, 16384}`` and
``k = 2..12`` in the evaluation.  The paper does not list the swept values
of ``q``; we default to powers of two from 8 to 512, which brackets the
crossover between P2P-dominated (large ``q``) and M2L-dominated (small
``q``) executions.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["FmmConfig", "FmmConfigSpace"]


@dataclass(frozen=True)
class FmmConfig:
    """One point of the ExaFMM tuning space."""

    threads: int
    n_particles: int
    particles_per_leaf: int
    order: int

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.n_particles < 1:
            raise ValueError(f"n_particles must be >= 1, got {self.n_particles}")
        if self.particles_per_leaf < 1:
            raise ValueError(
                f"particles_per_leaf must be >= 1, got {self.particles_per_leaf}"
            )
        if self.order < 1:
            raise ValueError(f"order must be >= 1, got {self.order}")

    # ------------------------------------------------------------------ #
    @property
    def n_leaf_cells(self) -> float:
        """Approximate number of leaf cells ``N / q`` (full-tree assumption)."""
        return self.n_particles / self.particles_per_leaf

    @property
    def tree_depth(self) -> int:
        """Depth of the (full) octree needed to reach ``q`` particles per leaf."""
        leaves_needed = max(1.0, self.n_leaf_cells)
        return int(np.ceil(np.log(leaves_needed) / np.log(8.0))) if leaves_needed > 1 else 0

    def to_dict(self) -> dict:
        """Plain-dict view of the configuration."""
        return {
            "threads": self.threads,
            "n_particles": self.n_particles,
            "particles_per_leaf": self.particles_per_leaf,
            "order": self.order,
        }

    def feature_values(self, feature_names: Sequence[str]) -> list[float]:
        """Extract numeric values of *feature_names* in order."""
        mapping = self.to_dict()
        try:
            return [float(mapping[name]) for name in feature_names]
        except KeyError as exc:
            raise KeyError(
                f"unknown FMM feature {exc.args[0]!r}; available: {sorted(mapping)}"
            ) from None


@dataclass
class FmmConfigSpace:
    """Cartesian product of thread counts, problem sizes, leaf sizes and orders."""

    thread_counts: Sequence[int] = tuple(range(1, 17))
    particle_counts: Sequence[int] = (4096, 8192, 16384)
    leaf_sizes: Sequence[int] = (8, 16, 32, 64, 128, 256, 512)
    orders: Sequence[int] = tuple(range(2, 13))
    feature_names: Sequence[str] = ("threads", "n_particles", "particles_per_leaf", "order")

    def __post_init__(self) -> None:
        self.thread_counts = [int(v) for v in self.thread_counts]
        self.particle_counts = [int(v) for v in self.particle_counts]
        self.leaf_sizes = [int(v) for v in self.leaf_sizes]
        self.orders = [int(v) for v in self.orders]
        self.feature_names = list(self.feature_names)
        for name, values in (
            ("thread_counts", self.thread_counts),
            ("particle_counts", self.particle_counts),
            ("leaf_sizes", self.leaf_sizes),
            ("orders", self.orders),
        ):
            if not values:
                raise ValueError(f"{name} must be non-empty")

    def __iter__(self) -> Iterator[FmmConfig]:
        for t, n, q, k in itertools.product(
            self.thread_counts, self.particle_counts, self.leaf_sizes, self.orders
        ):
            if q > n:
                continue
            yield FmmConfig(threads=t, n_particles=n, particles_per_leaf=q, order=k)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def configs(self) -> list[FmmConfig]:
        """Materialize the full configuration list."""
        return list(self)

    def to_feature_matrix(self, configs=None) -> np.ndarray:
        """Convert configurations to a numeric feature matrix (column order = feature_names)."""
        configs = self.configs() if configs is None else list(configs)
        return np.array(
            [cfg.feature_values(self.feature_names) for cfg in configs], dtype=np.float64
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def paper_space(cls) -> FmmConfigSpace:
        """The Figure 3B / Figure 8 space: t=1..16, N in {4096, 8192, 16384}, k=2..12."""
        return cls()

    @classmethod
    def small_space(cls) -> FmmConfigSpace:
        """A reduced space for tests and quick examples."""
        return cls(thread_counts=(1, 2, 4), particle_counts=(1024, 2048),
                   leaf_sizes=(16, 64), orders=(2, 4, 6))
