"""Particle sets and source distributions.

The paper evaluates ExaFMM with "the Laplace kernel in three dimensions
with random distribution of particles in a cube" (Section III-B); the
analytical models additionally assume a nearly uniform distribution so the
octree is essentially full.  :func:`random_cube` generates exactly that
workload; :func:`random_sphere` and :func:`plummer` provide non-uniform
distributions used by the adaptivity tests and the extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["ParticleSet", "random_cube", "random_sphere", "plummer"]


@dataclass
class ParticleSet:
    """Positions and weights (charges/masses) of N particles.

    Attributes
    ----------
    positions:
        ``(N, 3)`` float array.
    weights:
        ``(N,)`` float array of source strengths ``w_i``.
    """

    positions: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.weights = np.ascontiguousarray(self.weights, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(
                f"positions must have shape (N, 3), got {self.positions.shape}"
            )
        if self.weights.shape != (self.positions.shape[0],):
            raise ValueError(
                f"weights must have shape (N,), got {self.weights.shape} "
                f"for N={self.positions.shape[0]}"
            )
        if self.positions.shape[0] == 0:
            raise ValueError("ParticleSet must contain at least one particle")
        if not np.all(np.isfinite(self.positions)) or not np.all(np.isfinite(self.weights)):
            raise ValueError("positions and weights must be finite")

    @property
    def n(self) -> int:
        """Number of particles."""
        return self.positions.shape[0]

    def bounding_cube(self, pad: float = 1e-6) -> tuple[np.ndarray, float]:
        """Center and half-width of the smallest axis-aligned cube containing all particles."""
        lo = self.positions.min(axis=0)
        hi = self.positions.max(axis=0)
        center = 0.5 * (lo + hi)
        radius = 0.5 * float(np.max(hi - lo))
        return center, radius * (1.0 + pad) + pad

    def subset(self, indices: np.ndarray) -> ParticleSet:
        """Particle subset (copies data)."""
        return ParticleSet(self.positions[indices].copy(), self.weights[indices].copy())

    def total_weight(self) -> float:
        """Sum of all source strengths."""
        return float(self.weights.sum())


def random_cube(n: int, *, side: float = 1.0, random_state=None,
                weights: str = "uniform") -> ParticleSet:
    """Uniform random particles in a cube of side *side* centred at the origin.

    ``weights`` is ``"uniform"`` (all 1/N, the ExaFMM default benchmark) or
    ``"random"`` (uniform in [0, 1)).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = check_random_state(random_state)
    pos = rng.uniform(-side / 2.0, side / 2.0, size=(n, 3))
    w = _make_weights(n, weights, rng)
    return ParticleSet(pos, w)


def random_sphere(n: int, *, radius: float = 0.5, random_state=None,
                  weights: str = "uniform") -> ParticleSet:
    """Uniform random particles inside a ball (non-uniform octree occupancy)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = check_random_state(random_state)
    # Rejection-free: direction * radius * cbrt(u).
    direction = rng.normal(size=(n, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    r = radius * np.cbrt(rng.uniform(0.0, 1.0, size=n))
    pos = direction * r[:, None]
    w = _make_weights(n, weights, rng)
    return ParticleSet(pos, w)


def plummer(n: int, *, scale: float = 0.1, clip_radius: float = 2.0,
            random_state=None, weights: str = "uniform") -> ParticleSet:
    """Plummer-model distribution (strongly clustered, stresses adaptivity)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = check_random_state(random_state)
    positions = np.empty((n, 3))
    count = 0
    while count < n:
        m = rng.uniform(1e-6, 1.0 - 1e-6, size=n)
        r = scale / np.sqrt(m ** (-2.0 / 3.0) - 1.0)
        keep = r < clip_radius
        r = r[keep]
        direction = rng.normal(size=(len(r), 3))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        chunk = direction * r[:, None]
        take = min(len(chunk), n - count)
        positions[count:count + take] = chunk[:take]
        count += take
    w = _make_weights(n, weights, rng)
    return ParticleSet(positions, w)


def _make_weights(n: int, kind: str, rng: np.random.Generator) -> np.ndarray:
    if kind == "uniform":
        return np.full(n, 1.0 / n)
    if kind == "random":
        return rng.uniform(0.0, 1.0, size=n)
    raise ValueError(f"weights must be 'uniform' or 'random', got {kind!r}")
