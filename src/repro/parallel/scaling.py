"""Analytic thread-scaling models.

Shared-memory codes rarely scale linearly.  Two effects dominate for the
applications in the paper:

* **Serial fraction / synchronization** -- captured by Amdahl's law.
* **Memory-bandwidth saturation** -- a memory-bound kernel (the 7-point
  stencil, FMM P2P at small ``q``) stops scaling once the active threads
  saturate the socket's sustained bandwidth; adding threads beyond that
  point only adds overhead.

:class:`ThreadScalingModel` combines both with a NUMA penalty for crossing
the socket boundary and a small per-thread overhead, and is used by both
performance simulators to produce the "measured" multi-threaded times.
The analytical models of Section IV intentionally do *not* use it -- the
paper's Fig. 7 experiment relies on the analytical model being serial-only.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = [
    "amdahl_speedup",
    "gustafson_speedup",
    "bandwidth_saturation_speedup",
    "ThreadScalingModel",
]


def amdahl_speedup(threads: int, serial_fraction: float) -> float:
    """Amdahl's-law speedup for *threads* threads.

    Parameters
    ----------
    threads:
        Number of threads (>= 1).
    serial_fraction:
        Fraction of the work that cannot be parallelized, in [0, 1].
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial_fraction must be in [0, 1], got {serial_fraction}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / threads)


def gustafson_speedup(threads: int, serial_fraction: float) -> float:
    """Gustafson's-law (scaled) speedup for *threads* threads."""
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial_fraction must be in [0, 1], got {serial_fraction}")
    return threads - serial_fraction * (threads - 1)


def bandwidth_saturation_speedup(threads: int, saturation_threads: float) -> float:
    """Speedup of a purely bandwidth-bound kernel.

    Scaling is linear until ``saturation_threads`` concurrent threads
    saturate the socket bandwidth, then flat.  A smooth (harmonic) blend is
    used near the knee so that the response surface is continuous, which
    matches observed STREAM-like behaviour better than a hard clamp.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if saturation_threads <= 0:
        raise ValueError("saturation_threads must be > 0")
    # Smooth-min of `threads` and `saturation_threads` keeps the response
    # surface continuous at the saturation knee.
    return _smooth_min(float(threads), float(saturation_threads))


def _smooth_min(a: float, b: float, sharpness: float = 4.0) -> float:
    """Smooth approximation of ``min(a, b)`` (p-norm based)."""
    p = sharpness
    return (a ** -p + b ** -p) ** (-1.0 / p)


@dataclass(frozen=True)
class ThreadScalingModel:
    """Composite thread-scaling model.

    The time with ``t`` threads is

    ``T(t) = T(1) * [ compute_fraction / S_amdahl(t)
                      + (1 - compute_fraction) / S_bw(t) ]
             * numa_penalty(t) + t * overhead_s``

    where ``S_amdahl`` applies to the compute-bound portion of the kernel
    and ``S_bw`` (bandwidth saturation) to the memory-bound portion.

    Parameters
    ----------
    serial_fraction:
        Amdahl serial fraction of the compute-bound portion.
    saturation_threads:
        Threads needed to saturate one socket's memory bandwidth.
    compute_fraction:
        Fraction of the single-thread runtime that is compute bound
        (0 = purely memory bound, 1 = purely compute bound).
    cores_per_socket:
        Crossing this thread count incurs the NUMA penalty.
    numa_penalty:
        Multiplicative slowdown applied (smoothly ramped) once threads span
        both sockets.  1.0 disables the effect.
    overhead_s:
        Per-thread management overhead (fork/join, barrier) in seconds.
    """

    serial_fraction: float = 0.02
    saturation_threads: float = 4.0
    compute_fraction: float = 0.2
    cores_per_socket: int = 8
    numa_penalty: float = 1.15
    overhead_s: float = 5e-6

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        if not 0.0 <= self.compute_fraction <= 1.0:
            raise ValueError("compute_fraction must be in [0, 1]")
        if self.saturation_threads <= 0:
            raise ValueError("saturation_threads must be > 0")
        if self.cores_per_socket < 1:
            raise ValueError("cores_per_socket must be >= 1")
        if self.numa_penalty < 1.0:
            raise ValueError("numa_penalty must be >= 1.0")
        if self.overhead_s < 0:
            raise ValueError("overhead_s must be >= 0")

    def speedup(self, threads: int) -> float:
        """Effective speedup (ignoring the additive overhead term).

        Normalized so that ``speedup(1) == 1`` exactly (the smooth
        bandwidth-saturation blend would otherwise introduce a sub-percent
        offset at one thread).
        """
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        return self._raw_speedup(threads) / self._raw_speedup(1)

    def _raw_speedup(self, threads: int) -> float:
        s_comp = amdahl_speedup(threads, self.serial_fraction)
        s_bw = bandwidth_saturation_speedup(threads, self.saturation_threads)
        mixed_inverse = (self.compute_fraction / s_comp
                         + (1.0 - self.compute_fraction) / s_bw)
        penalty = self._numa_factor(threads)
        return 1.0 / (mixed_inverse * penalty)

    def time(self, single_thread_time: float, threads: int) -> float:
        """Multi-threaded time for a kernel taking *single_thread_time* serially."""
        if single_thread_time < 0:
            raise ValueError("single_thread_time must be >= 0")
        return single_thread_time / self.speedup(threads) + threads * self.overhead_s

    def _numa_factor(self, threads: int) -> float:
        if threads <= self.cores_per_socket or self.numa_penalty == 1.0:
            return 1.0
        # Ramp the penalty in over the second socket's cores.
        extra = threads - self.cores_per_socket
        span = max(1, self.cores_per_socket)
        frac = min(1.0, extra / span)
        return 1.0 + (self.numa_penalty - 1.0) * frac
