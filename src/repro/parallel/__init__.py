"""Parallelism substrate.

The paper's feature vectors include the number of OpenMP threads ``t``;
its analytical models, however, are single-core models (Section VII-A,
Fig. 7 explicitly exploits this).  This package provides:

* :mod:`repro.parallel.scaling` -- analytic thread-scaling laws
  (Amdahl's law, bandwidth-saturation scaling, NUMA penalties) that the
  performance simulators use to turn a single-core time into a
  multi-threaded time,
* :mod:`repro.parallel.threadpool` -- a simple chunked parallel map used by
  the executable engines and the ensemble learners,
* :mod:`repro.parallel.communicator` -- a tiny in-process "communicator"
  abstraction with the collective operations needed by the distributed-FMM
  partitioning example (an MPI stand-in that requires no processes).
"""

from repro.parallel.communicator import SimCommunicator
from repro.parallel.scaling import (
    ThreadScalingModel,
    amdahl_speedup,
    bandwidth_saturation_speedup,
    gustafson_speedup,
)
from repro.parallel.threadpool import chunk_indices, parallel_map

__all__ = [
    "amdahl_speedup",
    "gustafson_speedup",
    "bandwidth_saturation_speedup",
    "ThreadScalingModel",
    "parallel_map",
    "chunk_indices",
    "SimCommunicator",
]
