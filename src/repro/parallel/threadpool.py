"""Chunked parallel map.

Python threads cannot speed up pure-Python loops (the GIL), but the
executable engines in :mod:`repro.stencil` and :mod:`repro.fmm` spend their
time inside NumPy kernels which release the GIL, so a thread pool gives
real concurrency there.  ``parallel_map`` degrades gracefully to a serial
loop when ``n_jobs == 1`` (the default), which also keeps unit tests
deterministic and cheap.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

__all__ = ["parallel_map", "chunk_indices", "weighted_chunk_indices"]


def chunk_indices(n_items: int, n_chunks: int) -> list[range]:
    """Split ``range(n_items)`` into at most *n_chunks* contiguous ranges.

    The chunks are balanced: their lengths differ by at most one.  Empty
    chunks are never returned.
    """
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n_chunks = min(n_chunks, n_items) if n_items > 0 else 0
    chunks: list[range] = []
    start = 0
    for i in range(n_chunks):
        size = n_items // n_chunks + (1 if i < n_items % n_chunks else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def weighted_chunk_indices(weights: Sequence[float],
                           n_chunks: int) -> list[list[int]]:
    """Partition ``range(len(weights))`` into weight-balanced index chunks.

    Greedy LPT (longest-processing-time-first): indices are assigned in
    decreasing weight order, each to the currently lightest chunk — the
    classic 4/3-optimal makespan heuristic.  Heavy items are isolated
    early and light ones fused together, so with skewed weights the
    chunks carry comparable total weight where :func:`chunk_indices`
    would put the one expensive item and several cheap ones in the same
    contiguous slice.

    Ties break deterministically (original order among equal weights,
    lowest chunk index among equal loads) and each returned chunk is
    sorted ascending, so callers that care about intra-chunk ordering
    see the original item order.  At most *n_chunks* chunks are
    returned; empty chunks never are.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n_items = len(weights)
    n_chunks = min(n_chunks, n_items)
    if n_chunks == 0:
        return []
    order = sorted(range(n_items), key=lambda i: (-weights[i], i))
    loads = [0.0] * n_chunks
    members: list[list[int]] = [[] for _ in range(n_chunks)]
    for i in order:
        target = min(range(n_chunks), key=lambda c: (loads[c], c))
        loads[target] += weights[i]
        members[target].append(i)
    return [sorted(chunk) for chunk in members if chunk]


def parallel_map(func: Callable, items: Sequence, *, n_jobs: int = 1,
                 chunked: bool = False) -> list:
    """Apply *func* to every item, optionally with a thread pool.

    Parameters
    ----------
    func:
        Callable applied to each element of *items*.
    items:
        Sequence of work items.
    n_jobs:
        Number of worker threads.  ``1`` runs serially; ``-1`` uses as many
        workers as items (capped at 32).
    chunked:
        Submit one balanced contiguous chunk of items per worker instead of
        one task per item, amortizing executor dispatch overhead over many
        small work items (the default fitting mode of the tree ensembles).

    Returns
    -------
    list
        Results in the same order as *items*.
    """
    items = list(items)
    if n_jobs == 0 or n_jobs < -1:
        raise ValueError(f"n_jobs must be -1 or >= 1, got {n_jobs}")
    if n_jobs == -1:
        n_jobs = min(32, max(1, len(items)))
    if n_jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    if chunked:
        chunks = chunk_indices(len(items), n_jobs)

        def _run_chunk(chunk: range) -> list:
            return [func(items[i]) for i in chunk]

        with ThreadPoolExecutor(max_workers=n_jobs) as pool:
            nested = list(pool.map(_run_chunk, chunks))
        return [result for chunk_results in nested for result in chunk_results]
    with ThreadPoolExecutor(max_workers=n_jobs) as pool:
        return list(pool.map(func, items))
