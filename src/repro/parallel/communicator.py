"""A tiny in-process stand-in for an MPI communicator.

ExaFMM supports hybrid MPI/OpenMP runs; the paper's evaluation only varies
the thread count, but the FMM partitioning example
(``examples/fmm_parameter_tuning.py``) demonstrates domain decomposition
across "ranks".  :class:`SimCommunicator` provides the handful of
collectives that example needs (bcast, scatter, gather, allreduce,
alltoall) executed over a list of per-rank payloads in a single process,
so no ``mpiexec`` launcher or mpi4py installation is required.

The interface deliberately mirrors mpi4py's lowercase, pickle-based
methods (``bcast``/``scatter``/``gather``/...), so swapping a real
``MPI.COMM_WORLD`` in is a one-line change for users who have MPI.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

__all__ = ["SimCommunicator"]


class SimCommunicator:
    """Simulated communicator over ``size`` virtual ranks.

    The communicator stores one payload slot per rank.  Collective
    operations take *per-rank input lists* and return *per-rank output
    lists*, i.e. they evaluate what every rank would see.  This turns SPMD
    snippets into ordinary loops while keeping the data movement explicit,
    which is all the examples and tests need.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self._size = int(size)
        self._bytes_sent = 0
        self._n_messages = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of virtual ranks."""
        return self._size

    @property
    def bytes_sent(self) -> int:
        """Total payload volume moved by collectives so far (bytes)."""
        return self._bytes_sent

    @property
    def n_messages(self) -> int:
        """Number of point-to-point messages implied by collectives so far."""
        return self._n_messages

    def reset_counters(self) -> None:
        """Zero the traffic counters."""
        self._bytes_sent = 0
        self._n_messages = 0

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def bcast(self, obj: Any, root: int = 0) -> list[Any]:
        """Broadcast *obj* from *root*: every rank receives it."""
        self._check_rank(root)
        self._account(obj, self._size - 1)
        return [obj for _ in range(self._size)]

    def scatter(self, chunks: Sequence[Any], root: int = 0) -> list[Any]:
        """Scatter one chunk to each rank from *root*."""
        self._check_rank(root)
        chunks = list(chunks)
        if len(chunks) != self._size:
            raise ValueError(
                f"scatter needs exactly {self._size} chunks, got {len(chunks)}"
            )
        for i, c in enumerate(chunks):
            if i != root:
                self._account(c, 1)
        return chunks

    def gather(self, per_rank_values: Sequence[Any], root: int = 0) -> list[Any]:
        """Gather one value from every rank onto *root*.

        Returns the list the root rank would receive.
        """
        self._check_rank(root)
        values = list(per_rank_values)
        if len(values) != self._size:
            raise ValueError(
                f"gather needs exactly {self._size} values, got {len(values)}"
            )
        for i, v in enumerate(values):
            if i != root:
                self._account(v, 1)
        return values

    def allgather(self, per_rank_values: Sequence[Any]) -> list[list[Any]]:
        """All ranks receive the full list of per-rank values."""
        values = list(per_rank_values)
        if len(values) != self._size:
            raise ValueError(
                f"allgather needs exactly {self._size} values, got {len(values)}"
            )
        for v in values:
            self._account(v, self._size - 1)
        return [list(values) for _ in range(self._size)]

    def allreduce(self, per_rank_values: Sequence[Any],
                  op: Callable[[Any, Any], Any] | None = None) -> list[Any]:
        """Reduce per-rank values with *op* (default: sum) and give all ranks the result."""
        values = list(per_rank_values)
        if len(values) != self._size:
            raise ValueError(
                f"allreduce needs exactly {self._size} values, got {len(values)}"
            )
        if op is None:
            result = values[0]
            for v in values[1:]:
                result = result + v
        else:
            result = values[0]
            for v in values[1:]:
                result = op(result, v)
        for v in values:
            self._account(v, 1)
        return [result for _ in range(self._size)]

    def alltoall(self, send_matrix: Sequence[Sequence[Any]]) -> list[list[Any]]:
        """Personalized all-to-all: ``send_matrix[i][j]`` goes from rank i to rank j."""
        matrix = [list(row) for row in send_matrix]
        if len(matrix) != self._size or any(len(row) != self._size for row in matrix):
            raise ValueError(
                f"alltoall needs a {self._size}x{self._size} matrix of payloads"
            )
        for i, row in enumerate(matrix):
            for j, payload in enumerate(row):
                if i != j:
                    self._account(payload, 1)
        return [[matrix[i][j] for i in range(self._size)] for j in range(self._size)]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._size:
            raise ValueError(f"rank {rank} out of range [0, {self._size})")

    def _account(self, payload: Any, n_receivers: int) -> None:
        self._n_messages += n_receivers
        self._bytes_sent += self._payload_bytes(payload) * n_receivers

    @staticmethod
    def _payload_bytes(payload: Any) -> int:
        if isinstance(payload, np.ndarray):
            return payload.nbytes
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        if isinstance(payload, (int, float, np.floating, np.integer)):
            return 8
        if isinstance(payload, (list, tuple)):
            return sum(SimCommunicator._payload_bytes(p) for p in payload)
        if isinstance(payload, dict):
            return sum(SimCommunicator._payload_bytes(v) for v in payload.values())
        return 64  # rough default for other Python objects
