"""Thread-safe metrics instruments with mergeable snapshots.

The design is a deliberately small subset of the Prometheus client
model, built on two primitives:

* an *instrument* (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) owned by a :class:`MetricsRegistry`, holding one
  sample per label-value combination under the registry lock; and
* a :class:`MetricsSnapshot` — a picklable, point-in-time copy of a
  registry that **merges**: counters and histogram buckets sum, gauges
  sum across disjoint processes.  Merge is associative and commutative
  (property-tested), which is what lets pool workers and fleet workers
  ship their registries to the parent inside ``Results`` / ``Heartbeat``
  frames and lets the coordinator fold any number of worker snapshots
  into one fleet-wide view in any order.

Registries compose the same way: a component creates its own private
registry *attached* (by weak reference) to the process-wide
:data:`REGISTRY`, so ``REGISTRY.snapshot()`` is the union of every live
component in the process — the single payload behind every ``/metrics``
endpoint — while each component's ``.stats`` compatibility view reads
only its own instruments.

Naming follows Prometheus conventions (see ``docs/observability.md``):
``repro_<component>_<what>[_total|_seconds]``, label values drawn from
small closed sets only.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "get_registry",
    "parse_prometheus",
    "render_prometheus",
]

#: Default histogram bucket upper bounds (seconds-flavoured, matching
#: the Prometheus client defaults); a ``+Inf`` bucket is implicit.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0)


class _Instrument:
    """Shared machinery of one named metric family (samples per label set).

    Not constructed directly — ask a :class:`MetricsRegistry` for a
    :meth:`~MetricsRegistry.counter`, :meth:`~MetricsRegistry.gauge` or
    :meth:`~MetricsRegistry.histogram`.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...],
                 lock: threading.RLock) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._samples: dict[tuple, object] = {}
        # Prometheus convention: an unlabeled counter/gauge exposes 0
        # from creation, so scrapers see the series before its first
        # increment.  Labeled children (and histogram bucket dicts)
        # still materialize on first use.
        if not self.labelnames and self.kind in ("counter", "gauge"):
            self._samples[()] = 0.0

    def labels(self, **labels):
        """The child sample for one combination of label values."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}")
        key = tuple(str(labels[n]) for n in self.labelnames)
        return self._child(key)

    def _child(self, key: tuple):
        raise NotImplementedError

    def _default_key(self) -> tuple:
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled {self.labelnames}; use .labels(...)")
        return ()


class Counter(_Instrument):
    """A monotonically increasing sum (``*_total`` by convention)."""

    kind = "counter"

    def _child(self, key: tuple) -> _CounterChild:
        # Materialize the sample at zero so a created-but-never-fired
        # counter is scrapeable: "0 auth failures" must be a visible
        # fact on /metrics, not indistinguishable from "no counter".
        with self._lock:
            self._samples.setdefault(key, 0.0)
        return _CounterChild(self, key)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the (unlabeled) counter by *amount* (must be >= 0)."""
        self._child(self._default_key()).inc(amount)

    @property
    def value(self) -> float:
        """Current value of the (unlabeled) counter."""
        with self._lock:
            return self._samples.get(self._default_key(), 0.0)


@dataclass(frozen=True)
class _CounterChild:
    """One labeled sample of a :class:`Counter`."""

    parent: Counter
    key: tuple

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (>= 0) to this sample under the registry lock."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self.parent._lock:
            samples = self.parent._samples
            samples[self.key] = samples.get(self.key, 0.0) + amount

    @property
    def value(self) -> float:
        """Current value of this sample."""
        with self.parent._lock:
            return self.parent._samples.get(self.key, 0.0)


class Gauge(_Instrument):
    """A value that can go up and down (queue depths, worker counts)."""

    kind = "gauge"

    def _child(self, key: tuple) -> _GaugeChild:
        return _GaugeChild(self, key)

    def set(self, value: float) -> None:
        """Set the (unlabeled) gauge to *value*."""
        self._child(self._default_key()).set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* to the (unlabeled) gauge."""
        self._child(self._default_key()).inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount* from the (unlabeled) gauge."""
        self._child(self._default_key()).inc(-amount)

    @property
    def value(self) -> float:
        """Current value of the (unlabeled) gauge."""
        with self._lock:
            return self._samples.get(self._default_key(), 0.0)


@dataclass(frozen=True)
class _GaugeChild:
    """One labeled sample of a :class:`Gauge`."""

    parent: Gauge
    key: tuple

    def set(self, value: float) -> None:
        """Set this sample to *value* under the registry lock."""
        with self.parent._lock:
            self.parent._samples[self.key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* to this sample under the registry lock."""
        with self.parent._lock:
            samples = self.parent._samples
            samples[self.key] = samples.get(self.key, 0.0) + amount

    @property
    def value(self) -> float:
        """Current value of this sample."""
        with self.parent._lock:
            return self.parent._samples.get(self.key, 0.0)


class Histogram(_Instrument):
    """A distribution: per-bucket counts plus ``_sum`` and ``_count``.

    Bucket semantics follow Prometheus: an observation ``v`` lands in
    the first bucket whose upper bound satisfies ``v <= le`` (rendered
    cumulatively, with an implicit ``+Inf`` bucket).
    """

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames, lock)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be sorted and non-empty: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)

    def _child(self, key: tuple) -> _HistogramChild:
        return _HistogramChild(self, key)

    def observe(self, value: float) -> None:
        """Record one observation on the (unlabeled) histogram."""
        self._child(self._default_key()).observe(value)


@dataclass(frozen=True)
class _HistogramChild:
    """One labeled sample of a :class:`Histogram`."""

    parent: Histogram
    key: tuple

    def observe(self, value: float) -> None:
        """Record one observation under the registry lock."""
        value = float(value)
        with self.parent._lock:
            sample = self.parent._samples.get(self.key)
            if sample is None:
                sample = {"counts": [0] * (len(self.parent.buckets) + 1),
                          "sum": 0.0, "count": 0}
                self.parent._samples[self.key] = sample
            # First bucket with value <= upper bound; past the last edge
            # the observation lands in the implicit +Inf bucket.
            sample["counts"][bisect.bisect_left(self.parent.buckets, value)] += 1
            sample["sum"] += value
            sample["count"] += 1


# --------------------------------------------------------------------------- #
# Snapshots
# --------------------------------------------------------------------------- #
def _merge_value(kind: str, a, b):
    if kind == "histogram":
        if tuple(a["buckets"]) != tuple(b["buckets"]):
            raise ValueError(
                f"cannot merge histograms with different bucket edges: "
                f"{a['buckets']} vs {b['buckets']}")
        return {
            "buckets": tuple(a["buckets"]),
            "counts": tuple(x + y for x, y in
                            zip(a["counts"], b["counts"], strict=True)),
            "sum": a["sum"] + b["sum"],
            "count": a["count"] + b["count"],
        }
    # Counters and gauges both sum: the snapshots being merged come from
    # disjoint processes/components, so a summed gauge reads as the
    # fleet-wide total of a point-in-time quantity.
    return a + b


@dataclass(frozen=True)
class MetricsSnapshot:
    """A picklable point-in-time copy of one or more registries.

    ``data`` maps metric name to ``{"kind", "help", "labelnames",
    "samples"}`` where ``samples`` maps label-value tuples to plain
    numbers (counter/gauge) or bucket dicts (histogram).  Snapshots are
    plain data — safe to ship inside protocol frames — and **merge**
    associatively, so any tree of per-worker snapshots folds to the
    same fleet-wide view.
    """

    data: dict = field(default_factory=dict)

    def merge(self, other: MetricsSnapshot) -> MetricsSnapshot:
        """The element-wise sum of two snapshots (associative, commutative)."""
        merged = {name: {"kind": meta["kind"], "help": meta["help"],
                         "labelnames": tuple(meta["labelnames"]),
                         "samples": dict(meta["samples"])}
                  for name, meta in self.data.items()}
        for name, meta in other.data.items():
            mine = merged.get(name)
            if mine is None:
                merged[name] = {"kind": meta["kind"], "help": meta["help"],
                                "labelnames": tuple(meta["labelnames"]),
                                "samples": dict(meta["samples"])}
                continue
            if mine["kind"] != meta["kind"]:
                raise ValueError(
                    f"metric {name!r} has conflicting kinds: "
                    f"{mine['kind']} vs {meta['kind']}")
            if tuple(mine["labelnames"]) != tuple(meta["labelnames"]):
                raise ValueError(
                    f"metric {name!r} has conflicting labelnames: "
                    f"{mine['labelnames']} vs {meta['labelnames']}")
            for key, value in meta["samples"].items():
                if key in mine["samples"]:
                    mine["samples"][key] = _merge_value(
                        meta["kind"], mine["samples"][key], value)
                else:
                    mine["samples"][key] = value
        return MetricsSnapshot(merged)

    def with_labels(self, **extra: str) -> MetricsSnapshot:
        """A copy with *extra* labels stamped onto every sample.

        The coordinator uses this to expose per-worker series
        (``worker="<id>"``) next to the fleet aggregate
        (``worker="fleet"``) from the same shipped snapshots.
        """
        out: dict = {}
        names = tuple(sorted(extra))
        values = tuple(str(extra[n]) for n in names)
        for name, meta in self.data.items():
            clash = set(names) & set(meta["labelnames"])
            if clash:
                raise ValueError(f"metric {name!r} already has labels {clash}")
            out[name] = {
                "kind": meta["kind"], "help": meta["help"],
                "labelnames": tuple(meta["labelnames"]) + names,
                "samples": {key + values: value
                            for key, value in meta["samples"].items()},
            }
        return MetricsSnapshot(out)

    def value(self, name: str, **labels) -> float:
        """The sample value of *name* at *labels* (0 when absent)."""
        meta = self.data.get(name)
        if meta is None:
            return 0.0
        key = tuple(str(labels[n]) for n in meta["labelnames"])
        value = meta["samples"].get(key, 0.0)
        if meta["kind"] == "histogram" and isinstance(value, dict):
            return value["count"]
        return value


class MetricsRegistry:
    """A thread-safe set of instruments plus weakly-attached sub-registries.

    Parameters
    ----------
    attach_to:
        Optional parent registry (normally the process-wide
        :data:`REGISTRY`): the parent's :meth:`snapshot` then includes
        this registry's instruments for as long as the component owning
        it is alive.  Attachment is by weak reference, so garbage
        collection detaches automatically.
    """

    def __init__(self, *, attach_to: MetricsRegistry | None = None) -> None:
        self._lock = threading.RLock()
        self._instruments: dict[str, _Instrument] = {}
        self._attached: list = []
        if attach_to is not None:
            attach_to.attach(self)

    # ------------------------------------------------------------------ #
    def _instrument(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or \
                        existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}")
                return existing
            instrument = cls(name, help, tuple(labelnames), self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        """Get or create the :class:`Counter` called *name*."""
        return self._instrument(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        """Get or create the :class:`Gauge` called *name*."""
        return self._instrument(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the :class:`Histogram` called *name*."""
        return self._instrument(Histogram, name, help, labelnames,
                                buckets=buckets)

    # ------------------------------------------------------------------ #
    def attach(self, registry: MetricsRegistry) -> None:
        """Include *registry* (weakly) in this registry's snapshots."""
        with self._lock:
            self._attached.append(weakref.ref(registry))

    def snapshot(self) -> MetricsSnapshot:
        """A mergeable point-in-time copy of this registry and attachments."""
        with self._lock:
            data: dict = {}
            for name, inst in self._instruments.items():
                samples = {}
                for key, value in inst._samples.items():
                    if isinstance(value, dict):  # histogram
                        samples[key] = {"buckets": inst.buckets,
                                        "counts": tuple(value["counts"]),
                                        "sum": value["sum"],
                                        "count": value["count"]}
                    else:
                        samples[key] = value
                data[name] = {"kind": inst.kind, "help": inst.help,
                              "labelnames": inst.labelnames,
                              "samples": samples}
            attached = [ref() for ref in self._attached]
            self._attached[:] = [ref for ref, live in
                                 zip(self._attached, attached, strict=True)
                                 if live is not None]
        snap = MetricsSnapshot(data)
        for child in attached:
            if child is not None:
                snap = snap.merge(child.snapshot())
        return snap


#: The process-wide registry behind every ``/metrics`` endpoint.
#: Components attach their private registries to it at construction.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (:data:`REGISTRY`)."""
    return REGISTRY


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #
def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(text: str) -> str:
    return (text.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r"\""))


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_str(labelnames: tuple, key: tuple, extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"'
             for n, v in zip(labelnames, key, strict=True)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render *snapshot* in the Prometheus text exposition format (0.0.4)."""
    lines: list[str] = []
    for name in sorted(snapshot.data):
        meta = snapshot.data[name]
        kind, labelnames = meta["kind"], tuple(meta["labelnames"])
        if meta["help"]:
            lines.append(f"# HELP {name} {_escape_help(meta['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(meta["samples"]):
            value = meta["samples"][key]
            if kind == "histogram":
                cumulative = 0
                for edge, count in zip(
                        tuple(value["buckets"]) + (float("inf"),),
                        value["counts"], strict=True):
                    cumulative += count
                    le = f'le="{_format_number(edge)}"'
                    lines.append(f"{name}_bucket"
                                 f"{_label_str(labelnames, key, le)} "
                                 f"{cumulative}")
                lines.append(f"{name}_sum{_label_str(labelnames, key)} "
                             f"{_format_number(value['sum'])}")
                lines.append(f"{name}_count{_label_str(labelnames, key)} "
                             f"{value['count']}")
            else:
                lines.append(f"{name}{_label_str(labelnames, key)} "
                             f"{_format_number(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[tuple[str, tuple], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    *labels* is a sorted tuple of ``(label, value)`` pairs.  The parser
    accepts exactly what :func:`render_prometheus` emits (plus blank
    lines) and raises :class:`ValueError` on anything else — which is
    what lets tests and the CI ``metrics-smoke`` job assert that a
    scraped payload *is* Prometheus text, not just non-empty.
    """
    samples: dict[tuple[str, tuple], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            if line.startswith("#") and not line.startswith(("# HELP", "# TYPE")):
                raise ValueError(f"malformed comment line: {raw!r}")
            continue
        try:
            series, value_str = line.rsplit(" ", 1)
            value = float(value_str.replace("+Inf", "inf"))
        except ValueError as exc:
            raise ValueError(f"malformed sample line: {raw!r}") from exc
        if "{" in series:
            name, _, rest = series.partition("{")
            body = rest.rstrip("}")
            labels = []
            for part in _split_labels(body):
                label, _, quoted = part.partition("=")
                if not (quoted.startswith('"') and quoted.endswith('"')):
                    raise ValueError(f"malformed label in line: {raw!r}")
                labels.append((label, quoted[1:-1]
                               .replace(r"\"", '"')
                               .replace(r"\n", "\n")
                               .replace(r"\\", "\\")))
            key = (name, tuple(sorted(labels)))
        else:
            key = (series, ())
        samples[key] = value
    return samples


def _split_labels(body: str) -> list[str]:
    """Split a label body on commas outside quoted values."""
    parts, current, quoted, escaped = [], [], False, False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            quoted = not quoted
        elif ch == "," and not quoted:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in parts if p]
