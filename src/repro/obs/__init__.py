"""One telemetry plane for the whole stack (metrics, traces, logs).

Three dependency-free pillars, threaded through every layer of the
reproduction:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  labeled :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  instruments with mergeable point-in-time snapshots (workers ship
  their registries to the parent inside ``Results``/``Heartbeat``
  frames) and a Prometheus text-format exposition writer.
* :mod:`repro.obs.tracing` — lightweight :class:`Span` objects whose
  parent ids propagate from ``run_plan`` through batches to individual
  ``EvalCell`` executions, across the serial/thread/process/remote
  executors, over the wire and into HTTP request handlers; dumped as
  JSON lines via the CLI ``--trace FILE``.
* :mod:`repro.obs.logging` — a structured-JSON log formatter and
  :func:`configure_logging`, wired into all four CLIs
  (``--log-format json|text``, ``--log-level``).

:mod:`repro.obs.http` mounts it: a shared ``/metrics`` handler body for
the object server and :class:`~repro.serving.server.ModelServer`, plus
the coordinator's read-only :class:`StatusServer`
(``/metrics`` + ``/healthz``).
"""

from repro.obs.logging import JsonFormatter, configure_logging
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.tracing import (
    TRACER,
    Span,
    SpanContext,
    Tracer,
    span_into,
    write_trace,
)

__all__ = [
    "REGISTRY",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_logging",
    "parse_prometheus",
    "render_prometheus",
    "span_into",
    "write_trace",
]
