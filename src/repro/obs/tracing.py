"""Lightweight tracing: spans, cross-process context, JSON-lines dumps.

A :class:`Span` is a named interval with ids (``trace_id`` shared by a
whole trace, ``span_id`` unique, ``parent_id`` linking upward), a wall
clock start, a duration, free-form ``attrs`` and optional ``events``.
The process-wide :data:`TRACER` is **off by default**: with no active
collection, :meth:`Tracer.span` costs one attribute read and yields
``None`` — the property the scheduler-overhead guard in
``benchmarks/test_bench_perf.py`` asserts.  Activate it with::

    with TRACER.collect() as spans:
        result = run_plan(plan, executor="remote", jobs=2)
    write_trace("trace.jsonl", spans)

Inside a collection, ``run_plan`` opens a ``plan`` span, each dispatch
unit a ``batch`` span, and every ``EvalCell`` a ``cell`` span — across
all four executors.  The parent link crosses process boundaries as a
:class:`SpanContext` (a two-field picklable dataclass): the process
pool ships it with the batch arguments, the fleet coordinator inside
``Batch`` frames; workers build their spans with :func:`span_into`
(which needs no active collection) and ship the finished spans back in
the batch return value / ``Results`` frame, where
:meth:`Tracer.record` folds them into the live collection.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "TRACER",
    "Span",
    "SpanContext",
    "Tracer",
    "load_trace",
    "span_into",
    "write_trace",
]


def _new_id(bits: int = 64) -> str:
    return uuid.uuid4().hex[: bits // 4]


@dataclass(frozen=True)
class SpanContext:
    """The picklable parent link that crosses process/wire boundaries."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One named interval of a trace.

    ``start`` is wall-clock (``time.time``), ``duration`` is measured
    on the monotonic clock; ``attrs`` carry bounded identifying detail
    (series/fraction/repeat for cells, worker ids for utilization);
    ``events`` are point-in-time annotations (retry attempts).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start: float = 0.0
    duration: float = 0.0
    attrs: dict = field(default_factory=dict)
    events: list = field(default_factory=list)

    def context(self) -> SpanContext:
        """This span as a parent link for children."""
        return SpanContext(self.trace_id, self.span_id)

    def add_event(self, name: str, **attrs) -> None:
        """Append a point-in-time annotation to this span."""
        self.events.append({"time": time.time(), "name": name, **attrs})

    def as_dict(self) -> dict:
        """Plain-JSON form (the ``--trace FILE`` line format)."""
        out = {"name": self.name, "trace_id": self.trace_id,
               "span_id": self.span_id, "parent_id": self.parent_id,
               "start": self.start, "duration": self.duration,
               "attrs": self.attrs}
        if self.events:
            out["events"] = self.events
        return out

    @classmethod
    def from_dict(cls, data: dict) -> Span:
        """Rebuild a span from its :meth:`as_dict` form."""
        return cls(name=data["name"], trace_id=data["trace_id"],
                   span_id=data["span_id"], parent_id=data.get("parent_id"),
                   start=data.get("start", 0.0),
                   duration=data.get("duration", 0.0),
                   attrs=dict(data.get("attrs", {})),
                   events=list(data.get("events", [])))


#: The current span of this execution context (shared by
#: :meth:`Tracer.span` and :func:`span_into`, so retry events land on
#: worker-side spans too).
_CURRENT: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


@contextmanager
def span_into(sink: list, name: str, *, trace_id: str | None = None,
              parent: SpanContext | Span | None = None, attrs: dict | None = None):
    """Time a block into a :class:`Span` appended to *sink*.

    The worker-side primitive: it needs no active collection and no
    global state — a fleet/pool worker creates its batch and cell spans
    into a local list and ships the list back to the parent.  The new
    span inherits ids from *parent* (a :class:`SpanContext` off the
    wire, or a local :class:`Span`); without one it starts a new trace.
    """
    if parent is not None:
        trace_id = parent.trace_id
        parent_id = parent.span_id
    else:
        trace_id = trace_id or _new_id(128)
        parent_id = None
    span = Span(name=name, trace_id=trace_id, span_id=_new_id(),
                parent_id=parent_id, start=time.time(),
                attrs=dict(attrs or {}))
    token = _CURRENT.set(span)
    t0 = time.perf_counter()
    try:
        yield span
    finally:
        span.duration = time.perf_counter() - t0
        _CURRENT.reset(token)
        sink.append(span)


class Tracer:
    """Collection-scoped tracing with near-zero cost when idle.

    :meth:`collect` pushes a live collection; :meth:`span` records into
    every active collection (collections are rare and usually single,
    but nesting is legal and each nested collection sees the spans of
    its scope).  With no active collection, :meth:`span` yields ``None``
    after a single attribute check and :meth:`event` is a no-op unless
    a :func:`span_into` block is active.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._collections: list[list] = []

    @property
    def enabled(self) -> bool:
        """Whether at least one collection is active."""
        return bool(self._collections)

    @contextmanager
    def collect(self):
        """Activate tracing; yields the list finished spans land in."""
        spans: list[Span] = []
        with self._lock:
            self._collections.append(spans)
        try:
            yield spans
        finally:
            with self._lock:
                self._collections.remove(spans)

    def record(self, spans) -> None:
        """Fold externally produced spans (workers, wire) into collections."""
        if not self._collections:
            return
        with self._lock:
            for collection in self._collections:
                collection.extend(spans)

    @contextmanager
    def span(self, name: str, *, parent: Span | SpanContext | None = None,
             attrs: dict | None = None):
        """Time a block into a new span (or yield ``None`` when idle).

        *parent* defaults to the context-local current span, so nested
        ``with TRACER.span(...)`` blocks link up automatically; pass it
        explicitly when the child runs on another thread.
        """
        if not self._collections:
            yield None
            return
        if parent is None:
            parent = _CURRENT.get()
        sink: list[Span] = []
        with span_into(sink, name, parent=parent, attrs=attrs) as span:
            yield span
        self.record(sink)

    def current_context(self) -> SpanContext | None:
        """The context-local current span as a parent link, if any."""
        span = _CURRENT.get()
        return span.context() if span is not None else None

    def event(self, name: str, **attrs) -> None:
        """Annotate the context-local current span (no-op without one)."""
        span = _CURRENT.get()
        if span is not None:
            span.add_event(name, **attrs)


#: The process-wide tracer every instrumented layer records through.
TRACER = Tracer()


def write_trace(path, spans) -> int:
    """Dump *spans* as JSON lines to *path*; returns the span count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def load_trace(path) -> list[Span]:
    """Read a :func:`write_trace` JSON-lines file back into spans."""
    spans = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans
