"""Structured logging: a JSON formatter and one-call CLI configuration.

All four CLIs (``repro.experiments``, the fleet worker, the object
server, the model server) expose ``--log-format json|text`` and
``--log-level``; :func:`add_logging_args` declares the flags and
:func:`configure_logging` applies them.  The JSON format emits one
object per line — ``ts`` (ISO-8601 UTC), ``level``, ``logger``,
``message``, plus any ``extra={...}`` fields the call site attached —
so fleet logs are machine-mergeable across hosts::

    >>> import logging
    >>> from repro.obs.logging import JsonFormatter
    >>> record = logging.LogRecord("repro.demo", logging.INFO, __file__, 1,
    ...                            "served %d cells", (3,), None)
    >>> import json; payload = json.loads(JsonFormatter().format(record))
    >>> payload["logger"], payload["level"], payload["message"]
    ('repro.demo', 'INFO', 'served 3 cells')
"""

from __future__ import annotations

import json
import logging
from datetime import datetime, timezone

__all__ = ["JsonFormatter", "add_logging_args", "configure_logging"]

#: Attributes present on every ``LogRecord``; anything else on the
#: record arrived via ``extra={...}`` and is emitted as a JSON field.
_RESERVED = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None).__dict__) | {"message", "asctime",
                                             "taskName"}

LOG_FORMATS = ("text", "json")


class JsonFormatter(logging.Formatter):
    """Format records as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        """Render *record* as a compact JSON line."""
        payload = {
            "ts": datetime.fromtimestamp(
                record.created, tz=timezone.utc).isoformat(),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value if isinstance(
                    value, (str, int, float, bool, type(None))) else repr(value)
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def configure_logging(*, fmt: str = "text", level: str = "INFO",
                      stream=None) -> None:
    """Configure root logging for a CLI process.

    *fmt* is ``"text"`` (the classic ``level name: message`` line) or
    ``"json"`` (one :class:`JsonFormatter` object per line); *level* a
    standard level name.  Reconfigures idempotently — an existing root
    handler installed by a previous call is replaced, not stacked.
    """
    if fmt not in LOG_FORMATS:
        raise ValueError(f"log format must be one of {LOG_FORMATS}, got {fmt!r}")
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    handler = logging.StreamHandler(stream)
    if fmt == "json":
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"))
    root = logging.getLogger()
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(numeric)


def add_logging_args(parser) -> None:
    """Declare the shared ``--log-format`` / ``--log-level`` CLI flags."""
    parser.add_argument("--log-format", choices=LOG_FORMATS, default="text",
                        help="log line format (default: text)")
    parser.add_argument("--log-level", default="INFO",
                        help="root log level (default: INFO)")
