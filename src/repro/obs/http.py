"""HTTP exposition: the shared ``/metrics`` body and the status server.

Two pieces mount the metrics pillar onto the wire:

* :func:`metrics_body` — the one payload every ``/metrics`` endpoint
  serves: the process-wide :data:`~repro.obs.metrics.REGISTRY` (or an
  explicit snapshot) rendered in the Prometheus text format.  The
  object server and :class:`~repro.serving.server.ModelServer` route
  ``GET /metrics`` through it, so any process hosting an HTTP surface
  is scrapeable for free.
* :class:`StatusServer` — a read-only sidecar for processes whose main
  socket speaks the binary fleet protocol (the coordinator): ``GET
  /metrics`` serves a caller-supplied snapshot (the coordinator's
  fleet-wide merged view) and ``GET /healthz`` a small JSON health
  document.  The CLI mounts it with ``--status-port``.
"""

from __future__ import annotations

import json
import socket
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import REGISTRY, MetricsSnapshot, render_prometheus

__all__ = ["CONTENT_TYPE", "StatusServer", "metrics_body"]

#: The Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metrics_body(snapshot: MetricsSnapshot | None = None) -> bytes:
    """The ``/metrics`` response body (process-wide registry by default)."""
    if snapshot is None:
        snapshot = REGISTRY.snapshot()
    return render_prometheus(snapshot).encode("utf-8")


class _StatusHandler(BaseHTTPRequestHandler):
    """One read-only request against the status surface."""

    protocol_version = "HTTP/1.1"
    server_version = "ReproStatus/1.0"

    server: StatusServer

    def log_message(self, fmt, *args):
        """Suppress per-request logging (a scrape per second is noise)."""

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # (BaseHTTPRequestHandler naming)
        """Serve ``/metrics`` (Prometheus text) or ``/healthz`` (JSON)."""
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._send(200, metrics_body(self.server.metrics_source()),
                           CONTENT_TYPE)
            elif path == "/healthz":
                body = json.dumps(self.server.health_source(),
                                  sort_keys=True).encode()
                self._send(200, body, "application/json")
            else:
                self._send(404, b"try /metrics or /healthz", "text/plain")
        except Exception as exc:  # noqa: BLE001 - a scrape must never kill the server
            self._send(500, f"{type(exc).__name__}: {exc}".encode(),
                       "text/plain")


class StatusServer(ThreadingHTTPServer):
    """Read-only ``/metrics`` + ``/healthz`` sidecar (the ``--status-port``).

    Parameters
    ----------
    metrics:
        Zero-argument callable returning the :class:`MetricsSnapshot`
        to expose (e.g. ``coordinator.fleet_snapshot``); ``None`` serves
        the process-wide registry.
    health:
        Zero-argument callable returning the ``/healthz`` JSON document
        (default: ``{"status": "ok"}``).
    address:
        Bind address; port 0 picks an ephemeral port (tests).
    """

    daemon_threads = True

    def __init__(self, metrics: Callable[[], MetricsSnapshot] | None = None,
                 health: Callable[[], dict] | None = None,
                 address: tuple[str, int] = ("127.0.0.1", 0)) -> None:
        self.metrics_source = metrics if metrics is not None \
            else (lambda: None)
        self.health_source = health if health is not None \
            else (lambda: {"status": "ok"})
        self._thread: threading.Thread | None = None
        super().__init__(address, _StatusHandler)

    @property
    def url(self) -> str:
        """Base URL of the status surface (scrape ``<url>metrics``)."""
        host, port = self.server_address[:2]
        if host in ("0.0.0.0", "::"):
            host = socket.gethostname()
        return f"http://{host}:{port}/"

    def start(self) -> StatusServer:
        """Serve scrapes on a daemon thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="status-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> StatusServer:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
