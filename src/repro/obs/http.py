"""HTTP exposition and the shared server base for every HTTP surface.

Three pieces mount the HTTP tier onto one spine:

* :func:`metrics_body` — the one payload every ``/metrics`` endpoint
  serves: the process-wide :data:`~repro.obs.metrics.REGISTRY` (or an
  explicit snapshot) rendered in the Prometheus text format.
* :class:`ReproHTTPServer` — the base every bundled HTTP server
  (the object store, the model server, the status sidecar) subclasses.
  It implements, exactly once: request-body reading, shared-secret HMAC
  authorization (``Authorization: Repro-HMAC <hex>``), the labeled
  ``repro_auth_failures_total`` counter, ``GET /metrics`` and ``GET
  /healthz``, request tracing spans, :class:`RequestError` → status
  mapping, the daemon-thread ``start``/``stop``/context-manager
  lifecycle, and the wildcard-aware ``url`` property.  Subclasses
  provide a ``name``, a :meth:`~ReproHTTPServer.handle` routing method,
  and optional ``health()``/``metrics_snapshot()`` overrides.
* :class:`StatusServer` — the read-only sidecar for processes whose
  main socket speaks the binary fleet protocol (the coordinator):
  ``GET /metrics`` serves a caller-supplied snapshot (the coordinator's
  fleet-wide merged view) and ``GET /healthz`` a small JSON health
  document.  The CLI mounts it with ``--status-port``.

Authorization (when a server is constructed with ``auth=<key bytes>``)
covers the whole request: the tag is HMAC-SHA256 over
``METHOD\\n<request-target>\\n<sha256-hex of the body>``, where the
request target is the exact percent-encoded path-plus-query on the
request line, so neither the resource nor the payload can be swapped
under a captured header.  ``GET``/``HEAD /healthz`` stays open — health
probes predate key distribution — and every rejected request increments
``repro_auth_failures_total{server=...}`` so operators see auth
failures instead of debugging silent 401s.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import socket
import sys
import threading
import urllib.parse
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import REGISTRY, MetricsRegistry, MetricsSnapshot, render_prometheus
from repro.obs.tracing import TRACER

__all__ = [
    "AUTH_SCHEME",
    "CONTENT_TYPE",
    "ReproHTTPServer",
    "RequestError",
    "StatusServer",
    "metrics_body",
    "sign_request",
    "verify_request",
]

#: The Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: The ``Authorization`` scheme spoken by every bundled server/client.
AUTH_SCHEME = "Repro-HMAC"


def metrics_body(snapshot: MetricsSnapshot | None = None) -> bytes:
    """The ``/metrics`` response body (process-wide registry by default)."""
    if snapshot is None:
        snapshot = REGISTRY.snapshot()
    return render_prometheus(snapshot).encode("utf-8")


class RequestError(Exception):
    """A request that maps to a specific HTTP status (raised by handlers)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


# --------------------------------------------------------------------------- #
# Request authorization
# --------------------------------------------------------------------------- #
def _canonical(method: str, target: str, body: bytes) -> bytes:
    """The byte string a request tag signs.

    *target* is the request-line target — percent-encoded path plus
    query — exactly as the client sends it and the server receives it,
    so both sides canonicalize identically without re-encoding.
    """
    digest = hashlib.sha256(body or b"").hexdigest()
    return f"{method.upper()}\n{target}\n{digest}".encode("utf-8")


def sign_request(key: bytes, method: str, target: str,
                 body: bytes = b"") -> str:
    """The ``Authorization`` header value for one request."""
    tag = hmac.new(key, _canonical(method, target, body),
                   hashlib.sha256).hexdigest()
    return f"{AUTH_SCHEME} {tag}"


def verify_request(key: bytes, method: str, target: str, body: bytes,
                   header: str | None) -> bool:
    """Whether *header* correctly authorizes this request under *key*."""
    if not header:
        return False
    scheme, _, tag = header.partition(" ")
    if scheme != AUTH_SCHEME:
        return False
    expected = hmac.new(key, _canonical(method, target, body),
                        hashlib.sha256).hexdigest()
    return hmac.compare_digest(tag.strip().lower(), expected)


# --------------------------------------------------------------------------- #
# The shared handler + server base
# --------------------------------------------------------------------------- #
class _Handler(BaseHTTPRequestHandler):
    """One request against a :class:`ReproHTTPServer`.

    Every verb funnels through :meth:`_dispatch`, which reads the body,
    enforces authorization, serves the built-in telemetry endpoints and
    hands everything else to the server's :meth:`~ReproHTTPServer.handle`
    under a tracing span — so subclasses never reimplement the
    cross-cutting pieces.
    """

    protocol_version = "HTTP/1.1"
    server_version = "ReproHTTP/1.0"

    server: ReproHTTPServer

    def log_message(self, fmt, *args):
        """Per-request stderr logging, only under ``--verbose``."""
        if self.server.verbose:
            sys.stderr.write(f"{self.server.name}: " + fmt % args + "\n")

    # -- response helpers (used by server ``handle`` implementations) -- #
    def send_body(self, status: int, body: bytes = b"",
                  content_type: str = "application/octet-stream") -> None:
        """One complete response with correct framing headers.

        ``HEAD`` responses advertise the body's length but never write
        it — writing would desynchronize the keep-alive connection.
        """
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if status == 401:
            self.send_header("WWW-Authenticate", AUTH_SCHEME)
        self.end_headers()
        if body and self.command != "HEAD":
            self.wfile.write(body)

    def send_json(self, status: int, payload: dict | list) -> None:
        """One complete JSON response."""
        self.send_body(status, json.dumps(payload).encode("utf-8"),
                       content_type="application/json")

    # -- the single request path -------------------------------------- #
    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length > 0 else b""
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(parsed.query)
        try:
            if not self._authorized(method, path, body):
                self.server.count_auth_failure()
                self.send_json(401, {"error": "missing or invalid "
                                              f"{AUTH_SCHEME} authorization"})
                return
            attrs = {"server": self.server.name, "method": method,
                     "path": path}
            with TRACER.span("request", attrs=attrs):
                if method in ("GET", "HEAD") and path == "/metrics":
                    self.send_body(
                        200, metrics_body(self.server.metrics_snapshot()),
                        content_type=CONTENT_TYPE)
                elif method in ("GET", "HEAD") and path == "/healthz":
                    body_out = json.dumps(self.server.health(),
                                          sort_keys=True).encode("utf-8")
                    self.send_body(200, body_out,
                                   content_type="application/json")
                else:
                    self.server.handle(self, method, path, query, body)
        except RequestError as exc:
            self.server.count_error(exc.status)
            self.send_json(exc.status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - 500 is retryable, a dead socket is not
            self.server.count_error(500)
            self.log_message("%s %s failed: %s", method, self.path, exc)
            self.send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _authorized(self, method: str, path: str, body: bytes) -> bool:
        if self.server.auth is None:
            return True
        if method in ("GET", "HEAD") and path == "/healthz":
            return True  # liveness probes predate key distribution
        return verify_request(self.server.auth, method, self.path, body,
                              self.headers.get("Authorization"))

    def do_GET(self) -> None:  # (BaseHTTPRequestHandler naming)
        """Route GET through the shared dispatch pipeline."""
        self._dispatch("GET")

    def do_HEAD(self) -> None:
        """Route HEAD through the shared dispatch pipeline."""
        self._dispatch("HEAD")

    def do_POST(self) -> None:
        """Route POST through the shared dispatch pipeline."""
        self._dispatch("POST")

    def do_PUT(self) -> None:
        """Route PUT through the shared dispatch pipeline."""
        self._dispatch("PUT")

    def do_DELETE(self) -> None:
        """Route DELETE through the shared dispatch pipeline."""
        self._dispatch("DELETE")


class ReproHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server base: auth, telemetry and lifecycle in one place.

    Parameters
    ----------
    bind:
        ``(host, port)`` bind address; port 0 picks an ephemeral port.
    auth:
        Shared-secret key bytes; ``None`` serves unauthenticated
        (loopback/trusted networks).  With a key every request except
        ``GET /healthz`` must carry a valid ``Authorization:
        Repro-HMAC`` header (see :func:`sign_request`); failures answer
        401 and increment ``repro_auth_failures_total{server=<name>}``.
    registry:
        The :class:`MetricsRegistry` to register instruments on
        (default: a fresh one attached to the process-wide
        :data:`~repro.obs.metrics.REGISTRY`).
    verbose:
        Log each request to stderr.
    """

    daemon_threads = True

    #: Subclass identity: the ``server`` label on auth-failure counters
    #: and the serving thread's name.
    name = "repro-http"

    def __init__(self, bind: tuple[str, int] = ("127.0.0.1", 0), *,
                 auth: bytes | None = None,
                 registry: MetricsRegistry | None = None,
                 verbose: bool = False) -> None:
        self.auth = auth
        self.verbose = verbose
        self.metrics = registry if registry is not None \
            else MetricsRegistry(attach_to=REGISTRY)
        self._auth_failures = self.metrics.counter(
            "repro_auth_failures_total",
            "Requests rejected for a missing or invalid credential",
            labelnames=("server",)).labels(server=self.name)
        self._thread: threading.Thread | None = None
        super().__init__(bind, _Handler)

    # -- hooks subclasses override ------------------------------------ #
    def handle(self, request: _Handler, method: str, path: str,
               query: dict, body: bytes) -> None:
        """Route one non-built-in request (built-ins: /metrics, /healthz).

        Implementations answer via ``request.send_body`` /
        ``request.send_json`` or raise :class:`RequestError`; any other
        exception maps to 500.
        """
        raise RequestError(404, f"no such endpoint {path}")

    def health(self) -> dict:
        """The ``GET /healthz`` JSON document."""
        return {"status": "ok"}

    def metrics_snapshot(self) -> MetricsSnapshot | None:
        """The snapshot ``/metrics`` renders (``None`` = process-wide)."""
        return None

    def count_error(self, status: int) -> None:
        """Failure-counting hook (subclasses map statuses to counters)."""

    # -- telemetry ------------------------------------------------------ #
    def count_auth_failure(self) -> None:
        """Record one rejected credential (handler calls this on 401)."""
        self._auth_failures.inc()

    @property
    def auth_failures(self) -> int:
        """Requests this server rejected for bad/missing credentials."""
        return int(self._auth_failures.value)

    # -- lifecycle ------------------------------------------------------ #
    @property
    def url(self) -> str:
        """Base URL of this server.

        A wildcard bind address is not a destination: substitute this
        machine's hostname so the advertised locator routes from other
        hosts.
        """
        host, port = self.server_address[:2]
        if host in ("0.0.0.0", "::"):
            host = socket.gethostname()
        return f"http://{host}:{port}/"

    def start(self) -> ReproHTTPServer:
        """Serve requests on a daemon thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=self.name, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> ReproHTTPServer:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class StatusServer(ReproHTTPServer):
    """Read-only ``/metrics`` + ``/healthz`` sidecar (the ``--status-port``).

    Parameters
    ----------
    metrics:
        Zero-argument callable returning the :class:`MetricsSnapshot`
        to expose (e.g. ``coordinator.fleet_snapshot``); ``None`` serves
        the process-wide registry.
    health:
        Zero-argument callable returning the ``/healthz`` JSON document
        (default: ``{"status": "ok"}``).
    address:
        Bind address; port 0 picks an ephemeral port (tests).
    auth:
        Shared-secret key bytes; scrapes must then sign requests
        (``/healthz`` stays open).
    """

    name = "status-server"

    def __init__(self, metrics: Callable[[], MetricsSnapshot] | None = None,
                 health: Callable[[], dict] | None = None,
                 address: tuple[str, int] = ("127.0.0.1", 0), *,
                 auth: bytes | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.metrics_source = metrics if metrics is not None \
            else (lambda: None)
        self.health_source = health if health is not None \
            else (lambda: {"status": "ok"})
        super().__init__(address, auth=auth, registry=registry)

    def metrics_snapshot(self) -> MetricsSnapshot | None:
        """The injected metrics callable's snapshot (``None`` = process-wide)."""
        return self.metrics_source()

    def health(self) -> dict:
        """The injected health callable's JSON document."""
        return self.health_source()

    def handle(self, request, method, path, query, body) -> None:
        """Reject everything beyond the two built-in read-only routes."""
        raise RequestError(404, "try /metrics or /healthz")
