"""The hybrid analytical + machine-learning performance model (Section VI).

The model couples an :class:`~repro.analytical.base.AnalyticalModel` with a
machine-learning regressor through two ensemble mechanisms:

* **Stacking** — the analytical model's prediction is appended to the
  feature vector as an additional input of the ML model ("the analytical
  model predictions are regarded as additional features for the machine
  learning model").
* **Bagging** — two distinct uses, both optional and both off by default:
  (a) the stacked ML regressor itself can be bagged
  (``bagging_estimators > 0``) to reduce its variance, and
  (b) the final prediction can aggregate the analytical prediction with
  the stacked prediction (``aggregate_analytical=True``), the paper's
  "results aggregation" stage, which is described as supplementary and is
  disabled in the paper's Figure 7 experiment because the analytical model
  does not capture parallelism.

Features are standardized to zero mean / unit variance before reaching the
ML model, as in Section V.
"""

from __future__ import annotations

import numpy as np

from repro.analytical.base import AnalyticalModel
from repro.ml.bagging import BaggingRegressor
from repro.ml.base import BaseEstimator, RegressorMixin, clone
from repro.ml.forest import ExtraTreesRegressor
from repro.ml.preprocessing import StandardScaler
from repro.utils.validation import check_array, check_is_fitted, check_X_y

__all__ = ["HybridPerformanceModel"]


class HybridPerformanceModel(BaseEstimator, RegressorMixin):
    """Hybrid analytical + ML execution-time predictor.

    Parameters
    ----------
    analytical_model:
        The application's analytical model (prediction-only, never trained).
    feature_names:
        Names of the columns of ``X``, needed by the analytical model to
        rebuild configuration objects.
    ml_model:
        The level-1 regressor stacked on top; defaults to the paper's best
        performer, extra trees.
    aggregate_analytical:
        If True, the final prediction is the (bagging-style) average of the
        analytical prediction and the stacked prediction.
    analytical_weight:
        Weight of the analytical prediction in the aggregation (0.5 =
        plain average).
    bagging_estimators:
        If > 0, wrap the stacked regressor in a
        :class:`~repro.ml.bagging.BaggingRegressor` with that many
        bootstrap replicas.
    standardize:
        Standardize the stacked feature matrix (original features + the
        analytical prediction) before fitting the ML model.
    log_analytical_feature:
        Feed ``log(T_analytical)`` rather than the raw prediction as the
        extra feature.  Execution times span orders of magnitude across the
        configuration spaces; the log keeps the feature informative at both
        ends.  The aggregation stage always uses the raw (linear) value.
    analytical_cache:
        Optional :class:`~repro.analytical.cache.AnalyticalPredictionCache`
        bound to ``analytical_model``; when given, analytical predictions
        are served from (and recorded into) the cache, so repeated fits
        and predictions over the same dataset rows — the learning-curve
        protocol — evaluate each row only once.  The cache may be shared
        across many model instances (it holds no per-fit state).
    random_state:
        Seed forwarded to the ML model (and the bagging wrapper).
    """

    def __init__(
        self,
        *,
        analytical_model: AnalyticalModel,
        feature_names,
        ml_model: BaseEstimator | None = None,
        aggregate_analytical: bool = False,
        analytical_weight: float = 0.5,
        bagging_estimators: int = 0,
        standardize: bool = True,
        log_analytical_feature: bool = True,
        analytical_cache=None,
        random_state=None,
    ) -> None:
        self.analytical_model = analytical_model
        self.feature_names = feature_names
        self.ml_model = ml_model
        self.aggregate_analytical = aggregate_analytical
        self.analytical_weight = analytical_weight
        self.bagging_estimators = bagging_estimators
        self.standardize = standardize
        self.log_analytical_feature = log_analytical_feature
        self.analytical_cache = analytical_cache
        self.random_state = random_state
        self.scaler_: StandardScaler | None = None
        self.stacked_model_: BaseEstimator | None = None
        self.n_features_in_: int | None = None

    # ------------------------------------------------------------------ #
    # Training algorithm (Section VI)
    # ------------------------------------------------------------------ #
    def fit(self, X, y) -> HybridPerformanceModel:
        """Train the stacked ML model on features augmented with the AM prediction."""
        X, y = check_X_y(X, y)
        if not isinstance(self.analytical_model, AnalyticalModel):
            raise TypeError(
                "analytical_model must implement repro.analytical.AnalyticalModel"
            )
        if not 0.0 <= self.analytical_weight <= 1.0:
            raise ValueError(
                f"analytical_weight must be in [0, 1], got {self.analytical_weight}"
            )
        if X.shape[1] != len(list(self.feature_names)):
            raise ValueError(
                f"X has {X.shape[1]} columns but feature_names has "
                f"{len(list(self.feature_names))} entries"
            )
        if self.analytical_cache is not None:
            cached = self.analytical_cache.model
            if cached is not self.analytical_model and cached != self.analytical_model:
                raise ValueError(
                    "analytical_cache is bound to a different analytical model"
                )
            if list(self.analytical_cache.feature_names) != list(self.feature_names):
                raise ValueError(
                    "analytical_cache is bound to a different feature layout: "
                    f"{self.analytical_cache.feature_names} != {list(self.feature_names)}"
                )
        self.n_features_in_ = X.shape[1]

        Z = self._stacked_features(X)
        if self.standardize:
            self.scaler_ = StandardScaler().fit(Z)
            Z = self.scaler_.transform(Z)
        else:
            self.scaler_ = None

        base = self.ml_model if self.ml_model is not None else ExtraTreesRegressor(
            n_estimators=30, random_state=self.random_state
        )
        model = clone(base)
        if "random_state" in model.get_params(deep=False) and self.random_state is not None:
            model.set_params(random_state=self.random_state)
        if self.bagging_estimators > 0:
            model = BaggingRegressor(
                estimator=model,
                n_estimators=self.bagging_estimators,
                random_state=self.random_state,
            )
        model.fit(Z, y)
        self.stacked_model_ = model
        return self

    # ------------------------------------------------------------------ #
    # Prediction algorithm (Section VI)
    # ------------------------------------------------------------------ #
    def predict(self, X) -> np.ndarray:
        """Final hybrid prediction for each row of *X*."""
        parts = self.predict_components(X)
        return parts["final"]

    def predict_rows(self, rows) -> np.ndarray:
        """Vectorized serving path: final predictions for a batch of raw rows.

        *rows* is any ``(n_rows, n_features)`` array-like — e.g. the
        decoded JSON body of a model-server ``/predict`` request.  The
        whole batch is served by one analytical pass, one scaler
        transform and one ensemble descent; every prediction is
        computed row-wise from elementwise/per-row operations, so any
        concatenation of requests (the server's micro-batching) yields
        the same value for a given row as serving it alone.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ValueError(
                f"rows must be 2-D (n_rows, n_features), got shape {rows.shape}")
        return self.predict(rows)

    def predict_components(self, X) -> dict[str, np.ndarray]:
        """All intermediate predictions: analytical, stacked, and final."""
        check_is_fitted(self, "stacked_model_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but the model was fitted with "
                f"{self.n_features_in_}"
            )
        analytical = self._analytical_predictions(X)
        Z = self._stacked_features(X, analytical=analytical)
        if self.scaler_ is not None:
            Z = self.scaler_.transform(Z)
        stacked = self.stacked_model_.predict(Z)
        if self.aggregate_analytical:
            w = self.analytical_weight
            final = w * analytical + (1.0 - w) * stacked
        else:
            final = stacked
        return {"analytical": analytical, "stacked": stacked, "final": final}

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _analytical_predictions(self, X: np.ndarray) -> np.ndarray:
        if self.analytical_cache is not None:
            preds = self.analytical_cache.predict(X)
        else:
            preds = self.analytical_model.predict(X, self.feature_names)
        preds = np.asarray(preds, dtype=np.float64)
        if preds.shape != (X.shape[0],):
            raise ValueError(
                f"analytical model returned shape {preds.shape}, expected ({X.shape[0]},)"
            )
        if np.any(~np.isfinite(preds)) or np.any(preds <= 0.0):
            raise ValueError("analytical model must return finite, positive times")
        return preds

    def _stacked_features(self, X: np.ndarray,
                          analytical: np.ndarray | None = None) -> np.ndarray:
        if analytical is None:
            analytical = self._analytical_predictions(X)
        feature = np.log(analytical) if self.log_analytical_feature else analytical
        return np.hstack([X, feature[:, None]])
