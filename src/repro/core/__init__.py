"""The paper's primary contribution: the hybrid performance model.

Section VI: the hybrid model consists of an analytical model of the
application, two ensemble methods (stacking and bagging), a training
algorithm and a prediction algorithm.  The analytical model's prediction
is fed to the machine-learning model as an additional feature (stacking);
optionally the analytical and stacked predictions are aggregated
(bagging-style) into the final prediction.

Public API
----------
* :class:`~repro.core.features.PerformanceDataset` — a named
  (configurations, features, execution times) bundle,
* :class:`~repro.core.hybrid.HybridPerformanceModel` — the hybrid
  estimator (scikit-learn style ``fit``/``predict``),
* :func:`~repro.core.training.train_hybrid_model` — the paper's training
  algorithm (uniform sampling of a training fraction + offline model
  construction),
* :func:`~repro.core.evaluation.evaluate_learning_curve` /
  :func:`~repro.core.evaluation.compare_models` — the evaluation protocol
  behind every figure (MAPE on the held-out remainder versus training
  fraction, repeated over sampling seeds).
"""

from repro.core.evaluation import (
    LearningCurve,
    LearningCurvePoint,
    compare_models,
    evaluate_learning_curve,
)
from repro.core.features import PerformanceDataset
from repro.core.hybrid import HybridPerformanceModel
from repro.core.training import TrainedModel, train_hybrid_model, train_ml_model

__all__ = [
    "PerformanceDataset",
    "HybridPerformanceModel",
    "TrainedModel",
    "train_hybrid_model",
    "train_ml_model",
    "LearningCurvePoint",
    "LearningCurve",
    "evaluate_learning_curve",
    "compare_models",
]
