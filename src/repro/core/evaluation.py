"""Learning-curve evaluation protocol.

Every figure in the paper's evaluation reports MAPE on a held-out set as a
function of the training-set size (a percentage of the full dataset), as a
distribution over repeated uniform random samplings.  This module
implements that protocol once, for any model factory, so every
experiment and benchmark shares the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.features import PerformanceDataset
from repro.ml.metrics import mean_absolute_percentage_error
from repro.utils.rng import check_random_state, spawn_seeds

__all__ = ["LearningCurvePoint", "LearningCurve", "evaluate_learning_curve", "compare_models"]


@dataclass
class LearningCurvePoint:
    """MAPE distribution for one training fraction."""

    fraction: float
    n_train: int
    mapes: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Mean MAPE across sampling repetitions."""
        return float(np.mean(self.mapes))

    @property
    def std(self) -> float:
        """Standard deviation of MAPE across repetitions."""
        return float(np.std(self.mapes))

    @property
    def min(self) -> float:
        """Best (lowest) MAPE observed."""
        return float(np.min(self.mapes))

    @property
    def max(self) -> float:
        """Worst (highest) MAPE observed."""
        return float(np.max(self.mapes))


@dataclass
class LearningCurve:
    """A labelled series of learning-curve points (one line of a figure)."""

    label: str
    points: list[LearningCurvePoint] = field(default_factory=list)

    def mape_at(self, fraction: float) -> float:
        """Mean MAPE at a given training fraction."""
        for point in self.points:
            if abs(point.fraction - fraction) < 1e-12:
                return point.mean
        raise KeyError(f"no point at fraction {fraction} in curve {self.label!r}")

    @property
    def fractions(self) -> list[float]:
        """Training fractions present in the curve."""
        return [p.fraction for p in self.points]

    @property
    def means(self) -> list[float]:
        """Mean MAPE at each fraction."""
        return [p.mean for p in self.points]

    def as_rows(self) -> list[dict]:
        """Flat row dictionaries, convenient for reporting."""
        return [
            {
                "series": self.label,
                "fraction": p.fraction,
                "n_train": p.n_train,
                "mape_mean": p.mean,
                "mape_std": p.std,
                "mape_min": p.min,
                "mape_max": p.max,
            }
            for p in self.points
        ]


def evaluate_learning_curve(
    model_factory: Callable[[int], object],
    dataset: PerformanceDataset,
    *,
    fractions: Sequence[float],
    n_repeats: int = 3,
    min_train: int = 3,
    label: str = "model",
    random_state=0,
    analytical_cache=None,
) -> LearningCurve:
    """MAPE-vs-training-fraction curve for one model family.

    Parameters
    ----------
    model_factory:
        Callable ``factory(seed) -> estimator`` returning a *fresh*,
        unfitted model; called once per (fraction, repeat).
    dataset:
        The performance dataset to learn.
    fractions:
        Training fractions (e.g. ``[0.01, 0.02, 0.04]``).
    n_repeats:
        Number of independent uniform random samplings per fraction.
    min_train:
        Lower bound on the number of training samples.
    label:
        Name of the resulting curve.
    random_state:
        Master seed; per-repeat seeds are spawned deterministically.
    analytical_cache:
        Optional :class:`~repro.analytical.cache.AnalyticalPredictionCache`
        shared with the models the factory produces.  It is warmed with
        the full dataset up front (one vectorized evaluation), so every
        ``(fraction, repeat)`` cell afterwards is pure cache hits.
    """
    if not fractions:
        raise ValueError("fractions must be non-empty")
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    if analytical_cache is not None:
        analytical_cache.warm(dataset.X)
    rng = check_random_state(random_state)
    curve = LearningCurve(label=label)
    for fraction in fractions:
        seeds = spawn_seeds(rng, n_repeats)
        point: LearningCurvePoint | None = None
        for seed in seeds:
            train_idx, test_idx = dataset.train_test_indices(
                train_fraction=float(fraction), min_train=min_train, random_state=seed
            )
            # The split size is a deterministic function of the fraction and
            # dataset, so repeats must agree; record it from the first split.
            if point is None:
                point = LearningCurvePoint(fraction=float(fraction),
                                           n_train=len(train_idx))
            elif len(train_idx) != point.n_train:
                raise RuntimeError(
                    f"inconsistent n_train across repeats at fraction {fraction}: "
                    f"{len(train_idx)} != {point.n_train}"
                )
            model = model_factory(seed)
            model.fit(dataset.X[train_idx], dataset.y[train_idx])
            predictions = model.predict(dataset.X[test_idx])
            point.mapes.append(
                mean_absolute_percentage_error(dataset.y[test_idx], predictions)
            )
        curve.points.append(point)
    return curve


def compare_models(
    factories: dict[str, Callable[[int], object]],
    dataset: PerformanceDataset,
    *,
    fractions_by_model: dict[str, Sequence[float]] | None = None,
    fractions: Sequence[float] | None = None,
    n_repeats: int = 3,
    min_train: int = 3,
    random_state=0,
    analytical_cache=None,
) -> dict[str, LearningCurve]:
    """Learning curves for several model families on the same dataset.

    Either a common ``fractions`` list or a per-model
    ``fractions_by_model`` mapping must be provided (the paper's hybrid
    experiments use different fractions for the pure-ML and hybrid
    models, e.g. 10/15/20% vs 1/2/4% in Figure 5).  An optional shared
    ``analytical_cache`` is forwarded to every per-family evaluation, so
    the analytical model is evaluated once per dataset row across the
    whole comparison.
    """
    if fractions_by_model is None:
        if fractions is None:
            raise ValueError("provide fractions or fractions_by_model")
        fractions_by_model = {name: fractions for name in factories}
    curves: dict[str, LearningCurve] = {}
    for name, factory in factories.items():
        curves[name] = evaluate_learning_curve(
            factory,
            dataset,
            fractions=fractions_by_model[name],
            n_repeats=n_repeats,
            min_train=min_train,
            label=name,
            random_state=random_state,
            analytical_cache=analytical_cache,
        )
    return curves
