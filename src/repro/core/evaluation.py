"""Learning-curve evaluation protocol.

Every figure in the paper's evaluation reports MAPE on a held-out set as a
function of the training-set size (a percentage of the full dataset), as a
distribution over repeated uniform random samplings.  This module
implements that protocol once, for any model factory, so every
experiment and benchmark shares the same code path.

The protocol is decomposed into three pure stages so any executor (one
process, a thread pool, a process pool) produces bit-identical curves:

1. :func:`plan_learning_curve` expands ``(fractions, n_repeats,
   random_state)`` into a list of :class:`EvalCell` tasks.  Seed
   derivation happens entirely at planning time (one sequential RNG
   stream, exactly as the original serial loop drew it), so a cell's
   outcome depends only on the cell itself, never on evaluation order.
2. :func:`evaluate_cell` runs one ``(fraction, repeat)`` fit and returns a
   :class:`CellResult`.  Both dataclasses are picklable and hold only
   primitives, so cells can cross process boundaries.
3. :func:`merge_cell_results` folds results back into a
   :class:`LearningCurve` in plan order, making the merge deterministic
   regardless of the order results arrived in.

:func:`evaluate_learning_curve` is the serial composition of the three.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import PerformanceDataset
from repro.ml.metrics import mean_absolute_percentage_error
from repro.utils.rng import check_random_state, spawn_seeds

__all__ = [
    "LearningCurvePoint",
    "LearningCurve",
    "EvalCell",
    "CellResult",
    "plan_learning_curve",
    "evaluate_cell",
    "merge_cell_results",
    "evaluate_learning_curve",
    "compare_models",
]


@dataclass
class LearningCurvePoint:
    """MAPE distribution for one training fraction."""

    fraction: float
    n_train: int
    mapes: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Mean MAPE across sampling repetitions."""
        return float(np.mean(self.mapes))

    @property
    def std(self) -> float:
        """Standard deviation of MAPE across repetitions."""
        return float(np.std(self.mapes))

    @property
    def min(self) -> float:
        """Best (lowest) MAPE observed."""
        return float(np.min(self.mapes))

    @property
    def max(self) -> float:
        """Worst (highest) MAPE observed."""
        return float(np.max(self.mapes))


@dataclass
class LearningCurve:
    """A labelled series of learning-curve points (one line of a figure)."""

    label: str
    points: list[LearningCurvePoint] = field(default_factory=list)

    def mape_at(self, fraction: float) -> float:
        """Mean MAPE at a given training fraction."""
        for point in self.points:
            if abs(point.fraction - fraction) < 1e-12:
                return point.mean
        raise KeyError(f"no point at fraction {fraction} in curve {self.label!r}")

    @property
    def fractions(self) -> list[float]:
        """Training fractions present in the curve."""
        return [p.fraction for p in self.points]

    @property
    def means(self) -> list[float]:
        """Mean MAPE at each fraction."""
        return [p.mean for p in self.points]

    def as_rows(self) -> list[dict]:
        """Flat row dictionaries, convenient for reporting."""
        return [
            {
                "series": self.label,
                "fraction": p.fraction,
                "n_train": p.n_train,
                "mape_mean": p.mean,
                "mape_std": p.std,
                "mape_min": p.min,
                "mape_max": p.max,
            }
            for p in self.points
        ]


@dataclass(frozen=True)
class EvalCell:
    """One ``(series, fraction, repeat)`` unit of learning-curve work.

    A cell is *pure*: evaluating it requires only the dataset it names,
    a model factory resolved from :attr:`factory_key`, and the fields
    below — no shared RNG, no mutable experiment state.  All fields are
    primitives, so cells pickle cheaply across process boundaries.

    Attributes
    ----------
    series:
        Label of the learning curve the cell belongs to.
    factory_key:
        Key under which the scheduling layer resolves the model factory
        (the evaluation layer treats it as opaque; inline callers may
        leave it empty).
    fraction:
        Training fraction of the cell.
    repeat:
        Repeat index within the fraction (``0 .. n_repeats - 1``).
    seed:
        Seed derived at planning time; drives both the train/test split
        and the model's randomness, exactly as the serial loop did.
    min_train:
        Lower bound on the number of training samples.
    dataset_fingerprint:
        Optional fingerprint of the dataset the cell evaluates on (used
        by the scheduling layer to resolve datasets in worker processes).
    cost_hint:
        Estimated relative cost of the cell in arbitrary units
        (``0.0`` = unknown).  Populated by the scheduling layer from its
        cost model (estimator-family weight × ensemble size × fraction)
        and consumed by cost-aware batch shaping — the distributed
        coordinator's adaptive leases pack cells against a budget of
        these units.  Purely advisory: it never affects the cell's
        result, only how cells are grouped for dispatch.
    """

    series: str
    factory_key: str
    fraction: float
    repeat: int
    seed: int
    min_train: int = 3
    dataset_fingerprint: str = ""
    cost_hint: float = 0.0

    @property
    def key(self) -> tuple[str, float, int]:
        """Identity of the cell within its plan: ``(series, fraction, repeat)``.

        The shared join key between cells and results — the merge, the
        process executor's bookkeeping and the distributed coordinator's
        lease/requeue/dedupe tracking all match on it.
        """
        return (self.series, self.fraction, self.repeat)


@dataclass(frozen=True)
class CellResult:
    """Outcome of one :class:`EvalCell`: the split size and held-out MAPE."""

    series: str
    fraction: float
    repeat: int
    n_train: int
    mape: float

    @property
    def key(self) -> tuple[str, float, int]:
        """Join key matching :attr:`EvalCell.key` of the producing cell."""
        return (self.series, self.fraction, self.repeat)


def plan_learning_curve(
    fractions: Sequence[float],
    n_repeats: int,
    *,
    series: str = "model",
    factory_key: str = "",
    min_train: int = 3,
    random_state=0,
    dataset_fingerprint: str = "",
) -> list[EvalCell]:
    """Expand a learning-curve evaluation into independent :class:`EvalCell` tasks.

    Seeds are drawn from one sequential stream (``n_repeats`` per
    fraction, fractions in order), which reproduces exactly the seeds the
    original serial loop consumed — so a plan evaluated cell-by-cell in
    any order merges into the same curve the serial code produced.
    """
    if not fractions:
        raise ValueError("fractions must be non-empty")
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = check_random_state(random_state)
    cells: list[EvalCell] = []
    for fraction in fractions:
        seeds = spawn_seeds(rng, n_repeats)
        for repeat, seed in enumerate(seeds):
            cells.append(EvalCell(
                series=series,
                factory_key=factory_key,
                fraction=float(fraction),
                repeat=repeat,
                seed=seed,
                min_train=min_train,
                dataset_fingerprint=dataset_fingerprint,
            ))
    return cells


def evaluate_cell(
    cell: EvalCell,
    model_factory: Callable[[int], object],
    dataset: PerformanceDataset,
) -> CellResult:
    """Evaluate one cell: split, fit a fresh model, score held-out MAPE."""
    train_idx, test_idx = dataset.train_test_indices(
        train_fraction=cell.fraction, min_train=cell.min_train,
        random_state=cell.seed,
    )
    model = model_factory(cell.seed)
    model.fit(dataset.X[train_idx], dataset.y[train_idx])
    predictions = model.predict(dataset.X[test_idx])
    return CellResult(
        series=cell.series,
        fraction=cell.fraction,
        repeat=cell.repeat,
        n_train=len(train_idx),
        mape=mean_absolute_percentage_error(dataset.y[test_idx], predictions),
    )


def merge_cell_results(
    plan: Sequence[EvalCell],
    results: Iterable[CellResult],
    *,
    label: str | None = None,
) -> LearningCurve:
    """Fold cell results into a :class:`LearningCurve`, in plan order.

    The merge is deterministic: points follow the plan's fraction order
    and each point's MAPE list follows the repeat index, so the curve is
    identical no matter which executor produced the results or in which
    order they arrived.
    """
    if not plan:
        raise ValueError("plan must be non-empty")
    by_key = {r.key: r for r in results}
    curve = LearningCurve(label=label if label is not None else plan[0].series)
    point: LearningCurvePoint | None = None
    for cell in plan:
        try:
            result = by_key[cell.key]
        except KeyError:
            raise ValueError(
                f"missing result for cell {cell.series!r} fraction={cell.fraction} "
                f"repeat={cell.repeat}"
            ) from None
        if point is None or point.fraction != cell.fraction:
            point = LearningCurvePoint(fraction=cell.fraction, n_train=result.n_train)
            curve.points.append(point)
        elif result.n_train != point.n_train:
            # The split size is a deterministic function of the fraction and
            # dataset, so repeats must agree.
            raise RuntimeError(
                f"inconsistent n_train across repeats at fraction {cell.fraction}: "
                f"{result.n_train} != {point.n_train}"
            )
        point.mapes.append(result.mape)
    return curve


def evaluate_learning_curve(
    model_factory: Callable[[int], object],
    dataset: PerformanceDataset,
    *,
    fractions: Sequence[float],
    n_repeats: int = 3,
    min_train: int = 3,
    label: str = "model",
    random_state=0,
    analytical_cache=None,
) -> LearningCurve:
    """MAPE-vs-training-fraction curve for one model family.

    Parameters
    ----------
    model_factory:
        Callable ``factory(seed) -> estimator`` returning a *fresh*,
        unfitted model; called once per (fraction, repeat).
    dataset:
        The performance dataset to learn.
    fractions:
        Training fractions (e.g. ``[0.01, 0.02, 0.04]``).
    n_repeats:
        Number of independent uniform random samplings per fraction.
    min_train:
        Lower bound on the number of training samples.
    label:
        Name of the resulting curve.
    random_state:
        Master seed; per-repeat seeds are spawned deterministically.
    analytical_cache:
        Optional :class:`~repro.analytical.cache.AnalyticalPredictionCache`
        shared with the models the factory produces.  It is warmed with
        the full dataset up front (one vectorized evaluation), so every
        ``(fraction, repeat)`` cell afterwards is pure cache hits.
    """
    if analytical_cache is not None:
        analytical_cache.warm(dataset.X)
    plan = plan_learning_curve(
        fractions, n_repeats, series=label, min_train=min_train,
        random_state=random_state,
    )
    results = [evaluate_cell(cell, model_factory, dataset) for cell in plan]
    return merge_cell_results(plan, results, label=label)


def compare_models(
    factories: dict[str, Callable[[int], object]],
    dataset: PerformanceDataset,
    *,
    fractions_by_model: dict[str, Sequence[float]] | None = None,
    fractions: Sequence[float] | None = None,
    n_repeats: int = 3,
    min_train: int = 3,
    random_state=0,
    analytical_cache=None,
) -> dict[str, LearningCurve]:
    """Learning curves for several model families on the same dataset.

    Either a common ``fractions`` list or a per-model
    ``fractions_by_model`` mapping must be provided (the paper's hybrid
    experiments use different fractions for the pure-ML and hybrid
    models, e.g. 10/15/20% vs 1/2/4% in Figure 5).  An optional shared
    ``analytical_cache`` is forwarded to every per-family evaluation, so
    the analytical model is evaluated once per dataset row across the
    whole comparison.
    """
    if fractions_by_model is None:
        if fractions is None:
            raise ValueError("provide fractions or fractions_by_model")
        fractions_by_model = {name: fractions for name in factories}
    curves: dict[str, LearningCurve] = {}
    for name, factory in factories.items():
        curves[name] = evaluate_learning_curve(
            factory,
            dataset,
            fractions=fractions_by_model[name],
            n_repeats=n_repeats,
            min_train=min_train,
            label=name,
            random_state=random_state,
            analytical_cache=analytical_cache,
        )
    return curves
