"""Training algorithm and convenience constructors.

The paper's training procedure (Sections V and VI): sample a training set
uniformly at random from the configuration space (a given *fraction* of
the full dataset), build the model once offline, then use it for any
number of predictions.  :func:`train_hybrid_model` and
:func:`train_ml_model` wrap that procedure for the two model families the
evaluation compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytical.base import AnalyticalModel
from repro.core.features import PerformanceDataset
from repro.core.hybrid import HybridPerformanceModel
from repro.ml.base import BaseEstimator, clone
from repro.ml.forest import ExtraTreesRegressor
from repro.ml.metrics import mean_absolute_percentage_error
from repro.ml.pipeline import Pipeline
from repro.ml.preprocessing import StandardScaler

__all__ = ["TrainedModel", "train_hybrid_model", "train_ml_model"]


@dataclass
class TrainedModel:
    """A fitted model together with its train/test split and test-set MAPE."""

    model: object
    dataset: PerformanceDataset
    train_indices: np.ndarray
    test_indices: np.ndarray
    mape: float

    @property
    def n_train(self) -> int:
        """Number of training samples used."""
        return len(self.train_indices)


def _fit_and_score(model, dataset: PerformanceDataset, train_fraction: float,
                   min_train: int, random_state) -> TrainedModel:
    train_idx, test_idx = dataset.train_test_indices(
        train_fraction=train_fraction, min_train=min_train, random_state=random_state
    )
    model.fit(dataset.X[train_idx], dataset.y[train_idx])
    predictions = model.predict(dataset.X[test_idx])
    mape = mean_absolute_percentage_error(dataset.y[test_idx], predictions)
    return TrainedModel(model=model, dataset=dataset, train_indices=train_idx,
                        test_indices=test_idx, mape=mape)


def train_hybrid_model(dataset: PerformanceDataset,
                       analytical_model: AnalyticalModel, *,
                       train_fraction: float = 0.02,
                       ml_model: BaseEstimator | None = None,
                       aggregate_analytical: bool = False,
                       bagging_estimators: int = 0,
                       min_train: int = 3,
                       random_state=None) -> TrainedModel:
    """Train a hybrid model on a uniform random fraction of *dataset*.

    Returns the fitted :class:`~repro.core.hybrid.HybridPerformanceModel`
    wrapped with its split and held-out MAPE.
    """
    hybrid = HybridPerformanceModel(
        analytical_model=analytical_model,
        feature_names=dataset.feature_names,
        ml_model=ml_model,
        aggregate_analytical=aggregate_analytical,
        bagging_estimators=bagging_estimators,
        random_state=random_state,
    )
    return _fit_and_score(hybrid, dataset, train_fraction, min_train, random_state)


def train_ml_model(dataset: PerformanceDataset, *,
                   train_fraction: float = 0.1,
                   ml_model: BaseEstimator | None = None,
                   min_train: int = 3,
                   random_state=None) -> TrainedModel:
    """Train a pure ML pipeline (standardization + regressor) on *dataset*.

    This is the paper's baseline: the same regressor as the hybrid model,
    without the analytical feature.
    """
    base = ml_model if ml_model is not None else ExtraTreesRegressor(
        n_estimators=30, random_state=random_state
    )
    pipeline = Pipeline(steps=[("scale", StandardScaler()), ("model", clone(base))])
    return _fit_and_score(pipeline, dataset, train_fraction, min_train, random_state)
