"""Performance datasets: configurations, feature matrices and response times.

Section V of the paper: "We encode information about the applications
input sizes and tuning parameters into feature vectors and use the
execution time as the response variable."  :class:`PerformanceDataset`
is that encoding, carrying the original configuration objects alongside
the numeric matrix so analytical models (which need structured
configurations) and ML models (which need numbers) can both consume it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["PerformanceDataset"]


@dataclass
class PerformanceDataset:
    """A named performance-modeling dataset.

    Attributes
    ----------
    name:
        Human-readable dataset name (e.g. ``"stencil-blocked"``).
    X:
        ``(n_samples, n_features)`` feature matrix.
    y:
        ``(n_samples,)`` execution times in seconds.
    feature_names:
        Column names of ``X`` (subset of the application's modeling vector).
    configs:
        The configuration objects the rows were generated from (optional
        but required by analytical models).
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    feature_names: Sequence[str]
    configs: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {self.X.shape}")
        if self.y.shape != (self.X.shape[0],):
            raise ValueError(
                f"y must have shape ({self.X.shape[0]},), got {self.y.shape}"
            )
        if len(self.feature_names) != self.X.shape[1]:
            raise ValueError(
                f"{len(self.feature_names)} feature names for {self.X.shape[1]} columns"
            )
        if self.configs and len(self.configs) != self.X.shape[0]:
            raise ValueError(
                f"{len(self.configs)} configs for {self.X.shape[0]} samples"
            )
        self.feature_names = list(self.feature_names)

    # ------------------------------------------------------------------ #
    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return self.X.shape[1]

    def train_test_indices(self, *, train_fraction: float | None = None,
                           train_size: int | None = None,
                           min_train: int = 3,
                           random_state=None) -> tuple[np.ndarray, np.ndarray]:
        """Uniform-random train/test index split (the paper's sampling).

        Exactly one of ``train_fraction`` and ``train_size`` must be given.
        The training set never drops below ``min_train`` samples (relevant
        for the paper's 1% fractions on small datasets) and never exceeds
        ``n_samples - 1`` so the test set is non-empty.
        """
        if (train_fraction is None) == (train_size is None):
            raise ValueError("specify exactly one of train_fraction or train_size")
        if train_fraction is not None:
            if not 0.0 < train_fraction < 1.0:
                raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
            train_size = int(round(train_fraction * self.n_samples))
        train_size = int(np.clip(train_size, min_train, self.n_samples - 1))
        rng = check_random_state(random_state)
        perm = rng.permutation(self.n_samples)
        return perm[:train_size], perm[train_size:]

    def subset(self, indices: np.ndarray) -> PerformanceDataset:
        """Dataset restricted to *indices* (configs carried along when present)."""
        indices = np.asarray(indices)
        return PerformanceDataset(
            name=self.name,
            X=self.X[indices],
            y=self.y[indices],
            feature_names=list(self.feature_names),
            configs=[self.configs[i] for i in indices] if self.configs else [],
        )

    def describe(self) -> str:
        """One-line summary used by the experiment reports."""
        return (f"{self.name}: {self.n_samples} configurations x "
                f"{self.n_features} features {tuple(self.feature_names)}, "
                f"time range [{self.y.min():.3e}, {self.y.max():.3e}] s")
