"""Machine presets.

``blue_waters_xe6`` reproduces the node used throughout the paper
(Section III-A): a Cray XE6 dual-socket node with two AMD Interlagos 6276
processors.  Each Interlagos chip has eight Bulldozer modules; each module
has a 16 KB write-through L1 data cache, a 2 MB write-back L2 cache, and
shares an 8 MB write-back L3 with the other modules on the die.

The numbers below (bandwidths, latencies) are representative published
figures for the platform; the reproduction does not depend on their exact
values -- only on the hierarchy shape, which is what the analytical model
and the simulator consume.
"""

from __future__ import annotations

from repro.machine.cache import CacheHierarchy, CacheLevel, MemoryLevel
from repro.machine.node import MachineSpec

__all__ = [
    "blue_waters_xe6",
    "generic_xeon_node",
    "small_embedded_node",
    "MACHINE_PRESETS",
    "get_machine",
]

_GIB = 2**30
_MIB = 2**20
_KIB = 2**10


def blue_waters_xe6() -> MachineSpec:
    """Blue Waters Cray XE6 node: 2x AMD Interlagos 6276, 2.3 GHz, 64 GB."""
    hierarchy = CacheHierarchy(
        levels=(
            CacheLevel(
                name="L1",
                size_bytes=16 * _KIB,
                line_bytes=64,
                bandwidth_bytes_per_s=75e9,
                latency_s=4 / 2.3e9,
                shared_by=1,
                write_allocate=False,  # Interlagos L1d is write-through
            ),
            CacheLevel(
                name="L2",
                size_bytes=2 * _MIB,
                line_bytes=64,
                bandwidth_bytes_per_s=40e9,
                latency_s=21 / 2.3e9,
                shared_by=2,
                write_allocate=True,
            ),
            CacheLevel(
                name="L3",
                size_bytes=8 * _MIB,
                line_bytes=64,
                bandwidth_bytes_per_s=25e9,
                latency_s=65 / 2.3e9,
                shared_by=8,
                write_allocate=True,
            ),
        ),
        memory=MemoryLevel(
            size_bytes=64 * _GIB,
            bandwidth_bytes_per_s=51.2e9,  # 2 channels DDR3-1600 per socket, peak
            latency_s=100e-9,
        ),
    )
    return MachineSpec(
        name="Blue Waters XE6 (2x AMD Interlagos 6276)",
        hierarchy=hierarchy,
        clock_hz=2.3e9,
        flops_per_cycle_per_core=4.0,  # AVX/FMA4 on a Bulldozer core-pair share
        cores_per_socket=8,            # 8 Bulldozer modules per Interlagos die
        sockets=2,
        word_bytes=8,
        stream_bandwidth_bytes_per_s=17e9,  # measured STREAM-triad class per socket
    )


def generic_xeon_node() -> MachineSpec:
    """A generic two-socket Xeon-class node (hardware-change experiments)."""
    hierarchy = CacheHierarchy(
        levels=(
            CacheLevel("L1", 32 * _KIB, 64, 150e9, 4 / 2.6e9, shared_by=1),
            CacheLevel("L2", 1 * _MIB, 64, 80e9, 14 / 2.6e9, shared_by=1),
            CacheLevel("L3", 32 * _MIB, 64, 45e9, 50 / 2.6e9, shared_by=16),
        ),
        memory=MemoryLevel(128 * _GIB, 120e9, 90e-9),
    )
    return MachineSpec(
        name="Generic Xeon node",
        hierarchy=hierarchy,
        clock_hz=2.6e9,
        flops_per_cycle_per_core=16.0,
        cores_per_socket=16,
        sockets=2,
        word_bytes=8,
        stream_bandwidth_bytes_per_s=85e9,
    )


def small_embedded_node() -> MachineSpec:
    """A small cache-starved node, useful to stress the cache model cases."""
    hierarchy = CacheHierarchy(
        levels=(
            CacheLevel("L1", 8 * _KIB, 32, 20e9, 3 / 1.2e9, shared_by=1),
            CacheLevel("L2", 256 * _KIB, 32, 10e9, 12 / 1.2e9, shared_by=4),
        ),
        memory=MemoryLevel(4 * _GIB, 6.4e9, 150e-9),
    )
    return MachineSpec(
        name="Small embedded node",
        hierarchy=hierarchy,
        clock_hz=1.2e9,
        flops_per_cycle_per_core=2.0,
        cores_per_socket=4,
        sockets=1,
        word_bytes=8,
        stream_bandwidth_bytes_per_s=4.5e9,
    )


MACHINE_PRESETS = {
    "blue_waters_xe6": blue_waters_xe6,
    "generic_xeon": generic_xeon_node,
    "small_embedded": small_embedded_node,
}


def get_machine(name: str) -> MachineSpec:
    """Look a machine preset up by name."""
    try:
        factory = MACHINE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; available: {sorted(MACHINE_PRESETS)}"
        ) from None
    return factory()
