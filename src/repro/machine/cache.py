"""Cache-hierarchy description.

The analytical stencil model of Section IV-A walks the cache hierarchy
level by level (Eq. 5--7): for each level it needs the capacity, the line
length in elements, and the inverse bandwidth ``beta`` (seconds per element
transferred from that level).  The FMM memory model (Eq. 10--14) needs the
capacity ``Z`` and line length ``L`` of the cache closest to memory.

Capacities are stored in bytes; helper properties convert to *elements* of
a given word size because the paper's equations are written in elements.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CacheLevel", "MemoryLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy.

    Parameters
    ----------
    name:
        Human-readable level name (``"L1"``, ``"L2"``, ...).
    size_bytes:
        Capacity of the level in bytes (per core for private levels, total
        for shared levels -- see ``shared_by``).
    line_bytes:
        Cache-line length in bytes.
    bandwidth_bytes_per_s:
        Sustained bandwidth for transfers *from this level into the level
        above* (or into registers for L1), in bytes/second.
    latency_s:
        Access latency in seconds (used by the performance simulator for
        latency-bound corrections; the analytical model only uses bandwidth).
    shared_by:
        Number of cores that share this level (1 = private).
    write_allocate:
        Whether a store miss allocates the line (write-allocate policy).
        The paper's Eq. 3 vs Eq. 4 distinction.
    """

    name: str
    size_bytes: int
    line_bytes: int
    bandwidth_bytes_per_s: float
    latency_s: float = 0.0
    shared_by: int = 1
    write_allocate: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size_bytes must be > 0")
        if self.line_bytes <= 0:
            raise ValueError(f"{self.name}: line_bytes must be > 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(f"{self.name}: bandwidth_bytes_per_s must be > 0")
        if self.latency_s < 0:
            raise ValueError(f"{self.name}: latency_s must be >= 0")
        if self.shared_by < 1:
            raise ValueError(f"{self.name}: shared_by must be >= 1")

    def size_elements(self, word_bytes: int = 8) -> int:
        """Capacity in elements of ``word_bytes`` bytes each."""
        return self.size_bytes // word_bytes

    def line_elements(self, word_bytes: int = 8) -> int:
        """Line length ``W`` in elements of ``word_bytes`` bytes each."""
        return max(1, self.line_bytes // word_bytes)

    def beta(self, word_bytes: int = 8) -> float:
        """Inverse bandwidth in seconds per element (the paper's ``beta_mem``)."""
        return word_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class MemoryLevel:
    """Main memory (DRAM) description."""

    size_bytes: int
    bandwidth_bytes_per_s: float
    latency_s: float = 0.0
    name: str = "DRAM"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("DRAM size_bytes must be > 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("DRAM bandwidth_bytes_per_s must be > 0")
        if self.latency_s < 0:
            raise ValueError("DRAM latency_s must be >= 0")

    def beta(self, word_bytes: int = 8) -> float:
        """Inverse bandwidth in seconds per element."""
        return word_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class CacheHierarchy:
    """An ordered cache hierarchy (L1 first) plus main memory."""

    levels: tuple[CacheLevel, ...]
    memory: MemoryLevel

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("CacheHierarchy needs at least one cache level")
        sizes = [lvl.size_bytes for lvl in self.levels]
        if any(b <= a for a, b in zip(sizes, sizes[1:], strict=False)):
            raise ValueError(
                "cache levels must be ordered from smallest (L1) to largest "
                f"(got sizes {sizes})"
            )
        lines = {lvl.line_bytes for lvl in self.levels}
        if len(lines) != 1:
            raise ValueError(
                f"all cache levels must share one line size, got {sorted(lines)}"
            )

    @property
    def n_levels(self) -> int:
        """Number of cache levels."""
        return len(self.levels)

    @property
    def line_bytes(self) -> int:
        """Common cache-line length in bytes."""
        return self.levels[0].line_bytes

    @property
    def last_level(self) -> CacheLevel:
        """The cache level closest to main memory (LLC)."""
        return self.levels[-1]

    def line_elements(self, word_bytes: int = 8) -> int:
        """Line length ``W`` in elements."""
        return self.levels[0].line_elements(word_bytes)

    def level(self, name: str) -> CacheLevel:
        """Look a level up by name (case-insensitive)."""
        for lvl in self.levels:
            if lvl.name.lower() == name.lower():
                return lvl
        raise KeyError(f"no cache level named {name!r}; have "
                       f"{[lvl.name for lvl in self.levels]}")

    def scaled(self, factor: float) -> CacheHierarchy:
        """Return a hierarchy with every capacity scaled by ``factor``.

        Useful for "hardware change" experiments where the same workload is
        re-simulated on a machine with smaller or larger caches.
        """
        if factor <= 0:
            raise ValueError("factor must be > 0")
        new_levels = []
        previous_size = 0
        for lvl in self.levels:
            scaled_size = max(lvl.line_bytes, int(lvl.size_bytes * factor))
            # Preserve the strict L1 < L2 < ... ordering even for extreme
            # factors that would otherwise collapse levels onto one size.
            scaled_size = max(scaled_size, 2 * previous_size)
            new_levels.append(replace(lvl, size_bytes=scaled_size))
            previous_size = scaled_size
        return CacheHierarchy(levels=tuple(new_levels), memory=self.memory)
