"""Single-node machine specification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import CacheHierarchy

__all__ = ["MachineSpec"]


@dataclass(frozen=True)
class MachineSpec:
    """Description of a single compute node.

    This is the only hardware information consumed by the analytical models
    of Section IV and by the performance simulators:

    * ``hierarchy`` -- the data-cache hierarchy and DRAM,
    * ``flops_per_cycle_per_core`` and ``clock_hz`` -- combine to give the
      per-core floating-point throughput from which the time per flop
      ``tc`` is derived,
    * ``cores_per_socket`` / ``sockets`` -- used by the thread-scaling
      models (bandwidth saturates per socket, NUMA penalty across sockets),
    * ``stream_bandwidth_bytes_per_s`` -- the *sustained* (STREAM-like)
      node memory bandwidth; this is the ``1/beta_mem`` that the paper's
      memory terms use, which is lower than the DRAM peak.
    """

    name: str
    hierarchy: CacheHierarchy
    clock_hz: float
    flops_per_cycle_per_core: float
    cores_per_socket: int
    sockets: int = 1
    word_bytes: int = 8
    stream_bandwidth_bytes_per_s: float | None = None

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be > 0")
        if self.flops_per_cycle_per_core <= 0:
            raise ValueError("flops_per_cycle_per_core must be > 0")
        if self.cores_per_socket < 1 or self.sockets < 1:
            raise ValueError("cores_per_socket and sockets must be >= 1")
        if self.word_bytes not in (4, 8):
            raise ValueError("word_bytes must be 4 or 8")
        if (self.stream_bandwidth_bytes_per_s is not None
                and self.stream_bandwidth_bytes_per_s <= 0):
            raise ValueError("stream_bandwidth_bytes_per_s must be > 0")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def n_cores(self) -> int:
        """Total number of cores in the node."""
        return self.cores_per_socket * self.sockets

    @property
    def peak_flops_per_core(self) -> float:
        """Peak floating-point rate of one core (flop/s)."""
        return self.clock_hz * self.flops_per_cycle_per_core

    @property
    def peak_flops(self) -> float:
        """Peak floating-point rate of the whole node (flop/s)."""
        return self.peak_flops_per_core * self.n_cores

    @property
    def tc(self) -> float:
        """Time per floating-point operation on one core, in seconds.

        This is the paper's ``t_c`` in Eq. 8 and 9.
        """
        return 1.0 / self.peak_flops_per_core

    @property
    def memory_bandwidth(self) -> float:
        """Sustained node memory bandwidth (bytes/s)."""
        if self.stream_bandwidth_bytes_per_s is not None:
            return self.stream_bandwidth_bytes_per_s
        return self.hierarchy.memory.bandwidth_bytes_per_s

    @property
    def beta_mem(self) -> float:
        """Inverse sustained memory bandwidth in seconds per element.

        This is the paper's ``beta_mem`` in Eq. 12 and 14.
        """
        return self.word_bytes / self.memory_bandwidth

    @property
    def line_elements(self) -> int:
        """Cache-line length ``W`` (or ``L``) in elements."""
        return self.hierarchy.line_elements(self.word_bytes)

    @property
    def machine_balance(self) -> float:
        """Bytes of memory traffic per flop sustainable at peak (B/F)."""
        return self.memory_bandwidth / self.peak_flops

    def cache_beta(self, level_index: int) -> float:
        """Inverse bandwidth of cache level *level_index* (0 = L1), s/element."""
        return self.hierarchy.levels[level_index].beta(self.word_bytes)

    def with_hierarchy(self, hierarchy: CacheHierarchy) -> MachineSpec:
        """Return a copy of this spec with a different cache hierarchy."""
        return MachineSpec(
            name=self.name,
            hierarchy=hierarchy,
            clock_hz=self.clock_hz,
            flops_per_cycle_per_core=self.flops_per_cycle_per_core,
            cores_per_socket=self.cores_per_socket,
            sockets=self.sockets,
            word_bytes=self.word_bytes,
            stream_bandwidth_bytes_per_s=self.stream_bandwidth_bytes_per_s,
        )

    def describe(self) -> str:
        """Multi-line human-readable summary of the node."""
        lines = [
            f"Machine: {self.name}",
            f"  sockets x cores : {self.sockets} x {self.cores_per_socket} "
            f"= {self.n_cores} cores",
            f"  clock           : {self.clock_hz / 1e9:.2f} GHz",
            f"  peak flops/core : {self.peak_flops_per_core / 1e9:.2f} Gflop/s",
            f"  sustained BW    : {self.memory_bandwidth / 1e9:.1f} GB/s",
            f"  machine balance : {self.machine_balance:.3f} B/F",
        ]
        for lvl in self.hierarchy.levels:
            shared = f", shared by {lvl.shared_by}" if lvl.shared_by > 1 else ""
            lines.append(
                f"  {lvl.name:4s}: {lvl.size_bytes // 1024} KiB, "
                f"{lvl.line_bytes} B lines, "
                f"{lvl.bandwidth_bytes_per_s / 1e9:.1f} GB/s{shared}"
            )
        mem = self.hierarchy.memory
        lines.append(
            f"  DRAM: {mem.size_bytes // 2**30} GiB, "
            f"{mem.bandwidth_bytes_per_s / 1e9:.1f} GB/s peak"
        )
        return "\n".join(lines)
