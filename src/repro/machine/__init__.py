"""Machine descriptions consumed by the analytical models and simulators.

A :class:`~repro.machine.node.MachineSpec` captures the properties of a
single compute node that the paper's analytical models (Section IV) need:
the cache hierarchy (sizes, line length, bandwidths/latencies per level),
main-memory bandwidth, the floating-point throughput per core, and the
socket/core topology used by the thread-scaling models.

The :mod:`repro.machine.presets` module provides the Blue Waters XE6 node
(2x AMD Interlagos 6276) used throughout the paper, plus a couple of
alternative machines useful for "hardware change" experiments.
"""

from repro.machine.cache import CacheHierarchy, CacheLevel, MemoryLevel
from repro.machine.node import MachineSpec
from repro.machine.presets import (
    MACHINE_PRESETS,
    blue_waters_xe6,
    generic_xeon_node,
    get_machine,
    small_embedded_node,
)

__all__ = [
    "CacheLevel",
    "MemoryLevel",
    "CacheHierarchy",
    "MachineSpec",
    "blue_waters_xe6",
    "generic_xeon_node",
    "small_embedded_node",
    "MACHINE_PRESETS",
    "get_machine",
]
