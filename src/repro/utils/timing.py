"""Lightweight wall-clock timing utilities used by the executable engines."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "timeit_median"]


@dataclass
class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> Timer:
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed time in seconds."""
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


def timeit_median(func, *, repeats: int = 3, **kwargs) -> float:
    """Run ``func(**kwargs)`` *repeats* times and return the median runtime.

    The median is robust against one-off interference (page faults, GC),
    which matters when timing short kernels.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        func(**kwargs)
        samples.append(time.perf_counter() - t0)
    samples.sort()
    mid = len(samples) // 2
    if len(samples) % 2:
        return samples[mid]
    return 0.5 * (samples[mid - 1] + samples[mid])
