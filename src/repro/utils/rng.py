"""Random-number-generator handling.

Every stochastic component in :mod:`repro` (tree learners, bootstrap
sampling, dataset noise, training-set sampling) accepts a ``random_state``
argument and resolves it through :func:`check_random_state`, so results are
reproducible when an integer seed is supplied.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = ["check_random_state", "spawn_seeds"]


def check_random_state(random_state) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *random_state*.

    Parameters
    ----------
    random_state : None, int, numpy.random.Generator or numpy.random.RandomState
        * ``None`` — a freshly seeded generator (non-deterministic).
        * int — a deterministic generator seeded with that value.
        * ``Generator`` — returned unchanged.
        * ``RandomState`` — wrapped into a ``Generator`` sharing its bit
          stream so legacy callers interoperate.

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, numbers.Integral):
        return np.random.default_rng(int(random_state))
    if isinstance(random_state, np.random.RandomState):
        return np.random.default_rng(random_state.randint(0, 2**31 - 1))
    raise TypeError(
        f"random_state must be None, an int, a numpy Generator or RandomState; "
        f"got {type(random_state).__name__}"
    )


def spawn_seeds(random_state, n: int) -> list[int]:
    """Draw *n* independent child seeds from *random_state*.

    Used by ensemble estimators to give each base estimator its own
    deterministic stream.
    """
    rng = check_random_state(random_state)
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]
