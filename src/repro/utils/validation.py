"""Input-validation helpers shared by the ML substrate and the core library.

These mirror the checks performed by scikit-learn's ``check_array`` /
``check_X_y`` utilities closely enough for the estimators in
:mod:`repro.ml`, without pulling in scikit-learn itself.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_array",
    "check_X_y",
    "check_positive",
    "check_in_range",
    "check_is_fitted",
    "NotFittedError",
]


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


def check_array(X, *, ensure_2d: bool = True, dtype=np.float64, name: str = "X") -> np.ndarray:
    """Validate an input array.

    Converts *X* to a contiguous ndarray of *dtype*, rejects NaN/inf values
    and (optionally) enforces 2-D shape with at least one sample and one
    feature.
    """
    arr = np.asarray(X, dtype=dtype)
    if ensure_2d:
        if arr.ndim == 1:
            raise ValueError(
                f"{name} must be 2-D (n_samples, n_features); got a 1-D array. "
                "Reshape with X.reshape(-1, 1) for a single feature."
            )
        if arr.ndim != 2:
            raise ValueError(f"{name} must be 2-D, got {arr.ndim}-D")
        if arr.shape[0] == 0:
            raise ValueError(f"{name} has 0 samples")
        if arr.shape[1] == 0:
            raise ValueError(f"{name} has 0 features")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / target vector pair."""
    X = check_array(X, ensure_2d=True, name="X")
    y = np.asarray(y, dtype=np.float64)
    if y.ndim == 2 and y.shape[1] == 1:
        y = y.ravel()
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains NaN or infinite values")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}"
        )
    return X, y


def check_positive(value, name: str, *, strict: bool = True):
    """Check that a scalar is positive (strictly, by default)."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(value, name: str, low, high, *, inclusive: bool = True):
    """Check that ``low <= value <= high`` (or strict inequalities)."""
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return value


def check_is_fitted(estimator, attributes) -> None:
    """Raise :class:`NotFittedError` unless *estimator* has all *attributes* set."""
    if isinstance(attributes, str):
        attributes = [attributes]
    missing = [a for a in attributes if getattr(estimator, a, None) is None]
    if missing:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; "
            f"call fit() before using this method (missing: {', '.join(missing)})"
        )
