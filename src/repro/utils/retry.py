"""Shared retry-with-backoff policy for fallible I/O paths.

Every network- or disk-touching seam of the system (the HTTP object-store
client, the fleet worker's connect/reconnect path, the worker's artifact
bootstrap) retries transient failures through one :class:`RetryPolicy`
instead of ad-hoc sleep loops, so the backoff shape, the per-attempt
timeout and the retry budget are tunable in one place and observable
everywhere (``on_retry`` is the hook the callers use to count and log
every degradation — a retry is never silent).

The policy is deliberately dependency-free and deterministic under test:
``sleep`` and ``rng`` are injectable, so unit tests assert the exact
delay sequence without waiting for it.

Beyond the caller's ``on_retry`` hook, every scheduled retry also lands
on the shared telemetry plane (:mod:`repro.obs`): the process-wide
``repro_retry_attempts_total{error=...}`` counter increments and, when
the call runs inside an active trace span, a ``retry`` event is stamped
onto it — so backoff storms are visible on any ``/metrics`` endpoint
and in ``--trace`` dumps without each call site re-instrumenting.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.obs.metrics import REGISTRY
from repro.obs.tracing import TRACER

__all__ = ["RetryPolicy", "DEFAULT_POLICY"]

#: Process-wide count of scheduled retries, labeled by exception type
#: (a small closed set: the transport errors ``retry_on`` admits).
RETRY_ATTEMPTS = REGISTRY.counter(
    "repro_retry_attempts_total",
    "Retries scheduled by RetryPolicy.call, by exception type",
    labelnames=("error",))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + jitter with an attempt and wall-clock budget.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first one (``1`` = no retries).
    base_delay:
        Delay before the first retry, in seconds.
    multiplier:
        Backoff factor between consecutive retries.
    max_delay:
        Upper bound on a single backoff delay.
    jitter:
        Fraction of each delay that is randomized (``0.5`` means the
        actual delay is uniform in ``[0.5 * d, d]``) — a fleet of workers
        retrying the same dead store must not stampede in lockstep.
    max_elapsed:
        Optional wall-clock budget across all attempts; once exceeded no
        further retry is scheduled even when attempts remain.
    attempt_timeout:
        Advisory per-attempt timeout in seconds.  The policy cannot
        interrupt an arbitrary callable, so I/O callers feed this into
        their transport (e.g. ``urllib``'s ``timeout=``) — it lives here
        so one object describes the complete failure behaviour.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    max_elapsed: float | None = None
    attempt_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The backoff delay before each retry (``max_attempts - 1`` values)."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            bounded = min(delay, self.max_delay)
            if self.jitter and rng is not None:
                bounded *= 1.0 - self.jitter * rng.random()
            yield bounded
            delay *= self.multiplier

    def call(self, fn: Callable, *,
             retry_on: tuple[type[BaseException], ...] = (OSError,),
             giveup: Callable[[BaseException], bool] | None = None,
             on_retry: Callable[[int, BaseException, float], None] | None = None,
             sleep: Callable[[float], None] = time.sleep,
             rng: random.Random | None = None,
             clock: Callable[[], float] = time.monotonic):
        """Run *fn* until it succeeds or the retry budget is exhausted.

        Only exceptions matching *retry_on* (and for which *giveup*, when
        given, returns false) are retried; anything else propagates
        immediately.  *on_retry(attempt, exc, delay)* fires before every
        backoff sleep — callers use it to count and log the degradation.
        The exception of the final attempt is re-raised unchanged, so
        existing ``except`` clauses around the call keep working.
        """
        if rng is None:
            rng = random.Random()
        start = clock()
        delays = self.delays(rng)
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as exc:
                if giveup is not None and giveup(exc):
                    raise
                delay = next(delays, None)
                if delay is None:
                    raise
                if (self.max_elapsed is not None
                        and clock() - start + delay > self.max_elapsed):
                    raise
                RETRY_ATTEMPTS.labels(error=type(exc).__name__).inc()
                TRACER.event("retry", attempt=attempt,
                             error=type(exc).__name__, delay=round(delay, 4))
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                sleep(delay)


#: The system-wide default: 3 attempts, 100 ms first backoff, 2x growth.
DEFAULT_POLICY = RetryPolicy()
