"""Shared utilities: validation helpers, random-number handling, timing."""

from repro.utils.rng import check_random_state
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_is_fitted,
    check_positive,
    check_X_y,
)

__all__ = [
    "check_random_state",
    "Timer",
    "check_array",
    "check_X_y",
    "check_positive",
    "check_in_range",
    "check_is_fitted",
]
