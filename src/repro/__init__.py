"""repro — Learning with Analytical Models.

A from-scratch reproduction of Ibeid et al., *Learning with Analytical
Models* (2019): hybrid analytical + machine-learning performance
prediction for HPC applications, together with every substrate the paper
depends on (a PATUS-like stencil engine, an ExaFMM-like fast multipole
method, analytical models of both, a scikit-learn-equivalent ML stack, a
Blue-Waters-class machine model and per-application performance
simulators).

Quick start
-----------
>>> from repro import datasets, core, analytical
>>> data = datasets.blocked_small_grid_dataset(max_configs=400)
>>> model = core.HybridPerformanceModel(
...     analytical_model=analytical.StencilAnalyticalModel(),
...     feature_names=data.feature_names, random_state=0)
>>> train, test = data.train_test_indices(train_fraction=0.02, random_state=0)
>>> _ = model.fit(data.X[train], data.y[train])
>>> predictions = model.predict(data.X[test])

See ``examples/`` and ``EXPERIMENTS.md`` for the full evaluation.
"""

from repro import analytical, core, datasets, experiments, fmm, machine, ml, parallel, stencil, utils
from repro.core import HybridPerformanceModel, PerformanceDataset

__version__ = "1.0.0"

__all__ = [
    "analytical",
    "core",
    "datasets",
    "experiments",
    "fmm",
    "machine",
    "ml",
    "parallel",
    "stencil",
    "utils",
    "HybridPerformanceModel",
    "PerformanceDataset",
    "__version__",
]
