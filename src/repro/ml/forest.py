"""Tree ensembles: random forests and extremely randomized trees.

Both estimators average many :class:`~repro.ml.tree.DecisionTreeRegressor`
instances; they differ in how individual trees are randomized:

* **Random forest** (Breiman): each tree is trained on a bootstrap sample
  of the training set and, at every split, only a random subset of the
  features is examined with the exhaustive ``"best"`` splitter.
* **Extra trees** (Geurts et al.): trees are trained on the whole training
  set (no bootstrap by default) and split thresholds are drawn uniformly
  at random (``"random"`` splitter), which further reduces variance.

Extra trees is the model the paper selects for its hybrid approach after
the comparison in Figure 3.

Fitting defaults to the level-synchronous ``"batched"`` engine
(:mod:`repro.ml._batched`), which grows all trees together one depth
level at a time; ``tree_method="hist"`` selects its histogram-binned
sibling (:mod:`repro.ml._hist`) that scans quantile-bin boundaries
instead of distinct thresholds.  Prediction always goes through a
:class:`PackedForest` (:mod:`repro.ml._packed`), descending every tree
for every query row in a single vectorized traversal.  The per-tree
engines (``"stack"``, ``"legacy"``) remain available through the
``engine`` parameter; the ``"legacy"`` engine also restores the original
Python prediction loop so benchmarks can time the seed implementation
end to end.
"""

from __future__ import annotations

import numpy as np

from repro.ml._packed import PackedForest
from repro.ml.base import BaseEstimator, RegressorMixin
from repro.ml.engine import get_batched_builder, resolve_build_engine
from repro.ml.tree import DecisionTreeRegressor
from repro.parallel.threadpool import parallel_map
from repro.utils.rng import check_random_state, spawn_seeds
from repro.utils.validation import check_array, check_is_fitted, check_X_y

__all__ = ["RandomForestRegressor", "ExtraTreesRegressor", "BaseForestRegressor"]


class BaseForestRegressor(BaseEstimator, RegressorMixin):
    """Shared fitting/prediction machinery for tree ensembles."""

    # Subclasses fix these two class attributes.
    _splitter = "best"
    _default_bootstrap = True

    def __init__(
        self,
        *,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool | None = None,
        oob_score: bool = False,
        n_jobs: int = 1,
        random_state=None,
        engine: str | None = None,
        tree_method: str | None = None,
        max_bins: int = 256,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.n_jobs = n_jobs
        self.random_state = random_state
        self.engine = engine
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.estimators_: list[DecisionTreeRegressor] | None = None
        self.packed_: PackedForest | None = None
        self.n_features_in_: int | None = None
        self.oob_prediction_: np.ndarray | None = None
        self.oob_score_: float | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X, y) -> BaseForestRegressor:
        """Fit ``n_estimators`` randomized trees."""
        X, y = check_X_y(X, y)
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        engine = resolve_build_engine(self.tree_method, self.engine, kind="forest")
        self.n_features_in_ = X.shape[1]
        bootstrap = self._default_bootstrap if self.bootstrap is None else self.bootstrap
        if self.oob_score and not bootstrap:
            raise ValueError("oob_score requires bootstrap=True")
        n = X.shape[0]
        seeds = spawn_seeds(self.random_state, 2 * self.n_estimators)
        tree_seeds = seeds[: self.n_estimators]
        sample_seeds = seeds[self.n_estimators:]

        sample_sets: list[np.ndarray] = []
        for i in range(self.n_estimators):
            if bootstrap:
                rng = check_random_state(sample_seeds[i])
                sample_sets.append(rng.integers(0, n, size=n))
            else:
                sample_sets.append(np.arange(n))

        if engine in ("batched", "hist"):
            build, extra = get_batched_builder(engine, self.max_bins)
            template = DecisionTreeRegressor(max_features=self.max_features,
                                             max_bins=self.max_bins)
            trees = build(
                X, y,
                sample_sets=sample_sets,
                seeds=tree_seeds,
                splitter=self._splitter,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=template._resolve_max_features(X.shape[1]),
                min_impurity_decrease=0.0,
                **extra,
            )
            self.estimators_ = []
            for i, tree in enumerate(trees):
                shell = self._make_tree(tree_seeds[i])
                shell.tree_ = tree
                shell.n_features_in_ = X.shape[1]
                self.estimators_.append(shell)
        else:
            def _fit_one(i: int) -> DecisionTreeRegressor:
                tree = self._make_tree(tree_seeds[i], engine=engine)
                idx = sample_sets[i]
                return tree.fit(X[idx], y[idx])

            self.estimators_ = parallel_map(_fit_one, range(self.n_estimators),
                                            n_jobs=self.n_jobs, chunked=True)

        self.packed_ = None if engine == "legacy" else PackedForest(
            [est.tree_ for est in self.estimators_])

        if self.oob_score:
            self._compute_oob(X, y, sample_sets)
        return self

    def _make_tree(self, seed, engine: str | None = None) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            splitter=self._splitter,
            random_state=seed,
            engine=engine,
            max_bins=self.max_bins,
        )

    def predict(self, X) -> np.ndarray:
        """Average the predictions of all trees."""
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but the forest was fitted with "
                f"{self.n_features_in_}"
            )
        if self.packed_ is not None:
            return self.packed_.predict(X)
        preds = np.zeros(X.shape[0], dtype=np.float64)
        for tree in self.estimators_:
            preds += tree.tree_.predict(X)
        return preds / len(self.estimators_)

    def predict_std(self, X) -> np.ndarray:
        """Per-sample standard deviation across trees (ensemble uncertainty)."""
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if self.packed_ is not None:
            return self.packed_.predict_std(X)
        all_preds = np.stack([tree.tree_.predict(X) for tree in self.estimators_])
        return all_preds.std(axis=0)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-based importances over the ensemble."""
        check_is_fitted(self, "estimators_")
        importances = np.zeros(self.n_features_in_, dtype=np.float64)
        for tree in self.estimators_:
            importances += tree.feature_importances_
        importances /= len(self.estimators_)
        total = importances.sum()
        return importances / total if total > 0 else importances

    # ------------------------------------------------------------------ #
    def _compute_oob(self, X: np.ndarray, y: np.ndarray,
                     sample_sets: list[np.ndarray]) -> None:
        from repro.ml.metrics import r2_score

        n = X.shape[0]
        oob_mask = np.ones((n, len(self.estimators_)), dtype=bool)
        for i, idx in enumerate(sample_sets):
            oob_mask[idx, i] = False
        if self.packed_ is not None:
            all_preds = self.packed_.predict_all(X)
            sums = np.where(oob_mask, all_preds, 0.0).sum(axis=1)
            counts = oob_mask.sum(axis=1).astype(np.float64)
        else:
            sums = np.zeros(n)
            counts = np.zeros(n)
            for i, tree in enumerate(self.estimators_):
                mask = oob_mask[:, i]
                if not np.any(mask):
                    continue
                sums[mask] += tree.tree_.predict(X[mask])
                counts[mask] += 1
        covered = counts > 0
        oob = np.full(n, np.nan)
        oob[covered] = sums[covered] / counts[covered]
        self.oob_prediction_ = oob
        if np.all(covered):
            self.oob_score_ = r2_score(y, oob)
        elif np.any(covered):
            self.oob_score_ = r2_score(y[covered], oob[covered])
        else:
            self.oob_score_ = np.nan


class RandomForestRegressor(BaseForestRegressor):
    """Breiman random forest: bootstrap + best-split trees on feature subsets."""

    _splitter = "best"
    _default_bootstrap = True


class ExtraTreesRegressor(BaseForestRegressor):
    """Extremely randomized trees: random thresholds, no bootstrap by default.

    This is the estimator the paper's hybrid model builds on (Section V:
    "extra trees model is the best performing").
    """

    _splitter = "random"
    _default_bootstrap = False

    def __init__(
        self,
        *,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=1.0,
        bootstrap: bool | None = None,
        oob_score: bool = False,
        n_jobs: int = 1,
        random_state=None,
        engine: str | None = None,
        tree_method: str | None = None,
        max_bins: int = 256,
    ) -> None:
        super().__init__(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            bootstrap=bootstrap,
            oob_score=oob_score,
            n_jobs=n_jobs,
            random_state=random_state,
            engine=engine,
            tree_method=tree_method,
            max_bins=max_bins,
        )
