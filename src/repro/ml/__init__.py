"""From-scratch machine-learning substrate.

The paper (Section V) uses scikit-learn's decision-tree, random-forest and
extremely-randomized-trees (extra-trees) regressors, standardization
preprocessing, uniform random training-set sampling, and MAPE scoring; its
hybrid model (Section VI) additionally uses stacking and bagging ensemble
methods.  This package implements all of those components on NumPy only,
with a scikit-learn-compatible ``fit``/``predict`` interface so that the
core library and experiments read like the paper's methodology.

Estimators
----------
* :class:`~repro.ml.tree.DecisionTreeRegressor` — CART with variance
  (MSE) reduction splits.
* :class:`~repro.ml.forest.RandomForestRegressor` — bootstrapped trees with
  per-split feature subsampling.
* :class:`~repro.ml.forest.ExtraTreesRegressor` — extremely randomized
  trees (random split thresholds), the paper's best performer.
* :class:`~repro.ml.bagging.BaggingRegressor` — bootstrap aggregation of an
  arbitrary base estimator.
* :class:`~repro.ml.stacking.StackingRegressor` — stacked generalization.
* :class:`~repro.ml.linear.LinearRegression`, :class:`~repro.ml.linear.Ridge`
  — linear baselines.
* :class:`~repro.ml.neighbors.KNeighborsRegressor` — distance-based baseline.
"""

from repro.ml._packed import PackedForest
from repro.ml.bagging import BaggingRegressor
from repro.ml.base import BaseEstimator, RegressorMixin, TransformerMixin, clone
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.engine import get_default_engines, set_default_engines, use_engines
from repro.ml.forest import ExtraTreesRegressor, RandomForestRegressor
from repro.ml.linear import LinearRegression, Ridge
from repro.ml.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    cross_val_score,
    train_test_split,
)
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.pipeline import Pipeline, make_pipeline
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.stacking import StackingRegressor
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "RegressorMixin",
    "TransformerMixin",
    "clone",
    "get_default_engines",
    "set_default_engines",
    "use_engines",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "ExtraTreesRegressor",
    "PackedForest",
    "BaggingRegressor",
    "GradientBoostingRegressor",
    "StackingRegressor",
    "LinearRegression",
    "Ridge",
    "KNeighborsRegressor",
    "StandardScaler",
    "MinMaxScaler",
    "Pipeline",
    "make_pipeline",
    "mean_absolute_percentage_error",
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "train_test_split",
    "KFold",
    "cross_val_score",
    "ParameterGrid",
    "GridSearchCV",
]
