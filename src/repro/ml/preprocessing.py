"""Feature preprocessing transformers.

Section V: "we apply preprocessing transformation to a standard Gaussian
distribution with zero mean and unit variance" — that is
:class:`StandardScaler`.  :class:`MinMaxScaler` is provided as an
alternative used by the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.utils.validation import check_array, check_is_fitted

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled, so
    transforming never divides by zero.
    """

    def __init__(self, *, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y=None) -> StandardScaler:
        """Learn per-feature mean and standard deviation."""
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        """Standardize *X* with the fitted statistics."""
        check_is_fitted(self, ["mean_", "scale_"])
        X = check_array(X)
        self._check_n_features(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        """Map standardized data back to the original scale."""
        check_is_fitted(self, ["mean_", "scale_"])
        X = check_array(X)
        self._check_n_features(X)
        return X * self.scale_ + self.mean_

    def _check_n_features(self, X: np.ndarray) -> None:
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but {type(self).__name__} was "
                f"fitted with {self.n_features_in_}"
            )


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale features to a given range (default ``[0, 1]``).

    Constant features map to the lower bound of the range.
    """

    def __init__(self, *, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        self.feature_range = feature_range
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y=None) -> MinMaxScaler:
        """Learn per-feature min and max."""
        lo, hi = self.feature_range
        if lo >= hi:
            raise ValueError(f"feature_range must be increasing, got {self.feature_range}")
        X = check_array(X)
        self.n_features_in_ = X.shape[1]
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        """Scale *X* into ``feature_range``."""
        check_is_fitted(self, ["data_min_", "data_max_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but {type(self).__name__} was "
                f"fitted with {self.n_features_in_}"
            )
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        unit = (X - self.data_min_) / span
        return unit * (hi - lo) + lo

    def inverse_transform(self, X) -> np.ndarray:
        """Map scaled data back to the original range."""
        check_is_fitted(self, ["data_min_", "data_max_"])
        X = check_array(X)
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        unit = (X - lo) / (hi - lo)
        return unit * span + self.data_min_
