"""Linear regression baselines.

Not used by the paper's headline experiments, but valuable as cheap
sanity-check baselines in the ablation benchmarks: a linear model cannot
capture the strongly non-linear cache-transition behaviour of either
application, so the tree ensembles should beat it comfortably.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin
from repro.utils.validation import check_array, check_is_fitted, check_X_y

__all__ = ["LinearRegression", "Ridge"]


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares fitted via the (rank-safe) lstsq solver."""

    def __init__(self, *, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y) -> LinearRegression:
        """Fit the least-squares coefficients."""
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        if self.fit_intercept:
            A = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            A = X
        coef, *_ = np.linalg.lstsq(A, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = coef[:-1]
            self.intercept_ = float(coef[-1])
        else:
            self.coef_ = coef
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        """Evaluate the fitted linear function."""
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """L2-regularized linear regression (closed form normal equations)."""

    def __init__(self, *, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y) -> Ridge:
        """Solve the regularized normal equations."""
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        d = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        """Evaluate the fitted ridge model."""
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_
