"""Regression metrics.

Mean Absolute Percentage Error (MAPE) is the score the paper reports in
every figure; the others are provided for completeness and used by the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_absolute_percentage_error",
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "median_absolute_percentage_error",
]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred have different shapes: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty arrays passed to a metric")
    if not (np.all(np.isfinite(y_true)) and np.all(np.isfinite(y_pred))):
        raise ValueError("metrics require finite y_true and y_pred")
    return y_true, y_pred


def mean_absolute_percentage_error(y_true, y_pred, *, as_percent: bool = True) -> float:
    """Mean Absolute Percentage Error.

    ``MAPE = mean(|y_true - y_pred| / max(|y_true|, eps))``, reported in
    percent by default (as in the paper's figures).  Targets are execution
    times and therefore strictly positive in practice; the ``eps`` guard
    only protects against degenerate synthetic inputs.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    eps = np.finfo(np.float64).eps
    ratio = np.abs(y_true - y_pred) / np.maximum(np.abs(y_true), eps)
    mape = float(np.mean(ratio))
    return 100.0 * mape if as_percent else mape


def median_absolute_percentage_error(y_true, y_pred, *, as_percent: bool = True) -> float:
    """Median Absolute Percentage Error (robust companion to MAPE)."""
    y_true, y_pred = _validate(y_true, y_pred)
    eps = np.finfo(np.float64).eps
    ratio = np.abs(y_true - y_pred) / np.maximum(np.abs(y_true), eps)
    mdape = float(np.median(ratio))
    return 100.0 * mdape if as_percent else mdape


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean Absolute Error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean Squared Error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root Mean Squared Error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination R².

    Returns 0.0 when ``y_true`` is constant and predictions are exact, and
    a large negative value when they are not (matching common convention).
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res == 0.0 else -np.inf
    return 1.0 - ss_res / ss_tot
