"""Transformer/estimator pipeline.

Used throughout the experiments to chain the paper's standardization step
(:class:`~repro.ml.preprocessing.StandardScaler`) with a regressor, so the
scaling statistics are always learned from the training split only.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, clone
from repro.utils.validation import check_is_fitted

__all__ = ["Pipeline", "make_pipeline"]


class Pipeline(BaseEstimator, RegressorMixin):
    """Chain transformers with a final estimator.

    Parameters
    ----------
    steps:
        List of ``(name, estimator)`` pairs; all but the last must expose
        ``fit``/``transform``, the last must expose ``fit``/``predict``.
    """

    def __init__(self, *, steps: list[tuple[str, BaseEstimator]]) -> None:
        self.steps = steps
        self.steps_: list[tuple[str, BaseEstimator]] | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X, y=None) -> Pipeline:
        """Fit each transformer in order, then the final estimator."""
        self._validate()
        fitted: list[tuple[str, BaseEstimator]] = []
        Xt = X
        for name, step in self.steps[:-1]:
            step = clone(step)
            Xt = step.fit_transform(Xt, y)
            fitted.append((name, step))
        final_name, final = self.steps[-1]
        final = clone(final)
        final.fit(Xt, y)
        fitted.append((final_name, final))
        self.steps_ = fitted
        return self

    def _transform(self, X) -> np.ndarray:
        check_is_fitted(self, "steps_")
        Xt = X
        for _, step in self.steps_[:-1]:
            Xt = step.transform(Xt)
        return Xt

    def predict(self, X) -> np.ndarray:
        """Transform *X* through the pipeline and predict with the final step."""
        Xt = self._transform(X)
        return self.steps_[-1][1].predict(Xt)

    def transform(self, X) -> np.ndarray:
        """Apply all transformer steps (requires the final step to transform too)."""
        Xt = self._transform(X)
        final = self.steps_[-1][1]
        if not hasattr(final, "transform"):
            raise AttributeError("final pipeline step does not support transform")
        return final.transform(Xt)

    @property
    def named_steps(self) -> dict[str, BaseEstimator]:
        """Mapping of step name to the fitted step."""
        check_is_fitted(self, "steps_")
        return dict(self.steps_)

    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if not self.steps:
            raise ValueError("Pipeline needs at least one step")
        names = [name for name, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names: {names}")
        for name, step in self.steps[:-1]:
            if not hasattr(step, "transform"):
                raise TypeError(f"intermediate step {name!r} must implement transform")
        final_name, final = self.steps[-1]
        if not hasattr(final, "predict") and not hasattr(final, "transform"):
            raise TypeError(f"final step {final_name!r} must implement predict or transform")


def make_pipeline(*estimators: BaseEstimator) -> Pipeline:
    """Build a :class:`Pipeline` with auto-generated step names."""
    if not estimators:
        raise ValueError("make_pipeline needs at least one estimator")
    names = []
    counts: dict[str, int] = {}
    for est in estimators:
        base = type(est).__name__.lower()
        counts[base] = counts.get(base, 0) + 1
        names.append(base if counts[base] == 1 else f"{base}-{counts[base]}")
    return Pipeline(steps=list(zip(names, estimators, strict=True)))
