"""Gradient-boosted regression trees.

Not used by the paper's headline experiments (which pick extra trees), but
a natural additional baseline for the ablation benchmarks: boosting builds
an additive model of shallow trees, which behaves very differently from
variance-reducing ensembles at tiny training sizes.

Prediction packs the fitted stages into a single
:class:`~repro.ml._packed.PackedForest` arena at the end of ``fit``, so
``predict``/``staged_predict`` descend every stage for every query row in
one vectorized traversal instead of looping over stage estimators in
Python.
"""

from __future__ import annotations

import numpy as np

from repro.ml._packed import PackedForest
from repro.ml.base import BaseEstimator, RegressorMixin
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import spawn_seeds
from repro.utils.validation import check_array, check_is_fitted, check_X_y

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Least-squares gradient boosting with CART base learners.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages.
    learning_rate:
        Shrinkage applied to each stage's contribution.
    max_depth:
        Depth of the shallow base trees.
    subsample:
        Fraction of the training set drawn (without replacement) for each
        stage; values < 1 give stochastic gradient boosting.
    min_samples_leaf:
        Minimum samples per leaf of the base trees.
    random_state:
        Seed for the per-stage subsampling and tree randomness.
    tree_method:
        ``None`` (defer to the engine defaults), ``"exact"`` or
        ``"hist"`` — forwarded to every stage's base tree (see
        :class:`~repro.ml.tree.DecisionTreeRegressor`).
    max_bins:
        Quantile bins per feature for ``tree_method="hist"``.
    """

    def __init__(self, *, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 3, subsample: float = 1.0,
                 min_samples_leaf: int = 1, random_state=None,
                 tree_method: str | None = None, max_bins: int = 256) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.estimators_: list[DecisionTreeRegressor] | None = None
        self.packed_: PackedForest | None = None
        self.init_prediction_: float | None = None
        self.train_score_: list[float] | None = None
        self.n_features_in_: int | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X, y) -> GradientBoostingRegressor:
        """Fit the boosting stages to the least-squares residuals."""
        X, y = check_X_y(X, y)
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {self.subsample}")
        self.n_features_in_ = X.shape[1]
        n = X.shape[0]

        self.init_prediction_ = float(y.mean())
        current = np.full(n, self.init_prediction_)
        seeds = spawn_seeds(self.random_state, self.n_estimators)
        self.estimators_ = []
        self.train_score_ = []
        n_sub = max(1, int(round(self.subsample * n)))

        # With histogram stage trees, quantize the feature matrix once up
        # front instead of once per stage (residuals change, X does not).
        from repro.ml.engine import resolve_build_engine

        binned = None
        if resolve_build_engine(self.tree_method, None, kind="tree") == "hist":
            from repro.ml._hist import bin_dataset

            binned = bin_dataset(X, self.max_bins)

        for stage in range(self.n_estimators):
            residual = y - current
            rng = np.random.default_rng(seeds[stage])
            idx = rng.permutation(n)[:n_sub] if n_sub < n else np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=seeds[stage],
                tree_method=self.tree_method,
                max_bins=self.max_bins,
            )
            prebinned = (binned[0][idx], binned[1]) if binned is not None else None
            tree.fit(X[idx], residual[idx], _hist_prebinned=prebinned)
            current = current + self.learning_rate * tree.tree_.predict(X)
            self.estimators_.append(tree)
            self.train_score_.append(float(np.mean((y - current) ** 2)))
        self.packed_ = PackedForest([tree.tree_ for tree in self.estimators_])
        return self

    def _stage_values(self, X) -> np.ndarray:
        """Per-stage raw leaf values, ``(n_samples, n_estimators)``."""
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        # getattr: instances unpickled from before packing existed restore
        # their __dict__ without a packed_ attribute at all.
        packed = getattr(self, "packed_", None)
        if packed is not None:
            return packed.predict_all(X)
        return np.column_stack([tree.tree_.predict(X) for tree in self.estimators_])

    def predict(self, X) -> np.ndarray:
        """Sum the shrunken stage predictions on top of the initial constant."""
        values = self._stage_values(X)
        return self.init_prediction_ + self.learning_rate * values.sum(axis=1)

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for early-stopping studies)."""
        cumulative = np.cumsum(self._stage_values(X), axis=1)
        for stage in range(cumulative.shape[1]):
            yield self.init_prediction_ + self.learning_rate * cumulative[:, stage]
