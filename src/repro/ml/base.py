"""Estimator base classes and ``clone``.

The interface intentionally mirrors scikit-learn: estimators are configured
entirely through ``__init__`` keyword parameters, learn state only in
``fit`` (storing it in trailing-underscore attributes), and can be
re-instantiated with identical configuration via :func:`clone`.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any

import numpy as np

from repro.ml.metrics import r2_score

__all__ = ["BaseEstimator", "RegressorMixin", "TransformerMixin", "clone"]


class BaseEstimator:
    """Base class providing parameter introspection.

    Subclasses must accept all configuration as explicit keyword arguments
    in ``__init__`` and store them under the same attribute names, which is
    what makes :meth:`get_params`, :meth:`set_params` and :func:`clone`
    work without per-class boilerplate.
    """

    @classmethod
    def _get_param_names(cls) -> list[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        sig = inspect.signature(init)
        names = [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]
        return sorted(names)

    def get_params(self, deep: bool = True) -> dict[str, Any]:
        """Return the estimator's configuration parameters.

        With ``deep=True``, parameters of nested estimators are included
        under ``<name>__<param>`` keys.
        """
        params: dict[str, Any] = {}
        for name in self._get_param_names():
            value = getattr(self, name)
            params[name] = value
            if deep and isinstance(value, BaseEstimator):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    params[f"{name}__{sub_name}"] = sub_value
        return params

    def set_params(self, **params) -> BaseEstimator:
        """Set configuration parameters (supports ``nested__param`` syntax)."""
        if not params:
            return self
        valid = set(self._get_param_names())
        nested: dict[str, dict[str, Any]] = {}
        for key, value in params.items():
            if "__" in key:
                outer, inner = key.split("__", 1)
                if outer not in valid:
                    raise ValueError(
                        f"invalid parameter {outer!r} for {type(self).__name__}"
                    )
                nested.setdefault(outer, {})[inner] = value
            else:
                if key not in valid:
                    raise ValueError(
                        f"invalid parameter {key!r} for {type(self).__name__}; "
                        f"valid parameters: {sorted(valid)}"
                    )
                setattr(self, key, value)
        for outer, inner_params in nested.items():
            sub = getattr(self, outer)
            if not isinstance(sub, BaseEstimator):
                raise ValueError(f"parameter {outer!r} is not an estimator")
            sub.set_params(**inner_params)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params(deep=False).items())
        return f"{type(self).__name__}({params})"


class RegressorMixin:
    """Mixin adding the default R² ``score`` method for regressors."""

    def score(self, X, y) -> float:
        """Coefficient of determination R² of ``self.predict(X)`` w.r.t. ``y``."""
        return r2_score(np.asarray(y, dtype=float), self.predict(X))


class TransformerMixin:
    """Mixin adding ``fit_transform`` for transformers."""

    def fit_transform(self, X, y=None):
        """Fit to the data, then transform it."""
        return self.fit(X, y).transform(X)


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of *estimator* with identical parameters.

    Nested estimators held as parameters are themselves cloned, so the copy
    shares no mutable state with the original.
    """
    if not isinstance(estimator, BaseEstimator):
        raise TypeError(
            f"clone expects a BaseEstimator, got {type(estimator).__name__}"
        )
    params = estimator.get_params(deep=False)
    cloned_params = {}
    for name, value in params.items():
        if isinstance(value, BaseEstimator):
            cloned_params[name] = clone(value)
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(v, BaseEstimator) for v in value
        ):
            cloned_params[name] = type(value)(clone(v) for v in value)
        else:
            cloned_params[name] = copy.deepcopy(value)
    return type(estimator)(**cloned_params)
