"""Dataset splitting, cross-validation and grid search.

``train_test_split`` implements the paper's "uniform random sampling to
construct the training dataset" (Section V) — the training fraction is the
x-axis of every figure in the evaluation.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import r2_score
from repro.utils.rng import check_random_state

__all__ = [
    "train_test_split",
    "KFold",
    "cross_val_score",
    "ParameterGrid",
    "GridSearchCV",
]


def train_test_split(*arrays, train_size: float | int | None = None,
                     test_size: float | int | None = None,
                     random_state=None, shuffle: bool = True):
    """Split arrays into uniform-random train and test subsets.

    Parameters
    ----------
    *arrays:
        Arrays with the same first dimension (typically ``X, y``).
    train_size, test_size:
        Fraction (float in (0, 1)) or absolute count (int).  If only one is
        given the other is the complement; if neither is given the split is
        75% / 25%.
    random_state:
        Seed for the permutation.
    shuffle:
        If False, the first samples form the training set.

    Returns
    -------
    list
        ``[a1_train, a1_test, a2_train, a2_test, ...]``.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    n = len(np.asarray(arrays[0]))
    for a in arrays[1:]:
        if len(np.asarray(a)) != n:
            raise ValueError("all arrays must have the same length")
    n_train, n_test = _resolve_split_sizes(n, train_size, test_size)
    if shuffle:
        rng = check_random_state(random_state)
        perm = rng.permutation(n)
    else:
        perm = np.arange(n)
    train_idx = perm[:n_train]
    test_idx = perm[n_train:n_train + n_test]
    out = []
    for a in arrays:
        a = np.asarray(a)
        out.extend([a[train_idx], a[test_idx]])
    return out


def _resolve_split_sizes(n: int, train_size, test_size) -> tuple[int, int]:
    def resolve(value, name):
        if value is None:
            return None
        if isinstance(value, float):
            if not 0.0 < value < 1.0:
                raise ValueError(f"float {name} must be in (0, 1), got {value}")
            return max(1, int(round(value * n)))
        value = int(value)
        if not 1 <= value <= n:
            raise ValueError(f"{name} must be in [1, {n}], got {value}")
        return value

    n_train = resolve(train_size, "train_size")
    n_test = resolve(test_size, "test_size")
    if n_train is None and n_test is None:
        n_train = int(round(0.75 * n))
        n_test = n - n_train
    elif n_train is None:
        n_train = n - n_test
    elif n_test is None:
        n_test = n - n_train
    if n_train < 1 or n_test < 1 or n_train + n_test > n:
        raise ValueError(
            f"invalid split sizes: train={n_train}, test={n_test}, n={n}"
        )
    return n_train, n_test


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, *, n_splits: int = 5, shuffle: bool = False, random_state=None) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int | Sequence) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs.

        ``n_samples`` may be an int or any sequence (its length is used).
        """
        if not isinstance(n_samples, (int, np.integer)):
            n_samples = len(n_samples)
        n = int(n_samples)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        if self.shuffle:
            rng = check_random_state(self.random_state)
            indices = rng.permutation(n)
        else:
            indices = np.arange(n)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start:start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size:]])
            yield train_idx, test_idx
            start += size


def cross_val_score(estimator: BaseEstimator, X, y, *, cv: int = 5,
                    scoring=None, random_state=None) -> np.ndarray:
    """Cross-validated scores of *estimator*.

    ``scoring`` is a callable ``scoring(y_true, y_pred) -> float``; by
    default the R² score is used.  Higher is assumed to be better only by
    :class:`GridSearchCV`; this function simply reports the raw scores.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    scorer = scoring if scoring is not None else r2_score
    scores = []
    for train_idx, test_idx in KFold(n_splits=cv, shuffle=True,
                                     random_state=random_state).split(len(y)):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(scorer(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores)


class ParameterGrid:
    """Iterate over the Cartesian product of a parameter grid dict."""

    def __init__(self, grid: dict[str, Iterable]) -> None:
        if not isinstance(grid, dict) or not grid:
            raise ValueError("grid must be a non-empty dict of parameter lists")
        self.grid = {k: list(v) for k, v in grid.items()}
        for key, values in self.grid.items():
            if not values:
                raise ValueError(f"parameter {key!r} has no candidate values")

    def __len__(self) -> int:
        size = 1
        for values in self.grid.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[dict]:
        keys = sorted(self.grid)
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo, strict=True))


class GridSearchCV(BaseEstimator):
    """Exhaustive hyper-parameter search with cross-validation.

    ``scoring`` follows the *lower-is-better* convention when
    ``greater_is_better=False`` (e.g. MAPE); the default R² uses
    ``greater_is_better=True``.
    """

    def __init__(self, *, estimator: BaseEstimator, param_grid: dict,
                 cv: int = 5, scoring=None, greater_is_better: bool = True,
                 random_state=None) -> None:
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.scoring = scoring
        self.greater_is_better = greater_is_better
        self.random_state = random_state
        self.best_params_: dict | None = None
        self.best_score_: float | None = None
        self.best_estimator_: BaseEstimator | None = None
        self.cv_results_: list[dict] | None = None

    def fit(self, X, y) -> GridSearchCV:
        """Evaluate every parameter combination and refit the best one."""
        results = []
        best_key = None
        for params in ParameterGrid(self.param_grid):
            model = clone(self.estimator).set_params(**params)
            scores = cross_val_score(model, X, y, cv=self.cv,
                                     scoring=self.scoring,
                                     random_state=self.random_state)
            mean_score = float(np.mean(scores))
            results.append({"params": params, "mean_score": mean_score,
                            "std_score": float(np.std(scores))})
            key = mean_score if self.greater_is_better else -mean_score
            if best_key is None or key > best_key:
                best_key = key
                self.best_params_ = params
                self.best_score_ = mean_score
        self.cv_results_ = results
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict with the refitted best estimator."""
        if self.best_estimator_ is None:
            raise RuntimeError("GridSearchCV is not fitted yet")
        return self.best_estimator_.predict(X)
