"""Process-wide selection of the tree/forest construction engines.

The ML substrate ships three tree-construction engines:

* ``"legacy"`` — the original recursive per-node builder (kept as the
  reference implementation and for benchmarking the engine redesign);
* ``"stack"`` — an explicit work-stack builder with a fit-time feature
  presort, bit-identical to ``"legacy"`` (same node numbering, same RNG
  stream, same floating-point results) but without the per-node
  ``argsort`` and Python recursion;
* ``"batched"`` — a level-synchronous builder that grows *all* trees of a
  forest together, scoring every frontier node in a few vectorized passes
  per depth level.  It draws its random numbers per tree per level, so it
  is deterministic under a fixed seed but follows a different (documented)
  RNG protocol than the recursive builders: trees are statistically
  equivalent, not bit-identical, to ``"legacy"`` ones.

Estimators accept an ``engine`` parameter; ``None`` (the default) resolves
to the module-wide defaults below, which :func:`use_engines` can override
temporarily (used by the performance benchmarks to time the seed
implementation against the vectorized one in the same process).
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "TREE_ENGINES",
    "FOREST_ENGINES",
    "get_default_engines",
    "set_default_engines",
    "use_engines",
    "resolve_tree_engine",
    "resolve_forest_engine",
]

#: Engines understood by :class:`~repro.ml.tree.DecisionTreeRegressor`.
TREE_ENGINES = ("legacy", "stack", "batched")

#: Engines understood by the forest estimators.
FOREST_ENGINES = ("legacy", "stack", "batched")

_defaults = {"tree": "stack", "forest": "batched"}


def get_default_engines() -> dict:
    """Current process-wide default engines, as ``{"tree": ..., "forest": ...}``."""
    return dict(_defaults)


def set_default_engines(*, tree: str | None = None, forest: str | None = None) -> dict:
    """Set the process-wide default engines; returns the previous defaults."""
    previous = dict(_defaults)
    if tree is not None:
        if tree not in TREE_ENGINES:
            raise ValueError(f"tree engine must be one of {TREE_ENGINES}, got {tree!r}")
        _defaults["tree"] = tree
    if forest is not None:
        if forest not in FOREST_ENGINES:
            raise ValueError(
                f"forest engine must be one of {FOREST_ENGINES}, got {forest!r}"
            )
        _defaults["forest"] = forest
    return previous


@contextmanager
def use_engines(*, tree: str | None = None, forest: str | None = None):
    """Temporarily override the default engines (benchmarking helper)."""
    previous = set_default_engines(tree=tree, forest=forest)
    try:
        yield
    finally:
        set_default_engines(**previous)


def resolve_tree_engine(engine: str | None) -> str:
    """Resolve an estimator-level ``engine`` value to a concrete tree engine."""
    engine = _defaults["tree"] if engine is None else engine
    if engine not in TREE_ENGINES:
        raise ValueError(f"engine must be None or one of {TREE_ENGINES}, got {engine!r}")
    return engine


def resolve_forest_engine(engine: str | None) -> str:
    """Resolve an estimator-level ``engine`` value to a concrete forest engine."""
    engine = _defaults["forest"] if engine is None else engine
    if engine not in FOREST_ENGINES:
        raise ValueError(
            f"engine must be None or one of {FOREST_ENGINES}, got {engine!r}"
        )
    return engine
