"""Process-wide selection of the tree/forest construction engines.

The ML substrate ships four tree-construction engines:

* ``"legacy"`` — the original recursive per-node builder (kept as the
  reference implementation and for benchmarking the engine redesign);
* ``"stack"`` — an explicit work-stack builder with a fit-time feature
  presort, bit-identical to ``"legacy"`` (same node numbering, same RNG
  stream, same floating-point results) but without the per-node
  ``argsort`` and Python recursion;
* ``"batched"`` — a level-synchronous builder that grows *all* trees of a
  forest together, scoring every frontier node in a few vectorized passes
  per depth level.  It draws its random numbers per tree per level, so it
  is deterministic under a fixed seed but follows a different (documented)
  RNG protocol than the recursive builders: trees are statistically
  equivalent, not bit-identical, to ``"legacy"`` ones.
* ``"hist"`` — the batched builder's histogram-binned sibling
  (:mod:`repro.ml._hist`): features are quantized to at most ``max_bins``
  quantile bins at fit time and split search scans bin boundaries instead
  of distinct thresholds.  Statistically equivalent to ``"batched"``
  (identical candidate thresholds whenever a feature has no more distinct
  values than bins) and substantially faster on large datasets.

``"legacy"``, ``"stack"`` and ``"batched"`` are the *exact* engines (they
scan true distinct thresholds); ``"hist"`` is selected either directly or
through the estimator-level ``tree_method="hist"`` knob.

Estimators accept an ``engine`` parameter; ``None`` (the default) resolves
to the module-wide defaults below, which :func:`use_engines` can override
temporarily (used by the performance benchmarks to time one engine against
another in the same process).  The estimator-level ``tree_method``
parameter rides on top: ``None`` defers to the engine resolution (the
defaults are exact, so seed results are unchanged), ``"exact"`` insists on
an exact engine, and ``"hist"`` forces the histogram engine.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "TREE_ENGINES",
    "FOREST_ENGINES",
    "TREE_METHODS",
    "get_default_engines",
    "set_default_engines",
    "use_engines",
    "resolve_tree_engine",
    "resolve_forest_engine",
    "resolve_build_engine",
    "get_batched_builder",
]

#: Engines understood by :class:`~repro.ml.tree.DecisionTreeRegressor`.
TREE_ENGINES = ("legacy", "stack", "batched", "hist")

#: Engines understood by the forest estimators.
FOREST_ENGINES = ("legacy", "stack", "batched", "hist")

#: Valid values of the estimator-level ``tree_method`` parameter
#: (``None`` defers to the engine resolution).
TREE_METHODS = (None, "exact", "hist")

#: Fallback exact engine per estimator kind when ``tree_method="exact"``
#: meets a process-wide ``"hist"`` default.
_EXACT_FALLBACK = {"tree": "stack", "forest": "batched"}

_defaults = {"tree": "stack", "forest": "batched"}


def get_default_engines() -> dict:
    """Current process-wide default engines, as ``{"tree": ..., "forest": ...}``."""
    return dict(_defaults)


def set_default_engines(*, tree: str | None = None, forest: str | None = None) -> dict:
    """Set the process-wide default engines; returns the previous defaults."""
    previous = dict(_defaults)
    if tree is not None:
        if tree not in TREE_ENGINES:
            raise ValueError(f"tree engine must be one of {TREE_ENGINES}, got {tree!r}")
        _defaults["tree"] = tree
    if forest is not None:
        if forest not in FOREST_ENGINES:
            raise ValueError(
                f"forest engine must be one of {FOREST_ENGINES}, got {forest!r}"
            )
        _defaults["forest"] = forest
    return previous


@contextmanager
def use_engines(*, tree: str | None = None, forest: str | None = None):
    """Temporarily override the default engines (benchmarking helper)."""
    previous = set_default_engines(tree=tree, forest=forest)
    try:
        yield
    finally:
        set_default_engines(**previous)


def resolve_tree_engine(engine: str | None) -> str:
    """Resolve an estimator-level ``engine`` value to a concrete tree engine."""
    engine = _defaults["tree"] if engine is None else engine
    if engine not in TREE_ENGINES:
        raise ValueError(f"engine must be None or one of {TREE_ENGINES}, got {engine!r}")
    return engine


def resolve_forest_engine(engine: str | None) -> str:
    """Resolve an estimator-level ``engine`` value to a concrete forest engine."""
    engine = _defaults["forest"] if engine is None else engine
    if engine not in FOREST_ENGINES:
        raise ValueError(
            f"engine must be None or one of {FOREST_ENGINES}, got {engine!r}"
        )
    return engine


def resolve_build_engine(tree_method: str | None, engine: str | None,
                         *, kind: str) -> str:
    """Resolve the ``(tree_method, engine)`` pair to the engine to build with.

    Parameters
    ----------
    tree_method:
        ``None`` (defer to the engine resolution), ``"exact"`` (insist on
        an exact-threshold engine) or ``"hist"`` (histogram binning).
    engine:
        The estimator's ``engine`` parameter (``None`` = process default).
    kind:
        ``"tree"`` or ``"forest"`` — which default table applies.

    ``tree_method="hist"`` conflicts with an explicit exact ``engine``;
    ``tree_method="exact"`` combined with an explicit ``engine="hist"``
    is equally contradictory.  When an *implicit* (process-default)
    engine disagrees with an explicit ``tree_method``, the tree method
    wins — ``"hist"`` selects the histogram engine, ``"exact"`` falls
    back to the kind's default exact engine.
    """
    if kind not in _EXACT_FALLBACK:
        raise ValueError(f"kind must be 'tree' or 'forest', got {kind!r}")
    if tree_method not in TREE_METHODS:
        raise ValueError(
            f"tree_method must be one of {TREE_METHODS}, got {tree_method!r}")
    if tree_method is not None and engine is not None:
        exact_engine = engine != "hist"
        if (tree_method == "hist") == exact_engine:
            raise ValueError(
                f"tree_method={tree_method!r} conflicts with engine={engine!r}")
    if tree_method == "hist":
        return "hist"
    resolved = (resolve_tree_engine(engine) if kind == "tree"
                else resolve_forest_engine(engine))
    if tree_method == "exact" and resolved == "hist":
        return _EXACT_FALLBACK[kind]
    return resolved


def get_batched_builder(engine: str, max_bins: int):
    """The whole-forest builder for a level-synchronous *engine*.

    Returns ``(build, extra_kwargs)`` where ``build`` has the shared
    ``build_forest_batched`` signature and ``extra_kwargs`` carries the
    engine-specific arguments — the single dispatch point used by both
    the tree and the forest ``fit`` paths.
    """
    if engine == "batched":
        from repro.ml._batched import build_forest_batched

        return build_forest_batched, {}
    if engine == "hist":
        from repro.ml._hist import build_forest_hist

        return build_forest_hist, {"max_bins": max_bins}
    raise ValueError(f"no batched builder for engine {engine!r}")
