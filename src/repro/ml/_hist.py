"""Histogram-binned split search (the ``"hist"`` tree engine).

The exact engines (:mod:`repro.ml.tree`, :mod:`repro.ml._batched`) scan
every distinct threshold of every candidate feature at every node, which
dominates fit time on the larger learning-curve datasets.  This module
implements the LightGBM-style alternative: each feature is quantized
**once at fit time** to at most ``max_bins`` quantile bins, and split
search afterwards operates on small integer *bin codes* instead of the
raw floating-point columns.

Protocol
--------
*Binning* (:func:`compute_bin_edges`): per feature, up to
``max_bins - 1`` strictly increasing edges.  When the feature has at
most ``max_bins`` distinct values the edges are the midpoints of
consecutive distinct values (guarded against rounding onto the upper
value), so the candidate-threshold set is **identical** to the exact
splitter's and histogram search degenerates to exact search.  Otherwise
the edges are interior quantiles of the feature distribution.  A value
``x`` gets code ``searchsorted(edges, x, side="left")``, so the split
predicate ``code <= b`` is exactly ``x <= edges[b]`` — fitted trees
store ordinary float thresholds and predict without any binning state.

*Split search*: trees grow level-synchronously (all trees of a forest
together, like :mod:`repro.ml._batched`).  Per splittable node the
builder accumulates histograms of ``(count, sum(y))`` over
``(feature, bin)`` with :func:`numpy.bincount` on flattened
``node x bin`` keys, then scores *every* bin boundary of every
considered feature in one vectorized cumulative-sum pass — O(bins)
candidate positions per feature instead of O(distinct thresholds).
The sum-of-squares term of the split SSE is constant per node, so
minimizing SSE is maximizing the *gain* ``lsum^2/ln + rsum^2/rn`` and
no third histogram is needed.

*Local bin mapping*: a node deep in a tree concentrates on a narrow
slice of each feature's code range.  Instead of histogramming global
bin indices (which would need ``max_bins`` cells per node or lose
resolution to global coarsening), each ``(node, feature)`` maps codes
through ``(code - lo) >> shift`` where ``lo`` is the node's smallest
code and ``shift`` the smallest coarsening that fits the node's code
span into the level's histogram width.  Tiny nodes therefore keep
*exact* threshold resolution in a handful of cells; only nodes whose
span exceeds the level width lose granularity.  The level width adapts
to a per-level cell budget (``nodes x features x width <=
level_budget``), so shallow levels (few, large nodes) run at full
``max_bins`` resolution while deep levels (many tiny nodes) stay cheap.

*Histogram subtraction*: when a level's split nodes are large relative
to their histograms, only the **smaller** child's histogram is
accumulated from its samples and the sibling is obtained as
``parent - smaller`` (counts are exact in float64; the summed y pick up
only additive rounding noise).  Carried children inherit the parent's
bin mapping so the subtraction is cell-aligned.  Deep levels — many
tiny nodes, where assembling carried histograms would cost more than
the per-sample re-accumulation it saves — fall back to direct
accumulation; the crossover is a simple per-level cost model.

RNG protocol: per tree per level, one uniform ``(nodes, features)``
matrix of feature-subset ranks when ``max_features < n_features``, then
for the ``"random"`` splitter one uniform ``(nodes, features)`` matrix
that selects a bin boundary uniformly from each node's occupied local
bin range (the binned analogue of the extra-trees uniform threshold).
As in the batched engine, a tree's RNG stream depends only on its own
frontier evolution — but unlike the batched engine, the *split
resolution* does not: the cell budget divides by the aggregate frontier
size of all co-batched trees, so once it binds (deep levels of large
forests) a tree may coarsen earlier than it would grown alone.  Trees
are therefore identical alone vs co-batched only while the budget is
slack (small forests, shallow depths, or a generous ``level_budget``);
a fixed forest is always deterministic for a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import _NO_CHILD, Tree
from repro.utils.rng import check_random_state

__all__ = ["compute_bin_edges", "bin_dataset", "build_forest_hist"]

#: Default number of quantile bins per feature (LightGBM-style).
DEFAULT_MAX_BINS = 256

#: Floor on the per-level histogram width under budget coarsening.
_MIN_WIDTH = 4

#: Default cap on ``nodes x features x width`` histogram cells per level.
_LEVEL_BUDGET = 1 << 20


def _pow2ceil(value: int) -> int:
    """Smallest power of two >= *value* (>= 1)."""
    return 1 << max(0, int(value - 1).bit_length())


def _pow2floor(value: int) -> int:
    """Largest power of two <= *value* (>= 1)."""
    return 1 << max(0, int(value).bit_length() - 1)


def compute_bin_edges(X: np.ndarray, max_bins: int = DEFAULT_MAX_BINS) -> list[np.ndarray]:
    """Per-feature strictly increasing bin edges (at most ``max_bins - 1`` each).

    Exactness guarantee: a feature with at most ``max_bins`` distinct
    values gets one edge *between every pair* of consecutive distinct
    values (the midpoint, lowered onto the left value when the midpoint
    rounds onto the right one), so binned split search considers exactly
    the thresholds the exact splitter would.
    """
    if max_bins < 2:
        raise ValueError(f"max_bins must be >= 2, got {max_bins}")
    edges: list[np.ndarray] = []
    for f in range(X.shape[1]):
        uniq = np.unique(X[:, f])
        if uniq.size <= 1:
            edges.append(np.empty(0, dtype=np.float64))
            continue
        if uniq.size <= max_bins:
            e = 0.5 * (uniq[:-1] + uniq[1:])
            # Midpoints that round up onto the right value would merge the
            # two values into one bin; the left value itself separates them.
            bad = e >= uniq[1:]
            e[bad] = uniq[:-1][bad]
        else:
            qs = np.quantile(X[:, f], np.arange(1, max_bins) / max_bins)
            e = np.unique(qs)
        edges.append(np.asarray(e, dtype=np.float64))
    return edges


def bin_dataset(X: np.ndarray, max_bins: int = DEFAULT_MAX_BINS,
                ) -> tuple[np.ndarray, np.ndarray]:
    """Quantize *X* to integer bin codes.

    Returns ``(codes, edges_pad)`` where ``codes[i, f]`` is the bin index
    of ``X[i, f]`` (``uint8`` when the code range allows it) and
    ``edges_pad`` is a ``(n_features, max_edges)`` float array of the
    edges padded with ``+inf``; ``codes[i, f] <= b`` is equivalent to
    ``X[i, f] <= edges_pad[f, b]`` for every in-range boundary ``b``.
    """
    edges = compute_bin_edges(X, max_bins)
    n_edges = max(e.size for e in edges) if edges else 0
    dtype = np.uint8 if max(n_edges, 1) <= np.iinfo(np.uint8).max else np.uint16
    codes = np.empty(X.shape, dtype=dtype)
    edges_pad = np.full((X.shape[1], max(n_edges, 1)), np.inf)
    for f, e in enumerate(edges):
        codes[:, f] = np.searchsorted(e, X[:, f], side="left")
        edges_pad[f, : e.size] = e
    return codes, edges_pad


def _tree_groups(tree_ids: np.ndarray):
    """Yield ``(tree, start, stop)`` runs of the non-decreasing id array."""
    boundaries = np.nonzero(np.diff(tree_ids))[0] + 1
    bounds = np.concatenate(([0], boundaries, [len(tree_ids)]))
    for a, b in zip(bounds[:-1], bounds[1:], strict=True):
        yield int(tree_ids[a]), int(a), int(b)


def _local_shift(span: np.ndarray, width: int) -> np.ndarray:
    """Smallest per-cell shift so ``span >> shift < width`` everywhere."""
    shift = np.zeros(span.shape, dtype=np.int64)
    while True:
        over = (span >> shift) >= width
        if not over.any():
            return shift
        shift[over] += 1


def _accumulate(cols: list[np.ndarray], y_sub: np.ndarray, node_rank: np.ndarray,
                mlo: np.ndarray, mshift: np.ndarray, n_nodes: int, width: int,
                ) -> tuple[np.ndarray, np.ndarray]:
    """Dense ``(count, sum(y))`` histograms via ``bincount``.

    ``cols[f]`` holds the slots' codes of feature ``f`` (contiguous);
    ``mlo``/``mshift`` are the ``(n_nodes, n_features)`` local bin
    mappings.  One flattened ``node * width + bin`` key per feature; two
    bincounts per feature — O(samples) accumulation regardless of the
    number of nodes.
    """
    d = len(cols)
    cnt = np.empty((n_nodes, d, width))
    s1 = np.empty((n_nodes, d, width))
    base = node_rank * np.int64(width)
    size = n_nodes * width
    for f in range(d):
        if mshift[:, f].any():
            key = base + ((cols[f] - mlo[:, f][node_rank]) >> mshift[:, f][node_rank])
        else:
            # Zero-shift fast path (tiny nodes, exact resolution): fold the
            # per-node offset into the key base.
            key = (base - mlo[:, f][node_rank]) + cols[f]
        cnt[:, f] = np.bincount(key, minlength=size).reshape(n_nodes, width)
        s1[:, f] = np.bincount(key, weights=y_sub, minlength=size).reshape(n_nodes, width)
    return cnt, s1


def _coarsen(hist: np.ndarray, factor: int) -> np.ndarray:
    """Merge *factor* adjacent cells (pairwise sums for powers of two)."""
    if factor == 1:
        return hist
    n_nodes, d, width = hist.shape
    return hist.reshape(n_nodes, d, width // factor, factor).sum(axis=3)


def build_forest_hist(
    X: np.ndarray,
    y: np.ndarray,
    *,
    sample_sets: list[np.ndarray],
    seeds: list,
    splitter: str,
    max_depth: int | None,
    min_samples_split: int,
    min_samples_leaf: int,
    max_features: int,
    min_impurity_decrease: float,
    max_bins: int = DEFAULT_MAX_BINS,
    level_budget: int = _LEVEL_BUDGET,
    prebinned: tuple[np.ndarray, np.ndarray] | None = None,
) -> list[Tree]:
    """Grow one :class:`Tree` per sample set with histogram split search.

    Parameters mirror :func:`repro.ml._batched.build_forest_batched` plus
    the binning knobs ``max_bins`` (quantile bins per feature) and
    ``level_budget`` (histogram-cell cap per level, see module docs).
    ``prebinned`` optionally supplies ``(codes, edges_pad)`` from a prior
    :func:`bin_dataset` call over the rows of *X* (gradient boosting fits
    one tree per stage on the same matrix: quantize once, not per stage).
    Nodes are numbered in per-tree level order, a valid :class:`Tree`
    layout.
    """
    n_trees = len(sample_sets)
    if n_trees == 0:
        return []
    if splitter not in ("best", "random"):
        raise ValueError(f"splitter must be 'best' or 'random', got {splitter!r}")
    rngs = [check_random_state(seed) for seed in seeds]
    d = int(X.shape[1])
    mf = int(max_features)
    msl = int(min_samples_leaf)
    depth_limit = np.inf if max_depth is None else float(max_depth)

    codes, edges_pad = prebinned if prebinned is not None else bin_dataset(X, max_bins)
    if codes.shape != X.shape:
        raise ValueError(
            f"prebinned codes shape {codes.shape} does not match X {X.shape}")
    max_width = _pow2ceil(edges_pad.shape[1] + 1)

    # ---- slot arrays: one row per (tree, training sample) instance ---- #
    sizes0 = np.array([len(s) for s in sample_sets], dtype=np.int64)
    codes_s = np.concatenate([codes[idx] for idx in sample_sets], axis=0)
    # Contiguous per-feature code columns (cheap per-level gathers).
    code_cols = [np.ascontiguousarray(codes_s[:, f]) for f in range(d)]
    ys = np.concatenate([y[idx] for idx in sample_sets])
    ys2 = ys * ys
    S = codes_s.shape[0]

    order = np.arange(S, dtype=np.int64)  # slots grouped by frontier node
    starts = np.concatenate(([0], np.cumsum(sizes0)))[:-1]
    sizes = sizes0.copy()
    tree_of = np.arange(n_trees, dtype=np.int64)
    depth = 0
    # Carried state for the whole frontier: (cnt, s1, mlo, mshift) with
    # histograms in the parent's bin mapping, or None to re-accumulate.
    carried = None

    # arena: per-level chunks, concatenated at the end
    A_feature: list[np.ndarray] = []
    A_threshold: list[np.ndarray] = []
    A_left: list[np.ndarray] = []
    A_right: list[np.ndarray] = []
    A_value: list[np.ndarray] = []
    A_n: list[np.ndarray] = []
    A_imp: list[np.ndarray] = []
    A_tree: list[np.ndarray] = []
    arena_count = 0

    while sizes.size:
        F = len(sizes)
        yo = ys[order]
        yo2 = ys2[order]
        s1_node = np.add.reduceat(yo, starts)
        s2_node = np.add.reduceat(yo2, starts)
        nf = sizes.astype(np.float64)
        value = s1_node / nf
        imp = np.maximum(s2_node / nf - value * value, 0.0)

        feat_level = np.full(F, _NO_CHILD, dtype=np.int64)
        thr_level = np.full(F, np.nan)
        left_level = np.full(F, _NO_CHILD, dtype=np.int64)
        right_level = np.full(F, _NO_CHILD, dtype=np.int64)
        A_feature.append(feat_level)
        A_threshold.append(thr_level)
        A_left.append(left_level)
        A_right.append(right_level)
        A_value.append(value)
        A_n.append(sizes)
        A_imp.append(imp)
        A_tree.append(tree_of)
        arena_count += F
        next_base = arena_count  # arena id of the first child created below

        splittable = (
            (depth < depth_limit)
            & (sizes >= min_samples_split)
            & (sizes >= 2 * min_samples_leaf)
            & (imp > 1e-15)
        )
        sp = np.nonzero(splittable)[0]
        if sp.size == 0:
            break
        K = sp.size

        # ---- region view + per-(node, feature) code ranges ---- #
        pos_mask = np.repeat(splittable, sizes)
        ro = order[pos_mask]
        rsizes = sizes[sp]
        node_of = np.repeat(np.arange(K), rsizes)
        rstarts = np.concatenate(([0], np.cumsum(rsizes)))[:-1]
        cols = [c[ro] for c in code_cols]
        lo = np.empty((K, d), dtype=np.int64)
        hi = np.empty((K, d), dtype=np.int64)
        for f in range(d):
            lo[:, f] = np.minimum.reduceat(cols[f], rstarts)
            hi[:, f] = np.maximum.reduceat(cols[f], rstarts)
        nonconst = hi > lo

        # ---- histograms of the splittable nodes ---- #
        budget_width = max(_MIN_WIDTH, _pow2floor(max(1, level_budget // (K * d))))
        if carried is None:
            span = hi - lo
            width = max(2, min(max_width, budget_width,
                               _pow2ceil(int(span.max()) + 1)))
            mlo = lo
            mshift = _local_shift(span, width)
            cnt, h1 = _accumulate(cols, ys[ro], node_of, mlo, mshift, K, width)
        else:
            cnt, h1, mlo, mshift = carried
            cnt = cnt[sp]
            h1 = h1[sp]
            mlo = mlo[sp]
            mshift = mshift[sp]
            width = cnt.shape[2]
            if width > budget_width:
                factor = width // budget_width
                cnt = _coarsen(cnt, factor)
                h1 = _coarsen(h1, factor)
                mshift = mshift + int(np.log2(factor))
                width = budget_width

        # Occupied local bin range of every (node, feature) cell row.
        lo_bin = (lo - mlo) >> mshift
        hi_bin = (hi - mlo) >> mshift

        # ---- feature selection (RNG subset among non-constant) ---- #
        tree_r = tree_of[sp]
        sel = None
        if mf < d:
            ranks = np.empty((K, d))
            for t, a, b in _tree_groups(tree_r):
                ranks[a:b] = rngs[t].random((b - a, d))
            ranks = np.where(nonconst, ranks, np.inf)
            top = np.argsort(ranks, axis=1, kind="stable")[:, :mf]
            chosen = np.zeros((K, d), dtype=bool)
            np.put_along_axis(chosen, top, True, axis=1)
            sel = nonconst & chosen

        # ---- score bin boundaries from cumulative histograms ---- #
        CC = np.cumsum(cnt, axis=2)
        C1 = np.cumsum(h1, axis=2)
        tot_n = CC[:, :, -1:]
        tot_1 = C1[:, :, -1:]
        rows = np.arange(K)
        if splitter == "best":
            nL = CC[:, :, :-1]
            l1 = C1[:, :, :-1]
            nR = tot_n - nL
            with np.errstate(divide="ignore", invalid="ignore"):
                # gain = l1^2/nL + (tot1-l1)^2/nR, computed in place;
                # minimizing split SSE == maximizing gain (the y^2 term
                # is constant per node).
                gain = l1 * l1
                gain /= nL
                acc = tot_1 - l1
                acc *= acc
                acc /= nR
                gain += acc
            invalid = nL < msl
            invalid |= nR < msl
            if sel is not None:
                invalid |= ~sel[:, :, None]
            np.copyto(gain, -np.inf, where=invalid)
            flat = gain.reshape(K, d * (width - 1))
            best_flat = np.argmax(flat, axis=1)
            best_gain = flat[rows, best_flat]
            best_f = best_flat // (width - 1)
            best_b = best_flat % (width - 1)
        else:  # random splitter: one value-uniform threshold per feature
            u = np.empty((K, d))
            for t, a, b in _tree_groups(tree_r):
                u[a:b] = rngs[t].random((b - a, d))
            # Draw a threshold uniformly over the node's (estimated) value
            # range and snap it to the nearest bin boundary, so boundary
            # probabilities are weighted by value gaps — the binned
            # analogue of the extra-trees uniform threshold.  The node's
            # min/max values and the per-bin values are estimated by bin
            # centers (for lossless midpoint edges the center of a value's
            # two enclosing edges is close to the value itself).
            frows = np.arange(d)[None, :]
            n_pad = edges_pad.shape[1]

            def _center(code):
                left = edges_pad[frows, np.maximum(code - 1, 0)]
                right = edges_pad[frows, np.minimum(code, n_pad - 1)]
                right = np.where(np.isfinite(right), right, left)
                return 0.5 * (left + right)

            v_lo = _center(lo)
            v_hi = _center(hi)
            with np.errstate(invalid="ignore"):
                # Constant features have no finite edges (inf - inf): the
                # resulting NaNs are masked out by ``nonconst`` below.
                t_val = v_lo + u * (v_hi - v_lo)
            c_glob = np.empty((K, d), dtype=np.int64)
            for f in range(d):
                c_glob[:, f] = np.searchsorted(edges_pad[f], t_val[:, f],
                                               side="right")
            # t landed inside bin c_glob: split below or above that bin's
            # value depending on which side of the bin center t fell.
            c_glob = c_glob - (t_val < _center(np.maximum(c_glob, 1)))
            c_glob = np.maximum(np.minimum(c_glob, hi - 1), lo)
            bnd = (c_glob - mlo) >> mshift
            bnd = np.maximum(np.minimum(bnd, hi_bin - 1), lo_bin)
            bnd3 = bnd[:, :, None]
            nL = np.take_along_axis(CC, bnd3, axis=2)[:, :, 0]
            l1 = np.take_along_axis(C1, bnd3, axis=2)[:, :, 0]
            nR = tot_n[:, :, 0] - nL
            r1 = tot_1[:, :, 0] - l1
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = l1 * l1 / nL + r1 * r1 / nR
            valid = (hi_bin > lo_bin) & (nL >= msl) & (nR >= msl)
            valid &= sel if sel is not None else nonconst
            gain = np.where(valid, gain, -np.inf)
            best_f = np.argmax(gain, axis=1)
            best_gain = gain[rows, best_f]
            best_b = bnd[rows, best_f]

        # decrease * n = gain - (sum y)^2 / n  (parent's own "gain").
        s1_r = s1_node[sp]
        has_split = np.isfinite(best_gain)
        decrease = (best_gain - s1_r * s1_r / nf[sp]) / nf[sp]
        do_split = has_split & (decrease >= min_impurity_decrease - 1e-15)
        K2 = int(do_split.sum())
        if K2 == 0:
            break

        # Local boundary b covers original codes up to thr_code.
        mlo_b = mlo[rows, best_f]
        thr_code = mlo_b + ((best_b + 1) << mshift[rows, best_f]) - 1
        best_thr = edges_pad[best_f, np.minimum(thr_code, edges_pad.shape[1] - 1)]

        # ---- stable partition of every split node's slots ---- #
        dsp = do_split[node_of]
        gl_region = codes_s[ro, best_f[node_of]] <= thr_code[node_of]
        glf = gl_region.astype(np.int64)
        nL_all = np.add.reduceat(glf, rstarts)
        szL = nL_all[do_split]
        szR = rsizes[do_split] - szL
        child_sizes = np.empty(2 * K2, dtype=np.int64)
        child_sizes[0::2] = szL
        child_sizes[1::2] = szR
        new_starts = np.concatenate(([0], np.cumsum(child_sizes)))[:-1]
        m2 = int(child_sizes.sum())
        idmap = np.full(K, -1, dtype=np.int64)
        idmap[np.nonzero(do_split)[0]] = np.arange(K2)
        node2_of = idmap[node_of]

        cg = np.cumsum(glf)
        rank_l = cg - (cg[rstarts] - glf[rstarts])[node_of] - 1
        gr = 1 - glf
        ch = np.cumsum(gr)
        rank_r = ch - (ch[rstarts] - gr[rstarts])[node_of] - 1
        child = np.clip(2 * node2_of + np.where(gl_region, 0, 1), 0, None)
        dest = new_starts[child] + np.where(gl_region, rank_l, rank_r)
        order = np.empty(m2, dtype=np.int64)
        order[dest[dsp]] = ro[dsp]

        # ---- histogram-subtraction trick, where it pays ---- #
        # Carrying child histograms means accumulating only the smaller
        # child of every split and deriving the sibling as parent - child
        # (in the parent's bin mapping).  It saves per-sample accumulation
        # but costs O(children x features x width) assembly; a per-level
        # cost model picks (shallow levels: few big nodes -> subtract;
        # deep levels: many tiny nodes -> direct re-accumulation).
        m_small = int(np.minimum(szL, szR).sum())
        subtract_cost = 2 * m_small * d + 8 * K2 * d * width
        direct_cost = 2 * m2 * d
        if subtract_cost < direct_cost:
            left_smaller = szL <= szR
            small_child = 2 * np.arange(K2) + np.where(left_smaller, 0, 1)
            is_small = np.zeros(2 * K2, dtype=bool)
            is_small[small_child] = True
            child_of_slot = np.repeat(np.arange(2 * K2), child_sizes)
            small_mask = is_small[child_of_slot]
            small_slots = order[small_mask]
            small_rank = np.full(2 * K2, -1, dtype=np.int64)
            small_rank[small_child] = np.arange(K2)
            rank_of_slot = small_rank[child_of_slot[small_mask]]
            mloP = mlo[do_split]
            mshiftP = mshift[do_split]
            cntS, h1S = _accumulate([c[small_slots] for c in code_cols],
                                    ys[small_slots], rank_of_slot,
                                    mloP, mshiftP, K2, width)
            large_child = 2 * np.arange(K2) + np.where(left_smaller, 1, 0)
            cntC = np.empty((2 * K2, d, width))
            h1C = np.empty((2 * K2, d, width))
            cntC[small_child] = cntS
            h1C[small_child] = h1S
            cntC[large_child] = cnt[do_split] - cntS
            h1C[large_child] = h1[do_split] - h1S
            carried = (cntC, h1C, np.repeat(mloP, 2, axis=0),
                       np.repeat(mshiftP, 2, axis=0))
        else:
            carried = None

        # ---- record splits and enqueue children ---- #
        sp2 = sp[do_split]
        feat_level[sp2] = best_f[do_split]
        thr_level[sp2] = best_thr[do_split]
        left_level[sp2] = next_base + 2 * np.arange(K2)
        right_level[sp2] = next_base + 2 * np.arange(K2) + 1
        starts = new_starts
        sizes = child_sizes
        tree_of = np.repeat(tree_of[sp2], 2)
        depth += 1

    # ---- split the level-major arena into per-tree Tree objects ---- #
    feature_all = np.concatenate(A_feature)
    threshold_all = np.concatenate(A_threshold)
    left_all = np.concatenate(A_left)
    right_all = np.concatenate(A_right)
    value_all = np.concatenate(A_value)
    n_all = np.concatenate(A_n)
    imp_all = np.concatenate(A_imp)
    tree_all = np.concatenate(A_tree)

    trees: list[Tree] = []
    arena_to_local = np.full(arena_count, -1, dtype=np.int64)
    for t in range(n_trees):
        mask = tree_all == t
        arena_to_local[mask] = np.arange(int(mask.sum()))
        lt = left_all[mask]
        rt = right_all[mask]
        trees.append(Tree(
            feature=feature_all[mask],
            threshold=threshold_all[mask],
            left=np.where(lt >= 0, arena_to_local[np.clip(lt, 0, None)], _NO_CHILD),
            right=np.where(rt >= 0, arena_to_local[np.clip(rt, 0, None)], _NO_CHILD),
            value=value_all[mask],
            n_samples=n_all[mask],
            impurity=imp_all[mask],
        ))
    return trees
