"""Stacked generalization.

"In stacking, the output of one model is used as input for the next level
model" (Section VI, citing Wolpert 1992).  The generic
:class:`StackingRegressor` here stacks arbitrary base regressors under a
final meta-regressor, generating the meta-features out-of-fold to avoid
leaking the base models' training fit into the meta-model.

The paper's hybrid model is a special case in which one of the "base
models" is an *analytical* model that needs no training; that case is
implemented directly in :class:`repro.core.hybrid.HybridPerformanceModel`,
which re-uses the passthrough/meta-feature conventions established here.

At the end of ``fit`` every tree-backed base model (single CART trees and
forest ensembles) contributes its fitted trees to one shared
:class:`~repro.ml._packed.PackedForest` arena; ``transform``/``predict``
then obtain those meta-feature columns from a single vectorized descent
of all trees instead of looping over base estimators in Python (only
non-tree bases, e.g. linear models or k-NN, are still called
individually).
"""

from __future__ import annotations

import numpy as np

from repro.ml._packed import PackedForest
from repro.ml.base import BaseEstimator, RegressorMixin, clone
from repro.ml.model_selection import KFold
from repro.utils.validation import check_array, check_is_fitted, check_X_y

__all__ = ["StackingRegressor"]


class StackingRegressor(BaseEstimator, RegressorMixin):
    """Stack several base regressors under a final estimator.

    Parameters
    ----------
    estimators:
        List of ``(name, estimator)`` pairs — the level-0 models.
    final_estimator:
        The level-1 (meta) regressor trained on the base models'
        out-of-fold predictions.
    cv:
        Number of folds used to generate out-of-fold meta-features.
    passthrough:
        If True, the original features are appended to the meta-features,
        which is exactly how the paper feeds the analytical prediction to
        the ML model ("the analytical model predictions are regarded as
        additional features").
    """

    def __init__(
        self,
        *,
        estimators: list[tuple[str, BaseEstimator]],
        final_estimator: BaseEstimator,
        cv: int = 5,
        passthrough: bool = False,
        random_state=None,
    ) -> None:
        self.estimators = estimators
        self.final_estimator = final_estimator
        self.cv = cv
        self.passthrough = passthrough
        self.random_state = random_state
        self.estimators_: list[BaseEstimator] | None = None
        self.final_estimator_: BaseEstimator | None = None
        self.named_estimators_: dict[str, BaseEstimator] | None = None
        self.n_features_in_: int | None = None
        self.packed_bases_: PackedForest | None = None
        self._packed_slices_: list[tuple[int, slice]] | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X, y) -> StackingRegressor:
        """Fit base models, build out-of-fold meta-features, fit the meta-model."""
        X, y = check_X_y(X, y)
        self._validate()
        self.n_features_in_ = X.shape[1]
        n = X.shape[0]
        n_base = len(self.estimators)

        n_folds = min(self.cv, n)
        meta = np.zeros((n, n_base), dtype=np.float64)
        if n_folds >= 2:
            folds = KFold(n_splits=n_folds, shuffle=True,
                          random_state=self.random_state).split(n)
            for train_idx, test_idx in folds:
                for j, (_, est) in enumerate(self.estimators):
                    model = clone(est)
                    model.fit(X[train_idx], y[train_idx])
                    meta[test_idx, j] = model.predict(X[test_idx])
        else:
            # Degenerate tiny datasets: fall back to in-sample meta-features.
            for j, (_, est) in enumerate(self.estimators):
                model = clone(est)
                model.fit(X, y)
                meta[:, j] = model.predict(X)

        # Refit every base model on the full training data for prediction time.
        self.estimators_ = []
        for _, est in self.estimators:
            model = clone(est)
            model.fit(X, y)
            self.estimators_.append(model)
        self.named_estimators_ = {
            name: model for (name, _), model in zip(self.estimators, self.estimators_,
                                                  strict=True)
        }
        self._pack_tree_bases()

        Z = np.hstack([meta, X]) if self.passthrough else meta
        self.final_estimator_ = clone(self.final_estimator)
        self.final_estimator_.fit(Z, y)
        return self

    @staticmethod
    def _fitted_trees(est) -> list | None:
        """The fitted :class:`Tree` objects behind *est*, or ``None`` if not tree-backed."""
        from repro.ml.forest import BaseForestRegressor
        from repro.ml.tree import DecisionTreeRegressor

        if isinstance(est, DecisionTreeRegressor) and est.tree_ is not None:
            return [est.tree_]
        if isinstance(est, BaseForestRegressor) and est.estimators_:
            return [tree.tree_ for tree in est.estimators_]
        return None

    def _pack_tree_bases(self) -> None:
        """Collect every tree-backed base model's trees into one packed arena.

        ``_packed_slices_`` records, per packed estimator, its meta-feature
        column and the slice of arena trees whose leaf values average into
        that column (a single tree for CART bases, the whole ensemble for
        forest bases — the same mean the estimator itself would take).
        """
        trees: list = []
        slices: list[tuple[int, slice]] = []
        for column, est in enumerate(self.estimators_):
            est_trees = self._fitted_trees(est)
            if est_trees is None:
                continue
            slices.append((column, slice(len(trees), len(trees) + len(est_trees))))
            trees.extend(est_trees)
        self.packed_bases_ = PackedForest(trees) if trees else None
        self._packed_slices_ = slices

    def transform(self, X) -> np.ndarray:
        """Return the meta-feature matrix for *X* (base predictions [+ X])."""
        check_is_fitted(self, ["estimators_", "final_estimator_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but the stack was fitted with "
                f"{self.n_features_in_}"
            )
        # getattr: instances unpickled from before packing existed restore
        # their __dict__ without the packed attributes at all.
        packed = getattr(self, "packed_bases_", None)
        if packed is None:
            meta = np.column_stack([est.predict(X) for est in self.estimators_])
        else:
            packed_columns = {column for column, _ in self._packed_slices_}
            meta = np.empty((X.shape[0], len(self.estimators_)), dtype=np.float64)
            values = packed.predict_all(X)
            for column, tree_slice in self._packed_slices_:
                meta[:, column] = values[:, tree_slice].mean(axis=1)
            for column, est in enumerate(self.estimators_):
                if column not in packed_columns:
                    meta[:, column] = est.predict(X)
        return np.hstack([meta, X]) if self.passthrough else meta

    def predict(self, X) -> np.ndarray:
        """Predict with the meta-model on top of the base predictions."""
        Z = self.transform(X)
        return self.final_estimator_.predict(Z)

    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if not self.estimators:
            raise ValueError("estimators must be a non-empty list of (name, estimator)")
        names = [name for name, _ in self.estimators]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate estimator names: {names}")
        if self.cv < 1:
            raise ValueError(f"cv must be >= 1, got {self.cv}")
