"""k-nearest-neighbours regression baseline.

A useful sanity baseline for performance prediction: it interpolates the
training response surface directly and therefore degrades sharply at small
training fractions, which is exactly the regime the hybrid model targets.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin
from repro.utils.validation import check_array, check_is_fitted, check_X_y

__all__ = ["KNeighborsRegressor"]


class KNeighborsRegressor(BaseEstimator, RegressorMixin):
    """Predict the (optionally distance-weighted) mean of the k nearest neighbours.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours to average.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance weighting; an
        exact feature match gets full weight).
    """

    def __init__(self, *, n_neighbors: int = 5, weights: str = "uniform") -> None:
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y) -> KNeighborsRegressor:
        """Memorize the training set."""
        if self.n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        if self.weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {self.weights!r}")
        X, y = check_X_y(X, y)
        self._X = X
        self._y = y
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        """Average the targets of the nearest stored samples."""
        check_is_fitted(self, "_X")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_in_}"
            )
        k = min(self.n_neighbors, self._X.shape[0])
        # Squared Euclidean distances, blockwise to bound memory.
        preds = np.empty(X.shape[0], dtype=np.float64)
        block = 1024
        for start in range(0, X.shape[0], block):
            xq = X[start:start + block]
            d2 = (
                np.sum(xq**2, axis=1)[:, None]
                - 2.0 * xq @ self._X.T
                + np.sum(self._X**2, axis=1)[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            rows = np.arange(xq.shape[0])[:, None]
            if self.weights == "uniform":
                preds[start:start + block] = self._y[nn].mean(axis=1)
            else:
                dist = np.sqrt(d2[rows, nn])
                exact = dist < 1e-12
                w = np.where(exact, 1.0, 1.0 / np.maximum(dist, 1e-12))
                # If any neighbour matches exactly, use only exact matches.
                has_exact = exact.any(axis=1)
                w = np.where(has_exact[:, None], exact.astype(float), w)
                preds[start:start + block] = (
                    (w * self._y[nn]).sum(axis=1) / w.sum(axis=1)
                )
        return preds
