"""Bootstrap-aggregation (bagging) ensemble.

Bagging "generates multiple versions of a predictor and uses these to get
an aggregated prediction" (Breiman, 1996) — the paper uses it both as a
baseline ML technique and as the final aggregation stage of the hybrid
model (Section VI), where it also aggregates the analytical-model
prediction with the stacked-model prediction.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, clone
from repro.ml.tree import DecisionTreeRegressor
from repro.parallel.threadpool import parallel_map
from repro.utils.rng import check_random_state, spawn_seeds
from repro.utils.validation import check_array, check_is_fitted, check_X_y

__all__ = ["BaggingRegressor"]


class BaggingRegressor(BaseEstimator, RegressorMixin):
    """Bag an arbitrary base regressor.

    Parameters
    ----------
    estimator:
        The base regressor to replicate (defaults to a CART tree).
    n_estimators:
        Number of bootstrap replicas.
    max_samples:
        Size of each bootstrap sample as a fraction of the training set
        (float in (0, 1]) or an absolute count (int).
    max_features:
        Number (int) or fraction (float) of features drawn for each
        replica; features are sampled without replacement.
    bootstrap:
        Whether samples are drawn with replacement.
    random_state:
        Seed for all resampling.
    """

    def __init__(
        self,
        *,
        estimator: BaseEstimator | None = None,
        n_estimators: int = 10,
        max_samples: float | int = 1.0,
        max_features: float | int = 1.0,
        bootstrap: bool = True,
        n_jobs: int = 1,
        random_state=None,
    ) -> None:
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.n_jobs = n_jobs
        self.random_state = random_state
        self.estimators_: list[BaseEstimator] | None = None
        self.estimators_features_: list[np.ndarray] | None = None
        self.n_features_in_: int | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X, y) -> BaggingRegressor:
        """Fit ``n_estimators`` replicas on bootstrap samples."""
        X, y = check_X_y(X, y)
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        n, d = X.shape
        self.n_features_in_ = d
        n_samples = self._resolve_count(self.max_samples, n, "max_samples")
        n_features = self._resolve_count(self.max_features, d, "max_features")

        base = self.estimator if self.estimator is not None else DecisionTreeRegressor()
        seeds = spawn_seeds(self.random_state, self.n_estimators)

        sample_sets: list[np.ndarray] = []
        feature_sets: list[np.ndarray] = []
        for i in range(self.n_estimators):
            rng = check_random_state(seeds[i])
            if self.bootstrap:
                sample_sets.append(rng.integers(0, n, size=n_samples))
            else:
                sample_sets.append(rng.permutation(n)[:n_samples])
            feature_sets.append(np.sort(rng.permutation(d)[:n_features]))

        def _fit_one(i: int) -> BaseEstimator:
            est = clone(base)
            if "random_state" in est.get_params(deep=False):
                est.set_params(random_state=seeds[i])
            idx, feats = sample_sets[i], feature_sets[i]
            return est.fit(X[np.ix_(idx, feats)], y[idx])

        self.estimators_ = parallel_map(_fit_one, range(self.n_estimators),
                                        n_jobs=self.n_jobs, chunked=True)
        self.estimators_features_ = feature_sets
        return self

    def predict(self, X) -> np.ndarray:
        """Average the replicas' predictions."""
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but the ensemble was fitted with "
                f"{self.n_features_in_}"
            )
        preds = np.zeros(X.shape[0], dtype=np.float64)
        for est, feats in zip(self.estimators_, self.estimators_features_,
                              strict=True):
            preds += est.predict(X[:, feats])
        return preds / len(self.estimators_)

    def predict_std(self, X) -> np.ndarray:
        """Per-sample standard deviation across replicas."""
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        all_preds = np.stack([
            est.predict(X[:, feats])
            for est, feats in zip(self.estimators_, self.estimators_features_,
                                  strict=True)
        ])
        return all_preds.std(axis=0)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_count(value, total: int, name: str) -> int:
        if isinstance(value, float):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"float {name} must be in (0, 1], got {value}")
            return max(1, int(round(value * total)))
        value = int(value)
        if not 1 <= value <= total:
            raise ValueError(f"{name} must be in [1, {total}], got {value}")
        return value
