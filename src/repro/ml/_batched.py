"""Level-synchronous batched construction of CART tree ensembles.

The recursive builders in :mod:`repro.ml.tree` pay Python-interpreter
overhead per *node*; for a forest that is ``n_estimators x n_nodes`` small
NumPy calls.  This module grows **all trees of a forest together, one
depth level at a time**: every frontier node of every tree is scored and
partitioned in a handful of vectorized passes over contiguous
segment-grouped arrays (``numpy.add.reduceat`` over CSR-style node
segments), so the interpreter cost is per *level*, not per node.

RNG protocol (documented, deterministic, but intentionally different from
the recursive builders' stream): each tree owns one generator; per level
it draws (a) one uniform matrix of feature-subset ranks when
``max_features < n_features`` and (b) for the ``"random"`` splitter one
uniform threshold matrix over its frontier nodes x features.  A tree's
draw sequence depends only on its own frontier evolution, so a tree is
identical whether grown alone or co-batched with any number of other
trees.  Ties between equal split scores resolve to the lowest feature
index (the recursive builders resolve them by permutation order), so
trees are statistically equivalent — not bit-identical — to ``"legacy"``
trees.

Memory: the builder materializes one slot row per (tree, sample) pair —
``O(n_estimators * n * d)`` float64, plus an equally sized int64 presort
for the ``"best"`` splitter.  That is the price of level-wide batching
and is trivially small for this repo's datasets (a few thousand rows);
for very large training sets pass ``engine="stack"`` to the forest to
fall back to O(n)-overhead per-tree fitting.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import _NO_CHILD, Tree
from repro.utils.rng import check_random_state

__all__ = ["build_forest_batched"]


def _tree_groups(tree_ids: np.ndarray):
    """Yield ``(tree, start, stop)`` runs of the non-decreasing id array."""
    boundaries = np.nonzero(np.diff(tree_ids))[0] + 1
    edges = np.concatenate(([0], boundaries, [len(tree_ids)]))
    for a, b in zip(edges[:-1], edges[1:], strict=True):
        yield int(tree_ids[a]), int(a), int(b)


def build_forest_batched(
    X: np.ndarray,
    y: np.ndarray,
    *,
    sample_sets: list[np.ndarray],
    seeds: list,
    splitter: str,
    max_depth: int | None,
    min_samples_split: int,
    min_samples_leaf: int,
    max_features: int,
    min_impurity_decrease: float,
) -> list[Tree]:
    """Grow one :class:`Tree` per sample set, level-synchronously.

    Parameters mirror :class:`~repro.ml.tree.DecisionTreeRegressor`;
    ``max_features`` must already be resolved to an integer.  Nodes are
    numbered in per-tree level order (root = 0), which is a valid
    :class:`Tree` layout (children always follow their parent).
    """
    n_trees = len(sample_sets)
    if n_trees == 0:
        return []
    rngs = [check_random_state(seed) for seed in seeds]
    d = int(X.shape[1])
    mf = int(max_features)
    depth_limit = np.inf if max_depth is None else float(max_depth)
    presort = splitter == "best"
    if splitter not in ("best", "random"):
        raise ValueError(f"splitter must be 'best' or 'random', got {splitter!r}")

    # ---- slot arrays: one row per (tree, training sample) instance ---- #
    sizes0 = np.array([len(s) for s in sample_sets], dtype=np.int64)
    Xs = np.concatenate([X[idx] for idx in sample_sets], axis=0)
    ys = np.concatenate([y[idx] for idx in sample_sets])
    ys2 = ys * ys
    S = Xs.shape[0]

    order = np.arange(S, dtype=np.int64)  # slots grouped by frontier node
    orderF = None
    if presort:
        # Per-feature stably sorted slot orders, maintained through splits
        # by stable partitioning (so per-node segments stay sorted).
        orderF = np.empty((d, S), dtype=np.int64)
        tree_offsets = np.concatenate(([0], np.cumsum(sizes0)))[:-1]
        for t in range(n_trees):
            a = int(tree_offsets[t])
            b = a + int(sizes0[t])
            orderF[:, a:b] = a + np.argsort(Xs[a:b], axis=0, kind="stable").T

    # frontier metadata (one entry per active node, grouped by tree)
    starts = np.concatenate(([0], np.cumsum(sizes0)))[:-1]
    sizes = sizes0.copy()
    tree_of = np.arange(n_trees, dtype=np.int64)
    depth = 0

    # arena: per-level chunks, concatenated at the end
    A_feature: list[np.ndarray] = []
    A_threshold: list[np.ndarray] = []
    A_left: list[np.ndarray] = []
    A_right: list[np.ndarray] = []
    A_value: list[np.ndarray] = []
    A_n: list[np.ndarray] = []
    A_imp: list[np.ndarray] = []
    A_tree: list[np.ndarray] = []
    arena_count = 0

    while sizes.size:
        F = len(sizes)
        yo = ys[order]
        yo2 = ys2[order]
        s1 = np.add.reduceat(yo, starts)
        s2 = np.add.reduceat(yo2, starts)
        nf = sizes.astype(np.float64)
        value = s1 / nf
        imp = np.maximum(s2 / nf - value * value, 0.0)

        feat_level = np.full(F, _NO_CHILD, dtype=np.int64)
        thr_level = np.full(F, np.nan)
        left_level = np.full(F, _NO_CHILD, dtype=np.int64)
        right_level = np.full(F, _NO_CHILD, dtype=np.int64)
        A_feature.append(feat_level)
        A_threshold.append(thr_level)
        A_left.append(left_level)
        A_right.append(right_level)
        A_value.append(value)
        A_n.append(sizes)
        A_imp.append(imp)
        A_tree.append(tree_of)
        arena_count += F
        next_base = arena_count  # arena id of the first child created below

        splittable = (
            (depth < depth_limit)
            & (sizes >= min_samples_split)
            & (sizes >= 2 * min_samples_leaf)
            & (imp > 1e-15)
        )
        sp = np.nonzero(splittable)[0]
        if sp.size == 0:
            break

        # ---- region view: only the splittable nodes' slots ---- #
        K = sp.size
        rsizes = sizes[sp]
        pos_mask = np.repeat(splittable, sizes)
        ro = order[pos_mask]
        m = ro.size
        rstarts = np.concatenate(([0], np.cumsum(rsizes)))[:-1]
        node_of = np.repeat(np.arange(K), rsizes)
        s1_r = s1[sp]
        s2_r = s2[sp]

        XO = Xs[ro]
        lo = np.minimum.reduceat(XO, rstarts, axis=0)
        hi = np.maximum.reduceat(XO, rstarts, axis=0)
        nonconst = lo < hi

        # ---- per-tree RNG draws (subset ranks, then thresholds) ---- #
        tree_r = tree_of[sp]
        sel = nonconst.copy()
        if mf < d:
            ranks = np.empty((K, d))
            for t, a, b in _tree_groups(tree_r):
                ranks[a:b] = rngs[t].random((b - a, d))
            ranks = np.where(nonconst, ranks, np.inf)
            top = np.argsort(ranks, axis=1, kind="stable")[:, :mf]
            chosen = np.zeros((K, d), dtype=bool)
            np.put_along_axis(chosen, top, True, axis=1)
            sel &= chosen

        if splitter == "random":
            thr_all = np.empty((K, d))
            for t, a, b in _tree_groups(tree_r):
                thr_all[a:b] = rngs[t].uniform(lo[a:b], hi[a:b])
            clamp = nonconst & (thr_all >= hi)
            thr_all = np.where(clamp, np.nextafter(hi, lo), thr_all)

            yo_r = ys[ro]
            yo2_r = ys2[ro]
            ML = XO <= thr_all[node_of]
            MLf = ML.astype(np.float64)
            nL = np.add.reduceat(MLf, rstarts, axis=0)
            s1L = np.add.reduceat(yo_r[:, None] * MLf, rstarts, axis=0)
            s2L = np.add.reduceat(yo2_r[:, None] * MLf, rstarts, axis=0)
            nR = rsizes[:, None] - nL
            s1R = s1_r[:, None] - s1L
            s2R = s2_r[:, None] - s2L
            with np.errstate(divide="ignore", invalid="ignore"):
                sse = (s2L - s1L * s1L / nL) + (s2R - s1R * s1R / nR)
            valid = sel & (nL >= min_samples_leaf) & (nR >= min_samples_leaf)
            sse = np.where(valid, sse, np.inf)
            best_f = np.argmin(sse, axis=1)
            rows = np.arange(K)
            best_sse = sse[rows, best_f]
            best_thr = thr_all[rows, best_f]
        else:
            best_sse = np.full(K, np.inf)
            best_f = np.zeros(K, dtype=np.int64)
            best_thr = np.full(K, np.nan)
            pos = np.arange(m)
            seg_start_of = rstarts[node_of]
            seg_size_of = rsizes[node_of]
            for f in range(d):
                if not sel[:, f].any():
                    continue
                of = orderF[f][pos_mask]
                xs = Xs[of, f]
                ysf = ys[of]
                ysf2 = ys2[of]
                C1 = np.cumsum(ysf)
                C2 = np.cumsum(ysf2)
                base1 = (C1[rstarts] - ysf[rstarts])[node_of]
                base2 = (C2[rstarts] - ysf2[rstarts])[node_of]
                l1 = C1 - base1
                l2 = C2 - base2
                k_left = (pos - seg_start_of + 1).astype(np.float64)
                k_right = (seg_size_of).astype(np.float64) - k_left
                cand = np.zeros(m, dtype=bool)
                if m > 1:
                    cand[:-1] = (node_of[1:] == node_of[:-1]) & (xs[1:] != xs[:-1])
                cand &= (k_left >= min_samples_leaf) & (k_right >= min_samples_leaf)
                cand &= sel[node_of, f]
                r1 = s1_r[node_of] - l1
                r2 = s2_r[node_of] - l2
                with np.errstate(divide="ignore", invalid="ignore"):
                    sse_p = (l2 - l1 * l1 / k_left) + (r2 - r1 * r1 / k_right)
                sse_p = np.where(cand, sse_p, np.inf)
                seg_min = np.minimum.reduceat(sse_p, rstarts)
                okf = np.isfinite(seg_min)
                if not okf.any():
                    continue
                posv = np.where(sse_p == seg_min[node_of], pos, m)
                arg = np.minimum.reduceat(posv, rstarts)
                argc = np.where(okf, arg, 0)
                x_hi = xs[np.minimum(argc + 1, m - 1)]
                thr_f = 0.5 * (xs[argc] + x_hi)
                thr_f = np.where(thr_f >= x_hi, xs[argc], thr_f)
                better = okf & (seg_min < best_sse)
                best_sse = np.where(better, seg_min, best_sse)
                best_thr = np.where(better, thr_f, best_thr)
                best_f = np.where(better, f, best_f)

        has_split = np.isfinite(best_sse)
        decrease = (imp[sp] * nf[sp] - best_sse) / nf[sp]
        do_split = has_split & (decrease >= min_impurity_decrease - 1e-15)
        K2 = int(do_split.sum())
        if K2 == 0:
            break

        # ---- stable partition of every split node's slots ---- #
        dsp = do_split[node_of]
        gl_region = Xs[ro, best_f[node_of]] <= best_thr[node_of]
        glf = gl_region.astype(np.int64)
        nL_all = np.add.reduceat(glf, rstarts)
        szL = nL_all[do_split]
        szR = rsizes[do_split] - szL
        child_sizes = np.empty(2 * K2, dtype=np.int64)
        child_sizes[0::2] = szL
        child_sizes[1::2] = szR
        new_starts = np.concatenate(([0], np.cumsum(child_sizes)))[:-1]
        m2 = int(child_sizes.sum())
        idmap = np.full(K, -1, dtype=np.int64)
        idmap[np.nonzero(do_split)[0]] = np.arange(K2)
        node2_of = idmap[node_of]

        def _scatter(slots: np.ndarray, go_left: np.ndarray) -> np.ndarray:
            """Stable counting partition: left slots then right, per node."""
            g = go_left.astype(np.int64)
            cg = np.cumsum(g)
            rank_l = cg - (cg[rstarts] - g[rstarts])[node_of] - 1
            h = 1 - g
            ch = np.cumsum(h)
            rank_r = ch - (ch[rstarts] - h[rstarts])[node_of] - 1
            child = np.clip(2 * node2_of + np.where(go_left, 0, 1), 0, None)
            dest = new_starts[child] + np.where(go_left, rank_l, rank_r)
            out = np.empty(m2, dtype=np.int64)
            out[dest[dsp]] = slots[dsp]
            return out

        if presort:
            slot_go = np.zeros(S, dtype=bool)
            slot_go[ro] = gl_region
            new_orderF = np.empty((d, m2), dtype=np.int64)
            for f in range(d):
                off = orderF[f][pos_mask]
                new_orderF[f] = _scatter(off, slot_go[off])
            orderF = new_orderF
        order = _scatter(ro, gl_region)

        # ---- record splits and enqueue children ---- #
        sp2 = sp[do_split]
        feat_level[sp2] = best_f[do_split]
        thr_level[sp2] = best_thr[do_split]
        left_level[sp2] = next_base + 2 * np.arange(K2)
        right_level[sp2] = next_base + 2 * np.arange(K2) + 1
        starts = new_starts
        sizes = child_sizes
        tree_of = np.repeat(tree_of[sp2], 2)
        depth += 1

    # ---- split the level-major arena into per-tree Tree objects ---- #
    feature_all = np.concatenate(A_feature)
    threshold_all = np.concatenate(A_threshold)
    left_all = np.concatenate(A_left)
    right_all = np.concatenate(A_right)
    value_all = np.concatenate(A_value)
    n_all = np.concatenate(A_n)
    imp_all = np.concatenate(A_imp)
    tree_all = np.concatenate(A_tree)

    trees: list[Tree] = []
    arena_to_local = np.full(arena_count, -1, dtype=np.int64)
    for t in range(n_trees):
        mask = tree_all == t
        arena_to_local[mask] = np.arange(int(mask.sum()))
        lt = left_all[mask]
        rt = right_all[mask]
        trees.append(Tree(
            feature=feature_all[mask],
            threshold=threshold_all[mask],
            left=np.where(lt >= 0, arena_to_local[np.clip(lt, 0, None)], _NO_CHILD),
            right=np.where(rt >= 0, arena_to_local[np.clip(rt, 0, None)], _NO_CHILD),
            value=value_all[mask],
            n_samples=n_all[mask],
            impurity=imp_all[mask],
        ))
    return trees
