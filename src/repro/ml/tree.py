"""CART regression trees.

:class:`DecisionTreeRegressor` implements the classic CART algorithm with
variance (MSE) reduction as the split criterion.  Two splitters are
provided:

* ``"best"`` — exhaustive search over all candidate thresholds of each
  considered feature (scikit-learn's default decision tree / random forest
  behaviour);
* ``"random"`` — one uniformly random threshold per considered feature
  (the *extremely randomized trees* splitter of Geurts et al., used by
  :class:`repro.ml.forest.ExtraTreesRegressor`, the best performing model
  in the paper's Figure 3).

Four construction engines are available (see :mod:`repro.ml.engine`):
the original recursive builder (``"legacy"``), a bit-identical presorted
work-stack builder (``"stack"``, the default — no per-node ``argsort``, no
Python recursion), the level-synchronous ``"batched"`` builder shared
with the forest estimators, and its histogram-binned sibling (``"hist"``,
also selectable via ``tree_method="hist"``).  Candidate-split scoring is
vectorized with
cumulative sums over the sorted targets, and prediction descends all query
rows through the flat node arrays simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin
from repro.ml.engine import get_batched_builder, resolve_build_engine
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_is_fitted, check_X_y

__all__ = ["DecisionTreeRegressor", "Tree"]

_NO_CHILD = -1


@dataclass
class Tree:
    """Flat array representation of a fitted regression tree.

    Attributes
    ----------
    feature:
        Split feature index per node (-1 for leaves).
    threshold:
        Split threshold per node (NaN for leaves).
    left, right:
        Child node indices (-1 for leaves).
    value:
        Mean training target of the samples reaching the node.
    n_samples:
        Number of training samples reaching the node.
    impurity:
        Variance of the training targets at the node.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    n_samples: np.ndarray
    impurity: np.ndarray

    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return int(np.sum(self.feature == _NO_CHILD))

    @property
    def max_depth(self) -> int:
        """Depth of the deepest leaf (root = depth 0).

        Computed by a vectorized breadth-first frontier walk: one NumPy
        step per tree level instead of a Python loop over every node.
        """
        if not self.node_count:
            return 0
        depth = 0
        frontier = np.array([0], dtype=np.int64)
        while True:
            children = np.concatenate((self.left[frontier], self.right[frontier]))
            children = children[children != _NO_CHILD]
            if children.size == 0:
                return depth
            depth += 1
            frontier = children

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Return the leaf value for every row of *X*."""
        return self.value[self.apply(X)]

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Return the index of the leaf each row of *X* falls into."""
        n = X.shape[0]
        nodes = np.zeros(n, dtype=np.int64)
        active = self.feature[nodes] != _NO_CHILD
        while np.any(active):
            idx = np.nonzero(active)[0]
            cur = nodes[idx]
            feat = self.feature[cur]
            thr = self.threshold[cur]
            go_left = X[idx, feat] <= thr
            nodes[idx] = np.where(go_left, self.left[cur], self.right[cur])
            active[idx] = self.feature[nodes[idx]] != _NO_CHILD
        return nodes

    def decision_path_lengths(self, X: np.ndarray) -> np.ndarray:
        """Return the depth of the leaf reached by every row of *X*."""
        n = X.shape[0]
        nodes = np.zeros(n, dtype=np.int64)
        depths = np.zeros(n, dtype=np.int64)
        active = self.feature[nodes] != _NO_CHILD
        while np.any(active):
            idx = np.nonzero(active)[0]
            cur = nodes[idx]
            feat = self.feature[cur]
            thr = self.threshold[cur]
            go_left = X[idx, feat] <= thr
            nodes[idx] = np.where(go_left, self.left[cur], self.right[cur])
            depths[idx] += 1
            active[idx] = self.feature[nodes[idx]] != _NO_CHILD
        return depths


class _TreeBuilder:
    """Depth-first recursive builder (the ``"legacy"`` reference engine)."""

    def __init__(
        self,
        *,
        splitter: str,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int,
        min_impurity_decrease: float,
        rng: np.random.Generator,
    ) -> None:
        self.splitter = splitter
        self.max_depth = np.inf if max_depth is None else max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.min_impurity_decrease = min_impurity_decrease
        self.rng = rng
        # Growing lists; converted to arrays at the end.
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        self._n_samples: list[int] = []
        self._impurity: list[float] = []

    # ------------------------------------------------------------------ #
    def build(self, X: np.ndarray, y: np.ndarray) -> Tree:
        self._grow(X, y, np.arange(X.shape[0]), depth=0)
        return Tree(
            feature=np.asarray(self._feature, dtype=np.int64),
            threshold=np.asarray(self._threshold, dtype=np.float64),
            left=np.asarray(self._left, dtype=np.int64),
            right=np.asarray(self._right, dtype=np.int64),
            value=np.asarray(self._value, dtype=np.float64),
            n_samples=np.asarray(self._n_samples, dtype=np.int64),
            impurity=np.asarray(self._impurity, dtype=np.float64),
        )

    def _new_node(self, value: float, n: int, impurity: float) -> int:
        node_id = len(self._feature)
        self._feature.append(_NO_CHILD)
        self._threshold.append(np.nan)
        self._left.append(_NO_CHILD)
        self._right.append(_NO_CHILD)
        self._value.append(value)
        self._n_samples.append(n)
        self._impurity.append(impurity)
        return node_id

    def _grow(self, X: np.ndarray, y: np.ndarray, indices: np.ndarray, depth: int) -> int:
        y_node = y[indices]
        n = len(indices)
        mean = float(y_node.mean())
        impurity = float(y_node.var())
        node_id = self._new_node(mean, n, impurity)

        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or n < 2 * self.min_samples_leaf
            or impurity <= 1e-15
        ):
            return node_id

        split = self._find_split(X, y, indices, impurity)
        if split is None:
            return node_id

        feature, threshold, left_idx, right_idx = split
        left_id = self._grow(X, y, left_idx, depth + 1)
        right_id = self._grow(X, y, right_idx, depth + 1)
        self._feature[node_id] = feature
        self._threshold[node_id] = threshold
        self._left[node_id] = left_id
        self._right[node_id] = right_id
        return node_id

    # ------------------------------------------------------------------ #
    def _find_split(self, X, y, indices, parent_impurity):
        n = len(indices)
        n_features = X.shape[1]
        features = self.rng.permutation(n_features)

        best = None  # (score, feature, threshold)
        n_visited_with_candidates = 0
        y_node = y[indices]
        parent_sse = parent_impurity * n

        for feature in features:
            if n_visited_with_candidates >= self.max_features and best is not None:
                break
            x = X[indices, feature]
            lo, hi = x.min(), x.max()
            if lo == hi:
                continue  # constant feature at this node
            n_visited_with_candidates += 1

            if self.splitter == "random":
                candidate = self._score_random_threshold(x, y_node, lo, hi)
            else:
                candidate = self._score_best_threshold(x, y_node)
            if candidate is None:
                continue
            score, threshold = candidate
            if best is None or score < best[0]:
                best = (score, int(feature), float(threshold))

        if best is None:
            return None
        score, feature, threshold = best
        decrease = (parent_sse - score) / n
        if decrease < self.min_impurity_decrease - 1e-15:
            return None

        mask = X[indices, feature] <= threshold
        left_idx = indices[mask]
        right_idx = indices[~mask]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return None
        return feature, threshold, left_idx, right_idx

    def _score_best_threshold(self, x: np.ndarray, y: np.ndarray):
        """Best (min total SSE) threshold for one feature, or None."""
        order = np.argsort(x, kind="mergesort")
        xs = x[order]
        ys = y[order]
        n = len(xs)
        # Candidate split positions i mean: left = [0..i), right = [i..n).
        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        total = csum[-1]
        total2 = csum2[-1]
        pos = np.arange(1, n)
        # Only split between distinct consecutive values and obey min_samples_leaf.
        distinct = xs[1:] != xs[:-1]
        leaf_ok = (pos >= self.min_samples_leaf) & (n - pos >= self.min_samples_leaf)
        valid = distinct & leaf_ok
        if not np.any(valid):
            return None
        left_sum = csum[:-1]
        left_sum2 = csum2[:-1]
        right_sum = total - left_sum
        right_sum2 = total2 - left_sum2
        n_left = pos
        n_right = n - pos
        sse = (left_sum2 - left_sum**2 / n_left) + (right_sum2 - right_sum**2 / n_right)
        sse = np.where(valid, sse, np.inf)
        best_i = int(np.argmin(sse))
        threshold = 0.5 * (xs[best_i] + xs[best_i + 1])
        # Guard against midpoints that round onto the right value.
        if threshold >= xs[best_i + 1]:
            threshold = xs[best_i]
        return float(sse[best_i]), float(threshold)

    def _score_random_threshold(self, x: np.ndarray, y: np.ndarray, lo: float, hi: float):
        """Extra-trees style: draw one uniform threshold and score it."""
        threshold = float(self.rng.uniform(lo, hi))
        if threshold >= hi:  # numerical edge; ensure both sides non-empty
            threshold = np.nextafter(hi, lo)
        mask = x <= threshold
        n_left = int(mask.sum())
        n_right = len(x) - n_left
        if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
            return None
        y_left = y[mask]
        y_right = y[~mask]
        sse = float(y_left.var() * n_left + y_right.var() * n_right)
        return sse, threshold


class _StackTreeBuilder(_TreeBuilder):
    """Work-stack builder with a fit-time feature presort (``"stack"`` engine).

    Bit-identical to :class:`_TreeBuilder`: nodes are created in the same
    depth-first pre-order, the RNG is consumed in the same sequence, and
    every floating-point quantity (thresholds, impurities, split scores)
    is computed from the same arrays in the same order.  The differences
    are purely mechanical:

    * the per-node ``argsort`` of the ``"best"`` splitter is replaced by
      one stable ``argsort`` per feature at fit time, maintained through
      splits with stable index partitioning (a stable partition of a
      stably sorted sequence stays stably sorted);
    * the Python recursion of ``_grow`` is replaced by an explicit
      LIFO work stack (right child pushed first so the left subtree is
      processed next, exactly like the recursive pre-order).
    """

    def build(self, X: np.ndarray, y: np.ndarray) -> Tree:
        presort = self.splitter == "best"
        # Column f of ``sorted_cols`` holds the node's sample indices
        # ordered by feature f (stable, so ties keep ascending index order
        # — the same order the per-node mergesort argsort produced).
        root_sorted = np.argsort(X, axis=0, kind="stable") if presort else None
        root = np.arange(X.shape[0])
        stack = [(root, root_sorted, 0, -1, False)]
        while stack:
            indices, sorted_cols, depth, parent, is_left = stack.pop()
            y_node = y[indices]
            n = len(indices)
            mean = float(y_node.mean())
            impurity = float(y_node.var())
            node_id = self._new_node(mean, n, impurity)
            if parent >= 0:
                if is_left:
                    self._left[parent] = node_id
                else:
                    self._right[parent] = node_id

            if (
                depth >= self.max_depth
                or n < self.min_samples_split
                or n < 2 * self.min_samples_leaf
                or impurity <= 1e-15
            ):
                continue

            split = self._find_split_presorted(X, y, indices, sorted_cols, impurity)
            if split is None:
                continue
            feature, threshold, left, right = split
            self._feature[node_id] = feature
            self._threshold[node_id] = threshold
            stack.append((*right, depth + 1, node_id, False))
            stack.append((*left, depth + 1, node_id, True))

        return Tree(
            feature=np.asarray(self._feature, dtype=np.int64),
            threshold=np.asarray(self._threshold, dtype=np.float64),
            left=np.asarray(self._left, dtype=np.int64),
            right=np.asarray(self._right, dtype=np.int64),
            value=np.asarray(self._value, dtype=np.float64),
            n_samples=np.asarray(self._n_samples, dtype=np.int64),
            impurity=np.asarray(self._impurity, dtype=np.float64),
        )

    def _find_split_presorted(self, X, y, indices, sorted_cols, parent_impurity):
        n = len(indices)
        n_features = X.shape[1]
        features = self.rng.permutation(n_features)

        best = None  # (score, feature, threshold)
        n_visited_with_candidates = 0
        y_node = y[indices]
        parent_sse = parent_impurity * n

        for feature in features:
            if n_visited_with_candidates >= self.max_features and best is not None:
                break
            if self.splitter == "random":
                x = X[indices, feature]
                lo, hi = x.min(), x.max()
                if lo == hi:
                    continue
                n_visited_with_candidates += 1
                candidate = self._score_random_threshold(x, y_node, lo, hi)
            else:
                order = sorted_cols[:, feature]
                xs = X[order, feature]
                if xs[0] == xs[-1]:
                    continue
                n_visited_with_candidates += 1
                candidate = self._score_presorted(xs, y[order])
            if candidate is None:
                continue
            score, threshold = candidate
            if best is None or score < best[0]:
                best = (score, int(feature), float(threshold))

        if best is None:
            return None
        score, feature, threshold = best
        decrease = (parent_sse - score) / n
        if decrease < self.min_impurity_decrease - 1e-15:
            return None

        mask = X[indices, feature] <= threshold
        left_idx = indices[mask]
        right_idx = indices[~mask]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return None
        if sorted_cols is None:
            return feature, threshold, (left_idx, None), (right_idx, None)
        # Stable partition of every per-feature order by the split predicate.
        cols_t = sorted_cols.T  # (n_features, n)
        go_left_t = (X[sorted_cols, feature] <= threshold).T
        left_sorted = cols_t[go_left_t].reshape(n_features, len(left_idx)).T
        right_sorted = cols_t[~go_left_t].reshape(n_features, len(right_idx)).T
        return feature, threshold, (left_idx, left_sorted), (right_idx, right_sorted)

    def _score_presorted(self, xs: np.ndarray, ys: np.ndarray):
        """Same scoring as ``_score_best_threshold`` on pre-sorted inputs."""
        n = len(xs)
        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        total = csum[-1]
        total2 = csum2[-1]
        pos = np.arange(1, n)
        distinct = xs[1:] != xs[:-1]
        leaf_ok = (pos >= self.min_samples_leaf) & (n - pos >= self.min_samples_leaf)
        valid = distinct & leaf_ok
        if not np.any(valid):
            return None
        left_sum = csum[:-1]
        left_sum2 = csum2[:-1]
        right_sum = total - left_sum
        right_sum2 = total2 - left_sum2
        n_left = pos
        n_right = n - pos
        sse = (left_sum2 - left_sum**2 / n_left) + (right_sum2 - right_sum**2 / n_right)
        sse = np.where(valid, sse, np.inf)
        best_i = int(np.argmin(sse))
        threshold = 0.5 * (xs[best_i] + xs[best_i + 1])
        if threshold >= xs[best_i + 1]:
            threshold = xs[best_i]
        return float(sse[best_i]), float(threshold)


_BUILDERS = {"legacy": _TreeBuilder, "stack": _StackTreeBuilder}


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """CART regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until leaves are pure or smaller
        than ``min_samples_split``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each leaf.
    max_features:
        Number of features examined per split: an int, a float fraction in
        (0, 1], ``"sqrt"``, ``"log2"``, or ``None`` (all features).
    splitter:
        ``"best"`` (exhaustive thresholds) or ``"random"`` (extra-trees).
    min_impurity_decrease:
        Minimum weighted variance reduction required to keep a split.
    random_state:
        Seed controlling feature shuffling and random thresholds.
    engine:
        Construction engine: ``"legacy"``, ``"stack"``, ``"batched"`` or
        ``"hist"``; ``None`` uses the process default (see
        :mod:`repro.ml.engine`).
    tree_method:
        ``None`` (defer to *engine*), ``"exact"`` (insist on exact
        threshold search) or ``"hist"`` (histogram-binned split search,
        see :mod:`repro.ml._hist`).
    max_bins:
        Quantile bins per feature for the ``"hist"`` method (ignored by
        the exact engines).
    """

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        splitter: str = "best",
        min_impurity_decrease: float = 0.0,
        random_state=None,
        engine: str | None = None,
        tree_method: str | None = None,
        max_bins: int = 256,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state
        self.engine = engine
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.tree_: Tree | None = None
        self.n_features_in_: int | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X, y, _hist_prebinned=None) -> DecisionTreeRegressor:
        """Grow the tree on the training data.

        ``_hist_prebinned`` optionally carries ``(codes, edges_pad)``
        from :func:`repro.ml._hist.bin_dataset` for the rows of *X*, so
        callers fitting many hist trees on the same feature matrix
        (gradient boosting) quantize it once instead of per tree.
        """
        X, y = check_X_y(X, y)
        self._validate_hyperparameters()
        self.n_features_in_ = X.shape[1]
        engine = resolve_build_engine(self.tree_method, self.engine, kind="tree")
        if engine in ("batched", "hist"):
            build, extra = get_batched_builder(engine, self.max_bins)
            if engine == "hist" and _hist_prebinned is not None:
                extra["prebinned"] = _hist_prebinned

            self.tree_ = build(
                X, y,
                sample_sets=[np.arange(X.shape[0])],
                seeds=[self.random_state],
                splitter=self.splitter,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self._resolve_max_features(X.shape[1]),
                min_impurity_decrease=self.min_impurity_decrease,
                **extra,
            )[0]
            return self
        builder = _BUILDERS[engine](
            splitter=self.splitter,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._resolve_max_features(X.shape[1]),
            min_impurity_decrease=self.min_impurity_decrease,
            rng=check_random_state(self.random_state),
        )
        self.tree_ = builder.build(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict the target for every row of *X*."""
        check_is_fitted(self, "tree_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, but the tree was fitted with "
                f"{self.n_features_in_}"
            )
        return self.tree_.predict(X)

    def apply(self, X) -> np.ndarray:
        """Return the leaf index each row of *X* lands in."""
        check_is_fitted(self, "tree_")
        X = check_array(X)
        return self.tree_.apply(X)

    def get_depth(self) -> int:
        """Depth of the fitted tree."""
        check_is_fitted(self, "tree_")
        return self.tree_.max_depth

    def get_n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        check_is_fitted(self, "tree_")
        return self.tree_.n_leaves

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-based feature importances (sum to 1, or all zeros)."""
        check_is_fitted(self, "tree_")
        tree = self.tree_
        importances = np.zeros(self.n_features_in_, dtype=np.float64)
        for node in range(tree.node_count):
            feat = tree.feature[node]
            if feat == _NO_CHILD:
                continue
            left, right = tree.left[node], tree.right[node]
            n, n_l, n_r = tree.n_samples[node], tree.n_samples[left], tree.n_samples[right]
            decrease = (
                n * tree.impurity[node]
                - n_l * tree.impurity[left]
                - n_r * tree.impurity[right]
            )
            importances[feat] += max(0.0, decrease)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances

    # ------------------------------------------------------------------ #
    def _validate_hyperparameters(self) -> None:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {self.max_depth}")
        if self.min_samples_split < 2:
            raise ValueError(
                f"min_samples_split must be >= 2, got {self.min_samples_split}"
            )
        if self.min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.splitter not in ("best", "random"):
            raise ValueError(f"splitter must be 'best' or 'random', got {self.splitter!r}")
        if self.min_impurity_decrease < 0:
            raise ValueError("min_impurity_decrease must be >= 0")
        if self.max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {self.max_bins}")

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if isinstance(mf, str):
            if mf == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if mf == "log2":
                return max(1, int(np.log2(n_features)))
            raise ValueError(f"unknown max_features string {mf!r}")
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"float max_features must be in (0, 1], got {mf}")
            return max(1, int(round(mf * n_features)))
        mf = int(mf)
        if not 1 <= mf <= n_features:
            raise ValueError(
                f"max_features must be in [1, {n_features}], got {mf}"
            )
        return mf
