"""Contiguous flat-array packing of a fitted tree ensemble.

A fitted forest holds ``n_estimators`` independent :class:`Tree` objects;
predicting with a Python loop over them costs one full vectorized descent
per tree.  :class:`PackedForest` concatenates all node arrays into one
arena (child indices shifted by per-tree offsets) and descends **all
trees for all query rows simultaneously**: the work array holds one
current-node entry per (row, tree) pair, and each iteration of the
traversal loop advances every pair that has not yet reached a leaf.  The
interpreter cost is ``O(max_tree_depth)`` NumPy calls for the whole
ensemble instead of ``O(n_estimators * max_depth)``.

The arenas double as the fitted-model *persistence* format of the
serving tier (:mod:`repro.serving`): :meth:`PackedForest.state` exposes
them as a flat ``name -> ndarray`` mapping and :meth:`PackedForest.from_state`
rebuilds an identical instance from it, so a forest round-trips through
``.npz`` bytes without pickle and predicts bit-identically on the other
side (prediction only ever reads these six arrays).
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import _NO_CHILD, Tree

__all__ = ["PackedForest"]

#: Arena arrays that fully determine a packed forest's predictions, in
#: the order :meth:`PackedForest.state` emits them.
_STATE_FIELDS = ("roots", "feature", "threshold", "value", "left", "right")


class PackedForest:
    """Flat single-arena view of a list of fitted :class:`Tree` objects."""

    def __init__(self, trees: list[Tree]) -> None:
        if not trees:
            raise ValueError("PackedForest needs at least one tree")
        counts = np.array([t.node_count for t in trees], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
        self.n_trees = len(trees)
        self.roots = offsets
        self.feature = np.concatenate([t.feature for t in trees])
        self.threshold = np.concatenate([t.threshold for t in trees])
        self.value = np.concatenate([t.value for t in trees])
        self.left = np.concatenate([
            np.where(t.left != _NO_CHILD, t.left + off, _NO_CHILD)
            for t, off in zip(trees, offsets, strict=True)
        ])
        self.right = np.concatenate([
            np.where(t.right != _NO_CHILD, t.right + off, _NO_CHILD)
            for t, off in zip(trees, offsets, strict=True)
        ])

    # ------------------------------------------------------------------ #
    # Arena (de)serialization — the serving tier's model format
    # ------------------------------------------------------------------ #
    def state(self) -> dict[str, np.ndarray]:
        """The six arena arrays as a ``name -> ndarray`` mapping.

        The mapping is the forest's complete prediction state: feed it
        to :meth:`from_state` (possibly after a round trip through
        ``np.savez``/``np.load``) to rebuild an instance whose
        :meth:`predict` / :meth:`predict_all` / :meth:`predict_std`
        outputs are bit-identical to this one's.
        """
        return {name: getattr(self, name) for name in _STATE_FIELDS}

    @classmethod
    def from_state(cls, state) -> PackedForest:
        """Rebuild a forest from the arenas :meth:`state` produced.

        *state* is any mapping holding the six arrays (an ``np.load``
        result works directly).  Shapes and child indices are validated
        so a truncated or mismatched blob fails loudly here rather than
        predicting garbage.
        """
        packed = cls.__new__(cls)
        try:
            arrays = {name: np.asarray(state[name]) for name in _STATE_FIELDS}
        except KeyError as exc:
            raise ValueError(f"packed-forest state is missing array {exc}") from None
        roots = arrays["roots"].astype(np.int64, copy=False)
        n_nodes = arrays["feature"].shape[0]
        if roots.ndim != 1 or roots.size < 1:
            raise ValueError("packed-forest state has no trees")
        for name in ("feature", "threshold", "value", "left", "right"):
            if arrays[name].shape != (n_nodes,):
                raise ValueError(
                    f"packed-forest arena {name!r} has shape "
                    f"{arrays[name].shape}, expected ({n_nodes},)")
        children = np.concatenate([arrays["left"], arrays["right"]])
        children = children[children != _NO_CHILD]
        if n_nodes == 0 or np.any((roots < 0) | (roots >= n_nodes)) or (
                children.size and (children.min() < 0 or children.max() >= n_nodes)):
            raise ValueError("packed-forest state has out-of-range node indices")
        packed.n_trees = int(roots.size)
        packed.roots = roots
        packed.feature = arrays["feature"].astype(np.int64, copy=False)
        packed.threshold = arrays["threshold"].astype(np.float64, copy=False)
        packed.value = arrays["value"].astype(np.float64, copy=False)
        packed.left = arrays["left"].astype(np.int64, copy=False)
        packed.right = arrays["right"].astype(np.int64, copy=False)
        return packed

    @property
    def node_count(self) -> int:
        """Total number of nodes across all packed trees."""
        return len(self.feature)

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf values: ``(n_samples, n_trees)``, one descent for all."""
        n = X.shape[0]
        T = self.n_trees
        nodes = np.tile(self.roots, n)  # flat (n*T,), row-major (row, tree)
        active = self.feature[nodes] != _NO_CHILD
        while True:
            idx = np.nonzero(active)[0]
            if idx.size == 0:
                break
            cur = nodes[idx]
            rows = idx // T
            go_left = X[rows, self.feature[cur]] <= self.threshold[cur]
            nxt = np.where(go_left, self.left[cur], self.right[cur])
            nodes[idx] = nxt
            active[idx] = self.feature[nxt] != _NO_CHILD
        return self.value[nodes].reshape(n, T)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Ensemble mean prediction."""
        return self.predict_all(X).mean(axis=1)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Per-sample standard deviation across trees."""
        return self.predict_all(X).std(axis=1)
