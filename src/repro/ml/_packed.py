"""Contiguous flat-array packing of a fitted tree ensemble.

A fitted forest holds ``n_estimators`` independent :class:`Tree` objects;
predicting with a Python loop over them costs one full vectorized descent
per tree.  :class:`PackedForest` concatenates all node arrays into one
arena (child indices shifted by per-tree offsets) and descends **all
trees for all query rows simultaneously**: the work array holds one
current-node entry per (row, tree) pair, and each iteration of the
traversal loop advances every pair that has not yet reached a leaf.  The
interpreter cost is ``O(max_tree_depth)`` NumPy calls for the whole
ensemble instead of ``O(n_estimators * max_depth)``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import _NO_CHILD, Tree

__all__ = ["PackedForest"]


class PackedForest:
    """Flat single-arena view of a list of fitted :class:`Tree` objects."""

    def __init__(self, trees: list[Tree]) -> None:
        if not trees:
            raise ValueError("PackedForest needs at least one tree")
        counts = np.array([t.node_count for t in trees], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
        self.n_trees = len(trees)
        self.roots = offsets
        self.feature = np.concatenate([t.feature for t in trees])
        self.threshold = np.concatenate([t.threshold for t in trees])
        self.value = np.concatenate([t.value for t in trees])
        self.left = np.concatenate([
            np.where(t.left != _NO_CHILD, t.left + off, _NO_CHILD)
            for t, off in zip(trees, offsets, strict=True)
        ])
        self.right = np.concatenate([
            np.where(t.right != _NO_CHILD, t.right + off, _NO_CHILD)
            for t, off in zip(trees, offsets, strict=True)
        ])

    @property
    def node_count(self) -> int:
        """Total number of nodes across all packed trees."""
        return len(self.feature)

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf values: ``(n_samples, n_trees)``, one descent for all."""
        n = X.shape[0]
        T = self.n_trees
        nodes = np.tile(self.roots, n)  # flat (n*T,), row-major (row, tree)
        active = self.feature[nodes] != _NO_CHILD
        while True:
            idx = np.nonzero(active)[0]
            if idx.size == 0:
                break
            cur = nodes[idx]
            rows = idx // T
            go_left = X[rows, self.feature[cur]] <= self.threshold[cur]
            nxt = np.where(go_left, self.left[cur], self.right[cur])
            nodes[idx] = nxt
            active[idx] = self.feature[nxt] != _NO_CHILD
        return self.value[nodes].reshape(n, T)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Ensemble mean prediction."""
        return self.predict_all(X).mean(axis=1)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Per-sample standard deviation across trees."""
        return self.predict_all(X).std(axis=1)
