"""Shared CLI surface: the flag groups every entry point speaks.

Four console surfaces ship with the project — the experiment runner
(``python -m repro.experiments``), the fleet worker
(``python -m repro.distributed.worker``), the object server
(``python -m repro.datasets.object_server``) and the model server
(``repro-serve``) — and they must agree on how common concerns are
spelled.  This module owns those flag groups as argparse *parent
parsers* so each group is declared exactly once:

* :func:`add_store_args` — ``--store-dir`` / ``--store-url`` (where
  artifacts live);
* :func:`add_auth_args` — ``--auth-key-file`` / ``--insecure`` (the
  shared-secret credential every wire surface accepts);
* :func:`add_logging_parent` — ``--log-format`` / ``--log-level``
  (wrapping :func:`repro.obs.logging.add_logging_args`);
* :func:`add_bind_args` — ``--bind`` / ``--port`` for the HTTP servers.

Plus the policy helpers the flags feed:

* :func:`load_auth_key` reads and validates a key file;
* :func:`check_bind_safety` enforces the safe-by-default rule — binding
  a non-loopback interface without a key is a hard startup error
  unless ``--insecure`` explicitly opts out.

``tests/test_cli_surfaces.py`` asserts, table-driven, that all four
entry points keep exposing these groups — a new surface that forgets
``--auth-key-file`` fails CI, not a production rollout.
"""

from __future__ import annotations

import argparse
import ipaddress
from pathlib import Path

from repro.obs.logging import add_logging_args

__all__ = [
    "add_auth_args",
    "add_bind_args",
    "add_logging_parent",
    "add_store_args",
    "check_bind_safety",
    "is_loopback",
    "load_auth_key",
]


def _parent() -> argparse.ArgumentParser:
    return argparse.ArgumentParser(add_help=False)


def add_store_args(dir_help: str | None = None,
                   url_help: str | None = None) -> argparse.ArgumentParser:
    """Parent parser for the ``--store-dir`` / ``--store-url`` group."""
    parent = _parent()
    group = parent.add_mutually_exclusive_group()
    group.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help=dir_help or "store artifacts under this directory")
    group.add_argument(
        "--store-url", default=None, metavar="URL",
        help=url_help or "store artifacts at this locator: file://DIR, "
                         "memory:// or http://HOST:PORT/ (an object store)")
    return parent


def add_auth_args() -> argparse.ArgumentParser:
    """Parent parser for the ``--auth-key-file`` / ``--insecure`` group."""
    parent = _parent()
    parent.add_argument(
        "--auth-key-file", default=None, metavar="FILE",
        help="file holding the fleet's shared secret; enables HMAC "
             "authentication on every wire surface this process speaks")
    parent.add_argument(
        "--insecure", action="store_true",
        help="explicitly allow serving a non-loopback bind address "
             "without authentication (trusted networks only)")
    return parent


def add_logging_parent() -> argparse.ArgumentParser:
    """Parent parser for the shared ``--log-format`` / ``--log-level`` group."""
    parent = _parent()
    add_logging_args(parent)
    return parent


def add_bind_args(default_port: int,
                  default_bind: str = "127.0.0.1") -> argparse.ArgumentParser:
    """Parent parser for an HTTP server's ``--bind`` / ``--port`` pair."""
    parent = _parent()
    parent.add_argument(
        "--bind", default=default_bind, metavar="HOST",
        help=f"listen address (default {default_bind}; a non-loopback "
             "bind requires --auth-key-file or --insecure)")
    parent.add_argument(
        "--port", type=int, default=default_port, metavar="PORT",
        help=f"listen port (default {default_port}; 0 = ephemeral)")
    return parent


def load_auth_key(path: str | None, *,
                  parser: argparse.ArgumentParser | None = None) -> bytes | None:
    """The shared-secret key bytes from ``--auth-key-file`` (``None`` = no auth).

    The file's contents are stripped of surrounding whitespace (so a
    trailing newline from ``echo`` or an editor does not silently
    change the key) and must be non-empty.  With *parser* given,
    problems surface as ``parser.error`` (exit 2) instead of a
    traceback.
    """
    if path is None:
        return None

    def fail(message: str):
        if parser is not None:
            parser.error(message)
        raise ValueError(message)

    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        return fail(f"cannot read --auth-key-file {path!r}: {exc}")
    key = raw.strip()
    if not key:
        return fail(f"--auth-key-file {path!r} is empty")
    return key


def is_loopback(host: str) -> bool:
    """Whether *host* names only the local machine's loopback interface."""
    if host in ("localhost", ""):
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        # A hostname (or a wildcard spelled oddly): not provably loopback.
        return False


def check_bind_safety(parser: argparse.ArgumentParser, host: str, *,
                      auth: bytes | None, insecure: bool) -> None:
    """Refuse to serve a reachable interface without authentication.

    Loopback binds may stay keyless (the historical default); anything
    else without a key is a startup error unless ``--insecure`` spells
    out the operator's intent.
    """
    if auth is not None or insecure or is_loopback(host):
        return
    parser.error(
        f"refusing to bind non-loopback address {host!r} without "
        f"authentication: pass --auth-key-file FILE (recommended) or "
        f"--insecure to serve an open endpoint on a trusted network")
