"""Fleet worker: pulls cell batches from a coordinator, streams results back.

Runnable as ``python -m repro.distributed.worker --connect HOST:PORT
[--store-dir DIR | --store-url URL]`` (also exposed as ``python -m
repro.experiments fleet-worker ...``).  A worker is a long-lived client: it serves every
plan the coordinator runs over one connection and exits when the
coordinator says :class:`~repro.distributed.protocol.Goodbye` or goes
away.

Per-plan state follows the same memo discipline as the process executor:
the dataset, warmed analytical caches and series factories are resolved
once per plan fingerprint and reused across batches.  Resolution never
simulates: a worker with a store (``--store-dir`` directory or any
``--store-url`` backend) loads artifacts whose fingerprint exists and
*downloads* the rest — **directly from the store the coordinator
advertises** in the plan manifest (a shared ``file://`` directory or an
``http://`` object store) when one is reachable, through
``FetchDataset``/``FetchCache`` relay frames on the coordinator's socket
otherwise.  Downloads are saved, so the store warms for future runs; a
store-less worker keeps them in memory.  ``direct_fetches`` /
``relay_fetches`` count which path each artifact took.

A daemon thread heartbeats on an interval even while cells compute, so
the coordinator can tell "slow" from "dead" without bounding cell cost.

Failure semantics: a direct store fetch that fails for any reason
(missing key, unreachable store, checksum mismatch) is **logged with its
cause and counted** (``direct_fetch_errors``) before degrading to the
coordinator relay — degradation is never silent.  Relay blobs are
verified against the digest in the frame and retried on mismatch.  A
lost coordinator connection is retried (``reconnect_attempts`` fresh
handshakes, per-plan memo preserved) before the worker gives up and
exits cleanly.
"""

from __future__ import annotations

import argparse
import hmac
import io
import logging
import os
import socket
import sys
import threading
import time
import uuid

from repro.analytical.cache import AnalyticalPredictionCache
from repro.core.evaluation import evaluate_cell
from repro.datasets.backends import IntegrityError, resolve_backend, sha256_hex
from repro.datasets.store import _FORMAT_VERSION, DatasetStore, _simulator_versions
from repro.distributed import protocol
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    Batch,
    CacheBlob,
    ConnectionClosed,
    DatasetBlob,
    FetchCache,
    FetchDataset,
    GetBatch,
    GetPlan,
    Goodbye,
    Heartbeat,
    Hello,
    Idle,
    NoPlan,
    PlanAssignment,
    PlanDone,
    Reject,
    Results,
    parse_address,
)
from repro.cli import add_auth_args, add_logging_parent, add_store_args, load_auth_key
from repro.obs.logging import configure_logging
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import span_into
from repro.utils.retry import RetryPolicy

__all__ = ["FleetWorker", "HandshakeRejected", "main"]

logger = logging.getLogger(__name__)

#: Default policy for a worker's fallible fetches (relay blob verify,
#: advertised-store transport); jittered so a fleet does not stampede.
WORKER_RETRY = RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=1.0)


class HandshakeRejected(RuntimeError):
    """The coordinator refused the HELLO handshake (version/auth mismatch)."""


class _StalePlan(Exception):
    """The coordinator moved on from the plan being bootstrapped."""


class FleetWorker:
    """One fleet worker: connect, handshake, serve plans until Goodbye.

    Parameters
    ----------
    address:
        ``(host, port)`` of the coordinator.
    store:
        Optional persistent :class:`DatasetStore` (or a directory path /
        ``file://`` / ``memory://`` / ``http(s)://`` store URL).
        Artifacts present under the plan's fingerprint are loaded from
        the store; missing ones are downloaded — from the coordinator's
        advertised store when reachable, over the coordinator socket
        otherwise — and saved.  Without a store the downloads stay in
        memory.
    connect_timeout:
        Seconds to keep retrying the initial connection (workers are
        typically started before, or racing with, the coordinator).
    heartbeat_interval:
        Seconds between liveness heartbeats; must be well under the
        coordinator's ``heartbeat_timeout``.
    cell_delay:
        Artificial per-cell sleep in seconds (fault-injection knob for
        tests and demos; defaults to ``$REPRO_FLEET_CELL_DELAY`` or 0).
    retry:
        :class:`~repro.utils.retry.RetryPolicy` for fallible fetches
        (advertised-store transport, relay-blob digest verification).
    reconnect_attempts:
        Fresh connect+handshake attempts after the coordinator connection
        drops mid-service (each within ``reconnect_timeout`` seconds)
        before the worker exits cleanly.  The per-plan memo survives a
        reconnect, so no artifact is re-fetched.
    auth_key:
        The fleet's shared secret.  With a key the HELLO handshake
        carries a challenge proof, the coordinator's WELCOME is
        verified, and every subsequent frame in both directions is
        HMAC-signed under a per-connection session key; the same key
        signs requests to ``http(s)://`` stores (the worker's own and
        the coordinator-advertised one).
    """

    def __init__(self, address: tuple[str, int], *, store=None,
                 worker_id: str | None = None, connect_timeout: float = 20.0,
                 heartbeat_interval: float = 1.0,
                 cell_delay: float | None = None,
                 retry: RetryPolicy | None = None,
                 reconnect_attempts: int = 3,
                 reconnect_timeout: float = 2.0,
                 auth_key: bytes | None = None) -> None:
        self.address = address
        self.auth_key = auth_key
        if store is None or isinstance(store, DatasetStore):
            self.store = store
        elif isinstance(store, str) and store.startswith(("http://", "https://")):
            self.store = DatasetStore(store, auth=auth_key)
        else:  # a directory path, file://memory:// URL or StoreBackend
            self.store = DatasetStore(store)
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}")
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        if cell_delay is None:
            cell_delay = float(os.environ.get("REPRO_FLEET_CELL_DELAY", "0") or 0)
        self.cell_delay = cell_delay
        self.retry = retry or WORKER_RETRY
        if reconnect_attempts < 0:
            raise ValueError(
                f"reconnect_attempts must be >= 0, got {reconnect_attempts}")
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_timeout = reconnect_timeout
        # The worker's telemetry registry: every counter below is shipped
        # to the coordinator inside Heartbeat/Results frames (protocol
        # v4) and merged into the fleet-wide view its status port serves.
        # The legacy int attributes (`worker.direct_fetches`, ...) remain
        # as read-only properties over these counters.
        self.metrics = MetricsRegistry(attach_to=REGISTRY)
        self._counters = {
            "plans_served": self.metrics.counter(
                "repro_worker_plans_served_total", "Plans this worker served"),
            "cells_evaluated": self.metrics.counter(
                "repro_worker_cells_evaluated_total",
                "Cells this worker evaluated"),
            # Artifacts bootstrapped directly from the advertised store
            # vs. relayed through the coordinator socket.
            "direct_fetches": self.metrics.counter(
                "repro_worker_direct_fetches_total",
                "Artifacts fetched directly from the advertised store"),
            "relay_fetches": self.metrics.counter(
                "repro_worker_relay_fetches_total",
                "Artifacts relayed through the coordinator socket"),
            # Failed direct fetches that degraded to relay — never silent.
            "direct_fetch_errors": self.metrics.counter(
                "repro_worker_direct_fetch_errors_total",
                "Direct fetches that failed and degraded to relay"),
            # Relay blobs rejected for a digest mismatch (each is retried).
            "blob_integrity_errors": self.metrics.counter(
                "repro_worker_blob_integrity_errors_total",
                "Relay blobs rejected for a digest mismatch"),
            # Successful re-connect+handshake cycles after a dropped socket.
            "reconnects": self.metrics.counter(
                "repro_worker_reconnects_total",
                "Successful reconnect+handshake cycles"),
        }
        self._send_lock = threading.Lock()
        #: Per-connection frame authenticator (rebuilt on every fresh
        #: connect so reconnects negotiate a new session key).
        self._auth: protocol.FrameAuth | None = None
        self._memo: dict[str, tuple] = {}
        self._advertised: dict[str, DatasetStore | None] = {}

    # Compatibility views over the registry counters (tests and callers
    # read these as plain ints; writes go through the registry so every
    # increment is atomic and wire-shippable).
    @property
    def plans_served(self) -> int:
        """Plans this worker served (registry-backed view)."""
        return int(self._counters["plans_served"].value)

    @property
    def cells_evaluated(self) -> int:
        """Cells this worker evaluated (registry-backed view)."""
        return int(self._counters["cells_evaluated"].value)

    @property
    def direct_fetches(self) -> int:
        """Artifacts fetched directly from the advertised store."""
        return int(self._counters["direct_fetches"].value)

    @property
    def relay_fetches(self) -> int:
        """Artifacts relayed through the coordinator socket."""
        return int(self._counters["relay_fetches"].value)

    @property
    def direct_fetch_errors(self) -> int:
        """Direct fetches that failed and degraded to relay."""
        return int(self._counters["direct_fetch_errors"].value)

    @property
    def blob_integrity_errors(self) -> int:
        """Relay blobs rejected for a digest mismatch."""
        return int(self._counters["blob_integrity_errors"].value)

    @property
    def reconnects(self) -> int:
        """Successful reconnect+handshake cycles."""
        return int(self._counters["reconnects"].value)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def run(self) -> int:
        """Serve the coordinator until Goodbye (0) or a failed start (1).

        A connection lost mid-service (coordinator restart, network blip,
        corrupted frame) is retried with a fresh connect + handshake up
        to ``reconnect_attempts`` times; the per-plan memo is preserved,
        so a reconnected worker resumes without re-fetching artifacts.
        When the coordinator stays gone the worker exits 0 — its leased
        cells are requeued on the coordinator's side if it lives.
        """
        attempts_left = self.reconnect_attempts
        connected_before = False
        while True:
            try:
                timeout = (self.reconnect_timeout if connected_before
                           else self.connect_timeout)
                sock = self._connect(timeout)
            except OSError as exc:
                if connected_before:
                    logger.info("worker %s: coordinator did not come back "
                                "within %.1fs: %s", self.worker_id,
                                self.reconnect_timeout, exc)
                    return 0
                print(f"fleet worker {self.worker_id}: cannot reach coordinator "
                      f"at {self.address[0]}:{self.address[1]}: {exc}",
                      file=sys.stderr)
                return 1
            stop_heartbeat = threading.Event()
            self._auth = (protocol.FrameAuth(self.auth_key, role="worker")
                          if self.auth_key is not None else None)
            try:
                self._handshake(sock)
                if connected_before:
                    self._counters["reconnects"].inc()
                    attempts_left = self.reconnect_attempts
                connected_before = True
                heartbeat = threading.Thread(
                    target=self._heartbeat_loop, args=(sock, stop_heartbeat),
                    name="fleet-heartbeat", daemon=True)
                heartbeat.start()
                while True:
                    reply = self._request(sock, GetPlan(self.worker_id))
                    if isinstance(reply, Goodbye):
                        return 0
                    if isinstance(reply, NoPlan):
                        time.sleep(reply.delay)
                        continue
                    if isinstance(reply, PlanAssignment):
                        try:
                            self._serve_plan(sock, reply)
                        except _StalePlan:
                            continue
            except HandshakeRejected as exc:
                print(f"fleet worker {self.worker_id}: rejected: {exc}",
                      file=sys.stderr)
                return 2
            except (ConnectionClosed, ConnectionError, OSError,
                    protocol.ProtocolError) as exc:
                if attempts_left <= 0:
                    return 0
                attempts_left -= 1
                logger.warning(
                    "worker %s: coordinator connection lost (%s: %s); "
                    "reconnecting (%d attempts left)", self.worker_id,
                    type(exc).__name__, exc, attempts_left)
            finally:
                stop_heartbeat.set()
                try:
                    sock.close()
                except OSError:
                    pass

    def _connect(self, timeout: float) -> socket.socket:
        # Effectively attempt-unbounded: the wall-clock budget governs.
        policy = RetryPolicy(max_attempts=100_000, base_delay=0.1,
                             multiplier=1.0, max_delay=0.1, jitter=0.0,
                             max_elapsed=timeout)
        return policy.call(
            lambda: socket.create_connection(self.address, timeout=None))

    def _handshake(self, sock: socket.socket) -> None:
        nonce = proof = ""
        if self.auth_key is not None:
            nonce = protocol.auth_nonce()
            proof = protocol.hello_proof(self.auth_key, nonce, self.worker_id)
        reply = self._request(sock, Hello(
            protocol_version=PROTOCOL_VERSION,
            store_format_version=_FORMAT_VERSION,
            worker_id=self.worker_id, pid=os.getpid(),
            simulator_versions=_simulator_versions(),
            auth_nonce=nonce, auth_proof=proof))
        if isinstance(reply, Reject):
            raise HandshakeRejected(reply.reason)
        if not isinstance(reply, protocol.Welcome):
            raise protocol.ProtocolError(
                f"expected Welcome or Reject, got {type(reply).__name__}")
        if self.auth_key is not None:
            # Verify the coordinator's proof over our challenge before
            # trusting anything it says: a keyless (or wrong-keyed)
            # coordinator cannot compute it.
            expected = protocol.welcome_proof(
                self.auth_key, nonce, reply.auth_nonce)
            if not reply.auth_proof or not hmac.compare_digest(
                    reply.auth_proof, expected):
                raise HandshakeRejected(
                    "coordinator did not prove knowledge of the shared "
                    "key (is it running with the same --auth-key-file?)")
            self._auth.activate_session(nonce, reply.auth_nonce)

    def _heartbeat_loop(self, sock: socket.socket, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                # Each beat carries a fresh counter snapshot (v4), so the
                # coordinator's fleet view stays live even while a long
                # batch computes.
                beat = Heartbeat(self.worker_id, metrics=self.metrics.snapshot())
                protocol.send_message(sock, beat, self._send_lock, self._auth)
            except OSError:
                return

    def _request(self, sock: socket.socket, message):
        """Send one request and read its single reply.

        The coordinator only ever writes replies (heartbeats go the other
        way and are reply-less), so request/reply pairing is positional.
        """
        protocol.send_message(sock, message, self._send_lock, self._auth)
        return protocol.recv_message(sock, self._auth)

    # ------------------------------------------------------------------ #
    # Plan serving
    # ------------------------------------------------------------------ #
    def _serve_plan(self, sock: socket.socket, assignment: PlanAssignment) -> None:
        dataset, factories = self._ensure_state(sock, assignment)
        plan_id = assignment.plan_id
        self._counters["plans_served"].inc()
        while True:
            reply = self._request(sock, GetBatch(plan_id, self.worker_id))
            if isinstance(reply, PlanDone):
                return
            if isinstance(reply, Idle):
                time.sleep(reply.delay)
                continue
            if not isinstance(reply, Batch):
                raise protocol.ProtocolError(
                    f"expected a batch, got {type(reply).__name__}")
            results, spans = self._evaluate_batch(reply, factories, dataset)
            self._counters["cells_evaluated"].inc(len(results))
            self._request(sock, Results(
                plan_id, self.worker_id, tuple(results), spans=tuple(spans),
                metrics=self.metrics.snapshot()))

    def _evaluate_batch(self, batch: Batch, factories, dataset):
        """One leased batch's results plus (when traced) its finished spans.

        With a ``trace`` context in the frame the worker builds a
        ``batch`` span parented to the coordinator side's plan span and
        one ``cell`` span per cell under it — the exact hierarchy the
        in-process executors produce — and ships them back inside the
        :class:`Results` frame.  Without one (tracing off), no span
        objects are created at all.
        """
        results = []
        if batch.trace is None:
            for cell in batch.cells:
                if self.cell_delay:
                    time.sleep(self.cell_delay)
                results.append(evaluate_cell(
                    cell, factories[cell.factory_key], dataset))
            return results, ()
        spans: list = []
        with span_into(spans, "batch", parent=batch.trace,
                       attrs={"executor": "remote", "worker": self.worker_id,
                              "cells": len(batch.cells)}) as batch_span:
            for cell in batch.cells:
                if self.cell_delay:
                    time.sleep(self.cell_delay)
                with span_into(spans, "cell", parent=batch_span,
                               attrs={"series": cell.series,
                                      "fraction": cell.fraction,
                                      "repeat": cell.repeat,
                                      "worker": self.worker_id}):
                    results.append(evaluate_cell(
                        cell, factories[cell.factory_key], dataset))
        return results, spans

    def _ensure_state(self, sock: socket.socket, assignment: PlanAssignment):
        """Dataset + series factories for the plan, memoized by fingerprint."""
        state = self._memo.get(assignment.plan_id)
        if state is not None:
            return state
        from repro.experiments.plan import build_analytical
        from repro.experiments.scheduler import _series_factories

        plan = assignment.plan
        spec = plan.dataset
        # store_ok is False when the coordinator runs an explicit dataset
        # override: its content has no registered fingerprint, so the
        # local store must be bypassed in both directions.
        store = self.store if assignment.store_ok else None
        if store is not None and store.has_dataset(spec):
            dataset = store.get(spec)
        else:
            data = self._artifact_bytes(
                sock, assignment, lambda shared: shared.dataset_bytes(spec),
                FetchDataset(assignment.plan_id), DatasetBlob)
            if store is not None:
                store.put_dataset_bytes(spec, data)
                dataset = store.get(spec)
            else:
                dataset = DatasetStore.decode_dataset_bytes(data)
        caches = {}
        for key in plan.cache_keys():
            model = build_analytical(key)
            if store is not None and store.has_cache(key, spec):
                caches[key] = store.load_analytical_cache(
                    key, spec, model, dataset.feature_names)
                continue
            data = self._artifact_bytes(
                sock, assignment,
                lambda shared, key=key: shared.cache_bytes(key, spec),
                FetchCache(assignment.plan_id, key), CacheBlob)
            if store is not None:
                store.put_cache_bytes(key, spec, data)
                caches[key] = store.load_analytical_cache(
                    key, spec, model, dataset.feature_names)
            else:
                caches[key] = AnalyticalPredictionCache.load(
                    io.BytesIO(data), model, dataset.feature_names)
        state = (dataset, _series_factories(plan, dataset, caches))
        self._memo[assignment.plan_id] = state
        return state

    def _advertised_store(self, assignment: PlanAssignment) -> DatasetStore | None:
        """The shared store the plan manifest advertises (memoized), or ``None``."""
        url = assignment.store_url
        if not url or not assignment.store_ok:
            return None
        if url not in self._advertised:
            try:
                self._advertised[url] = DatasetStore(
                    resolve_backend(url, retry=self.retry,
                                    auth=self.auth_key))
            except ValueError:
                # Unknown scheme / malformed locator (e.g. a newer
                # coordinator): the relay path still works.
                self._advertised[url] = None
        return self._advertised[url]

    def _artifact_bytes(self, sock: socket.socket, assignment: PlanAssignment,
                        direct_read, request, expected: type) -> bytes:
        """One artifact's bytes: advertised store first, coordinator relay fallback.

        *direct_read* takes the advertised :class:`DatasetStore` and
        returns the artifact bytes; any miss or failure (``KeyError`` for
        absent keys, ``OSError`` for an unreachable object store or
        filesystem, ``IntegrityError`` for a checksum-rejected blob)
        degrades to a ``FetchDataset``/``FetchCache`` round-trip on the
        coordinator socket, so a worker that cannot see the shared store
        still bootstraps — just without relieving the coordinator.  The
        degradation is logged with its cause and counted
        (``direct_fetch_errors``); relay blobs are verified against the
        digest in the frame and retried on mismatch.
        """
        shared = self._advertised_store(assignment)
        if shared is not None:
            try:
                data = direct_read(shared)
            except (KeyError, OSError, ValueError, IntegrityError) as exc:
                self._counters["direct_fetch_errors"].inc()
                logger.warning(
                    "worker %s: direct fetch of %s from %s failed "
                    "(%s: %s); degrading to coordinator relay",
                    self.worker_id, type(request).__name__,
                    assignment.store_url, type(exc).__name__, exc)
            else:
                self._counters["direct_fetches"].inc()
                return data
        self._counters["relay_fetches"].inc()

        def relay() -> bytes:
            reply = self._fetch(sock, request, expected)
            digest = getattr(reply, "sha256", "")
            if digest:
                actual = sha256_hex(reply.data)
                if actual != digest:
                    self._counters["blob_integrity_errors"].inc()
                    raise IntegrityError(type(reply).__name__, digest, actual)
            return reply.data

        def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            logger.warning(
                "worker %s: relay blob failed verification (attempt %d: %s); "
                "refetching in %.2fs", self.worker_id, attempt, exc, delay)

        # _StalePlan is not an IntegrityError, so it propagates on the
        # first occurrence — a vanished plan must never be retried.
        return self.retry.call(relay, retry_on=(IntegrityError,),
                               on_retry=on_retry)

    def _fetch(self, sock: socket.socket, request, expected: type):
        reply = self._request(sock, request)
        if isinstance(reply, PlanDone):
            raise _StalePlan(reply.plan_id)
        if not isinstance(reply, expected):
            raise protocol.ProtocolError(
                f"expected {expected.__name__}, got {type(reply).__name__}")
        return reply


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed.worker",
        description="Fleet worker: evaluate experiment cells for a coordinator",
        parents=[
            add_store_args(
                dir_help="persistent dataset/cache store directory; missing "
                         "artifacts are bootstrapped from the advertised "
                         "shared store or the coordinator, never re-simulated",
                url_help="store locator instead of a directory: file://DIR, "
                         "memory:// or http://HOST:PORT/ (an S3-style object "
                         "store, e.g. python -m repro.datasets.object_server)"),
            add_auth_args(), add_logging_parent(),
        ],
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    parser.add_argument("--worker-id", default=None,
                        help="stable identity (default: host-pid-random)")
    parser.add_argument("--connect-timeout", type=float, default=20.0, metavar="S",
                        help="seconds to retry the initial connection (default 20)")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0, metavar="S",
                        help="seconds between liveness heartbeats (default 1)")
    parser.add_argument("--cell-delay", type=float, default=None, metavar="S",
                        help="artificial per-cell sleep (fault-injection/testing; "
                             "default $REPRO_FLEET_CELL_DELAY or 0)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="retry attempts for fallible fetches: store transport "
                             "and relay-blob digest verification (default "
                             f"{WORKER_RETRY.max_attempts}; minimum 1)")
    parser.add_argument("--reconnect-attempts", type=int, default=3, metavar="N",
                        help="fresh connect+handshake attempts after the "
                             "coordinator connection drops (default 3; 0 = exit "
                             "on first drop)")
    args = parser.parse_args(argv)
    configure_logging(fmt=args.log_format, level=args.log_level)
    auth_key = load_auth_key(args.auth_key_file, parser=parser)
    if args.max_retries is not None and args.max_retries < 1:
        parser.error(f"--max-retries must be >= 1, got {args.max_retries}")
    if args.reconnect_attempts < 0:
        parser.error(
            f"--reconnect-attempts must be >= 0, got {args.reconnect_attempts}")
    retry = None
    if args.max_retries is not None:
        retry = RetryPolicy(max_attempts=args.max_retries,
                            base_delay=WORKER_RETRY.base_delay,
                            max_delay=WORKER_RETRY.max_delay)
    store = args.store_dir
    if args.store_url is not None:
        # Resolved through the scheme registry so a malformed URL is a
        # usage error, not a silently-created local directory.
        try:
            store = resolve_backend(args.store_url, retry=retry, auth=auth_key)
        except ValueError as exc:
            parser.error(str(exc))
    worker = FleetWorker(
        parse_address(args.connect), store=store,
        worker_id=args.worker_id, connect_timeout=args.connect_timeout,
        heartbeat_interval=args.heartbeat_interval, cell_delay=args.cell_delay,
        retry=retry, reconnect_attempts=args.reconnect_attempts,
        auth_key=auth_key)
    return worker.run()


if __name__ == "__main__":
    sys.exit(main())
