"""TCP coordinator: leases cell batches to a worker fleet, requeues on death.

:class:`Coordinator` owns one listening socket for the lifetime of a run
(one CLI invocation, one test); each :meth:`execute` call activates one
plan at a time, so a fleet of long-lived workers serves a whole sequence
of experiments over the same connections.  Per-connection reader threads
handle the request/reply protocol of :mod:`repro.distributed.protocol`;
:meth:`execute` blocks in a condition-variable loop until every cell of
the plan has a result (or a cell exhausts its retry budget).

Fault tolerance
---------------
Work is handed out in small *leased* batches.  A lease is released when
the worker returns its results; if the worker's connection drops (EOF,
reset — a ``SIGKILL``'d process closes its sockets immediately) or its
heartbeat goes silent for longer than ``heartbeat_timeout``, every
unfinished cell of the lease is requeued at the front of the queue.  Each
cell tolerates ``max_retries`` requeues; one cell exceeding the budget
fails the whole plan with a hard error (a cell is deterministic, so
repeated failure means the fleet — not the data — is broken).  A worker
wrongly presumed dead may still return results later; completed-cell
bookkeeping dedupes them, and because cells are pure either copy of a
result is bit-identical.

Straggler speculation rides on the same dedupe: once the queue drains,
a lease held far longer than the fleet's typical lease duration (past
``speculation_factor`` × the ``speculation_percentile`` of completed
lease times) is *speculatively re-leased* — its unfinished cells are
duplicated to the queue for a healthy worker to race, without charging
the cell's retry budget.  Whichever copy lands first wins; the loser is
counted as a duplicate and discarded.  This bounds plan latency by the
healthy fleet, not by one degraded host.

Elasticity hooks: :meth:`load` exposes queue depth for an autoscaler
(:mod:`repro.distributed.autoscale`), :meth:`request_retire` marks
workers for a polite Goodbye at their next between-plans poll, and
setting :attr:`elastic` suppresses the all-local-workers-exited fail-fast
(under an autoscaler an empty fleet is a transient, not a wreck).

Store bootstrap
---------------
When the parent store is shareable (``file://`` locator on a shared
filesystem, ``http://`` object store), its locator is advertised in the
:class:`PlanAssignment` manifest and cold workers read the dataset and
warmed caches **directly from shared storage** — fleet cold-start no
longer serializes every blob through this one socket.  The coordinator
still snapshots the resolved dataset and every warmed analytical cache
as raw ``.npz`` blobs (read from the parent store when present, encoded
in memory otherwise) and serves them as the relay fallback to workers
that have no advertised store or cannot reach it.
"""

from __future__ import annotations

import hashlib
import hmac
import io
import os
import socket
import subprocess
import sys
import threading
import time
import uuid
from collections import deque
from pathlib import Path

from repro.core.evaluation import CellResult
from repro.datasets.backends import IntegrityError
from repro.datasets.store import _FORMAT_VERSION, DatasetStore, _simulator_versions
from repro.distributed import protocol
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    Ack,
    Batch,
    CacheBlob,
    ConnectionClosed,
    DatasetBlob,
    FetchCache,
    FetchDataset,
    GetBatch,
    GetPlan,
    Goodbye,
    Heartbeat,
    Hello,
    Idle,
    NoPlan,
    PlanAssignment,
    PlanDone,
    Reject,
    Results,
    Welcome,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, MetricsSnapshot
from repro.obs.tracing import TRACER

__all__ = ["Coordinator"]

#: ``batch_size="auto"``: a lease targets the predicted cost of this many
#: *average* cells of the plan, so cheap cells fuse into big leases and a
#: cell costlier than the whole budget is leased alone.
_AUTO_LEASE_TARGET_CELLS = 4
#: Hard cap on cells per ``"auto"`` lease, bounding both the requeue cost
#: of a dead worker and the damage of a bad cost estimate.
_AUTO_LEASE_MAX_CELLS = 16


class _WorkerInfo:
    """Coordinator-side record of one connected worker."""

    def __init__(self, conn, addr, worker_id: str, pid: int, now: float) -> None:
        self.conn = conn
        self.addr = addr
        self.worker_id = worker_id
        self.pid = pid
        self.last_seen = now
        self.lease: list = []
        self.lease_plan_id: str | None = None
        self.lease_since = 0.0
        self.speculated = False  # this lease was already re-leased once


class _Job:
    """One plan's in-flight state: queue, completed results, retry counts."""

    def __init__(self, plan, plan_id: str, cells: list,
                 dataset_blob: bytes, cache_blobs: dict[str, bytes],
                 store_ok: bool, store_url: str | None = None,
                 auto_leases: bool = False) -> None:
        self.plan = plan
        self.plan_id = plan_id
        self.store_ok = store_ok
        self.store_url = store_url
        self.cells = cells
        self.lease_budget: float | None = None
        if auto_leases:
            # Cost-aware leasing: dispatch expensive cells first (LPT-style
            # makespan) against a budget of N average cells per lease.
            # Any lease shape is safe — requeue and dedupe key on the
            # cell, and results merge in plan order regardless.
            hints = [max(cell.cost_hint, 0.0) for cell in cells]
            mean = sum(hints) / len(hints) if hints else 0.0
            self.lease_budget = _AUTO_LEASE_TARGET_CELLS * mean
            order = sorted(range(len(cells)), key=lambda i: (-hints[i], i))
            self.queue = deque(cells[i] for i in order)
        else:
            self.queue = deque(cells)
        self.completed: dict[tuple, CellResult] = {}
        self.retries: dict[tuple, int] = {}
        self.dataset_blob = dataset_blob
        self.cache_blobs = cache_blobs
        # Relay-blob content digests: workers verify what arrives over the
        # socket against these before deserializing.
        self.dataset_sha256 = hashlib.sha256(dataset_blob).hexdigest()
        self.cache_sha256s = {key: hashlib.sha256(blob).hexdigest()
                              for key, blob in cache_blobs.items()}
        self.lease_durations: list[float] = []  # completed leases, seconds
        self.failure: str | None = None
        #: Plan span context shipped in every Batch (None = tracing off).
        self.trace = None

    @property
    def finished(self) -> bool:
        return len(self.completed) == len(self.cells)


class Coordinator:
    """Serve :class:`ExperimentPlan` cells to a TCP worker fleet.

    Parameters
    ----------
    bind:
        ``(host, port)`` listen address; the default binds an ephemeral
        loopback port (see :attr:`address`).  Bind a routable interface to
        accept workers from other hosts — pass *auth_key* too, so the
        fleet is HMAC-authenticated instead of open to anyone who can
        reach the port (the ``--bind`` CLI refuses a non-loopback bind
        without ``--auth-key-file`` unless ``--insecure``).
    heartbeat_timeout:
        Seconds of silence after which a worker is presumed dead and its
        leased cells are requeued.  Workers heartbeat every
        ``heartbeat_interval`` (default 1s) even while computing, so the
        timeout trades failover latency against false positives only.
    batch_size:
        Cells per lease.  Small batches bound both the requeue cost of a
        dead worker and fleet idle time at the tail of a plan.
        ``"auto"`` makes leases cost-aware instead of fixed-size: cells
        are dispatched expensive-first and packed against a budget of
        :data:`_AUTO_LEASE_TARGET_CELLS` average cells (per the
        cells' :attr:`~repro.core.evaluation.EvalCell.cost_hint`), so
        many cheap cells fuse into one lease while a cell costlier than
        the whole budget is leased alone — stragglers shrink without
        giving up round-trip amortization.
    max_retries:
        Requeue budget per cell; exceeding it fails the plan.
    speculation:
        Enable straggler re-lease.  Once the queue is empty, a lease
        outstanding longer than ``max(speculation_min_delay,
        speculation_factor × P[speculation_percentile] of completed lease
        durations)`` is duplicated to the queue (once per lease) so a
        healthy worker races the straggler; dedupe-by-key keeps the
        duplicate harmless and the cell's retry budget is not charged.
    auth_key:
        The fleet's shared secret (bytes) or ``None`` for an open fleet.
        With a key, a HELLO must carry a valid challenge proof (wrong or
        missing keys are :class:`~repro.distributed.protocol.Reject`\\ ed
        and counted in ``repro_auth_failures_total``), the WELCOME
        proves the coordinator's key back to the worker, and every
        post-handshake frame is HMAC-signed with a per-connection
        session key and sequence number (tamper + replay protection).
    """

    def __init__(self, bind: tuple[str, int] = ("127.0.0.1", 0), *,
                 heartbeat_timeout: float = 15.0, batch_size: int | str = 4,
                 max_retries: int = 3, speculation: bool = True,
                 speculation_factor: float = 3.0,
                 speculation_percentile: float = 0.75,
                 speculation_min_delay: float = 2.0,
                 auth_key: bytes | None = None) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}")
        if batch_size != "auto" and (
                not isinstance(batch_size, int) or isinstance(batch_size, bool)
                or batch_size < 1):
            raise ValueError(
                f"batch_size must be 'auto' or an integer >= 1, got {batch_size!r}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if speculation_factor < 1.0:
            raise ValueError(
                f"speculation_factor must be >= 1, got {speculation_factor}")
        if not 0.0 <= speculation_percentile <= 1.0:
            raise ValueError("speculation_percentile must be in [0, 1], "
                             f"got {speculation_percentile}")
        self.heartbeat_timeout = heartbeat_timeout
        self.batch_size = batch_size
        self.max_retries = max_retries
        self.speculation = speculation
        self.speculation_factor = speculation_factor
        self.speculation_percentile = speculation_percentile
        self.speculation_min_delay = speculation_min_delay
        #: The fleet's shared secret: with a key, HELLO handshakes must
        #: carry a valid challenge proof and every post-handshake frame
        #: is HMAC-signed under a per-connection session key.
        self.auth_key = auth_key
        #: An autoscaler may still spawn workers: suppress the
        #: all-local-workers-exited fail-fast while True.
        self.elastic = False
        self.coordinator_id = uuid.uuid4().hex[:12]
        # Registry-backed counters (the old ``stats`` dict is now a
        # property view): results_received doubles as the fleet-facing
        # ``repro_cells_completed_total`` — the metric the status port's
        # /metrics endpoint is judged on.
        self.metrics = MetricsRegistry(attach_to=REGISTRY)
        _counter_specs = {
            "results_received": (
                "repro_cells_completed_total",
                "Distinct cell results recorded (duplicates excluded)"),
            "duplicate_results": (
                "repro_fleet_duplicate_results_total",
                "Results discarded as duplicates (speculation losers)"),
            "requeued_cells": (
                "repro_fleet_requeued_cells_total",
                "Cells requeued after a worker death"),
            "workers_failed": (
                "repro_fleet_workers_failed_total",
                "Workers presumed dead (connection loss or silent heartbeat)"),
            "rejected_handshakes": (
                "repro_fleet_rejected_handshakes_total",
                "HELLO handshakes refused for a version or auth mismatch"),
            "datasets_served": (
                "repro_fleet_datasets_served_total",
                "Dataset blobs relayed over the coordinator socket"),
            "caches_served": (
                "repro_fleet_caches_served_total",
                "Cache blobs relayed over the coordinator socket"),
            "speculative_releases": (
                "repro_fleet_speculative_releases_total",
                "Straggler leases speculatively duplicated"),
            "workers_retired": (
                "repro_fleet_workers_retired_total",
                "Workers politely retired between plans"),
        }
        self._counters = {key: self.metrics.counter(name, help)
                          for key, (name, help) in _counter_specs.items()}
        # The cross-server auth-failure convention: one labeled counter
        # name everywhere, so one alert rule covers the whole stack.
        self._auth_failures = self.metrics.counter(
            "repro_auth_failures_total",
            "Requests rejected for a missing or invalid credential",
            labelnames=("server",)).labels(server="coordinator")
        self._workers_gauge = self.metrics.gauge(
            "repro_fleet_workers", "Live worker connections")
        #: Latest per-worker counter snapshot, from Heartbeat/Results
        #: frames (v4); survives the worker so completed work stays
        #: visible in the fleet aggregate.
        self._worker_metrics: dict[str, MetricsSnapshot] = {}
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._workers: dict[str, _WorkerInfo] = {}
        self._job: _Job | None = None
        self._retire_pending = 0
        self._closing = False
        self._procs: list[subprocess.Popen] = []
        self._threads: list[threading.Thread] = []

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(bind)
        self._listener.listen(64)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` the coordinator is listening on."""
        return self._listener.getsockname()[:2]

    @property
    def stats(self) -> dict[str, int]:
        """Compatibility view of the registry counters (atomic snapshot)."""
        return {key: int(counter.value)
                for key, counter in self._counters.items()}

    @property
    def auth_failures(self) -> int:
        """Frames/handshakes rejected for a missing or invalid credential."""
        return int(self._auth_failures.value)

    def fleet_snapshot(self) -> MetricsSnapshot:
        """The fleet-wide metrics view the status port's ``/metrics`` serves.

        The coordinator's own registry, plus every worker's last shipped
        snapshot twice: once labeled ``worker="<id>"`` (per-worker
        series) and once summed into ``worker="fleet"`` (the aggregate).
        Worker snapshots outlive their connections, so completed work
        never vanishes from the aggregate when a worker retires.
        """
        with self._lock:
            worker_snaps = dict(self._worker_metrics)
            self._workers_gauge.set(len(self._workers))
        snap = self.metrics.snapshot()
        aggregate: MetricsSnapshot | None = None
        for worker_id in sorted(worker_snaps):
            worker_snap = worker_snaps[worker_id]
            snap = snap.merge(worker_snap.with_labels(worker=worker_id))
            aggregate = (worker_snap if aggregate is None
                         else aggregate.merge(worker_snap))
        if aggregate is not None:
            snap = snap.merge(aggregate.with_labels(worker="fleet"))
        return snap

    def health(self) -> dict:
        """The ``/healthz`` JSON document: liveness plus a load snapshot."""
        with self._lock:
            closing = self._closing
        return {"status": "closing" if closing else "ok",
                "coordinator_id": self.coordinator_id,
                "protocol_version": PROTOCOL_VERSION,
                **self.load()}

    def serve_status(self, address: tuple[str, int] = ("127.0.0.1", 0), *,
                     auth: bytes | None = None):
        """Start the read-only ``/metrics`` + ``/healthz`` status sidecar.

        Returns the started :class:`~repro.obs.http.StatusServer` (the
        caller owns its lifetime); the CLI mounts it via
        ``--status-port``.  With *auth* key bytes, scrapes must sign
        requests (``/healthz`` stays open).
        """
        from repro.obs.http import StatusServer

        return StatusServer(metrics=self.fleet_snapshot, health=self.health,
                            address=address, auth=auth).start()

    def __enter__(self) -> Coordinator:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def spawn_local_workers(self, n: int, *, store_dir=None, store_url=None,
                            cell_delay: float | None = None,
                            auth_key_file=None) -> list[subprocess.Popen]:
        """Spawn *n* localhost worker processes connected to this coordinator.

        The single-command convenience mode: ``--executor remote --jobs N``
        without an external fleet.  The workers inherit the environment
        plus a ``PYTHONPATH`` entry for this package, so they import the
        same code whether it is installed or run from a source tree.
        *store_dir* (a directory) or *store_url* (a ``file://`` /
        ``http://`` store locator) configures their persistent store;
        *auth_key_file* hands them the fleet's shared secret (required
        to handshake with a keyed coordinator — the key itself never
        appears on a command line, only its path).
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if store_dir is not None and store_url is not None:
            raise ValueError("pass store_dir or store_url, not both")
        host, port = self.address
        env = os.environ.copy()
        src_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
        cmd = [sys.executable, "-m", "repro.distributed.worker",
               "--connect", f"{host}:{port}"]
        if store_dir is not None:
            cmd += ["--store-dir", str(store_dir)]
        if store_url is not None:
            cmd += ["--store-url", str(store_url)]
        if cell_delay is not None:
            cmd += ["--cell-delay", str(cell_delay)]
        if auth_key_file is not None:
            cmd += ["--auth-key-file", str(auth_key_file)]
        procs = [subprocess.Popen(cmd, env=env) for _ in range(n)]
        with self._lock:
            self._procs.extend(procs)
        return procs

    def worker_snapshot(self) -> list[dict]:
        """Connected workers and their current lease sizes (monitoring/tests)."""
        with self._lock:
            return [
                {"worker_id": info.worker_id, "pid": info.pid,
                 "addr": info.addr, "lease": len(info.lease)}
                for info in self._workers.values()
            ]

    def load(self) -> dict:
        """A point-in-time load snapshot: the autoscaler's decision input.

        ``queue_depth`` is cells waiting for a lease, ``leased`` cells out
        with workers, ``outstanding`` their sum (work not yet completed),
        ``workers`` live connections.  All zeros between plans.
        """
        with self._lock:
            job = self._job
            queue_depth = leased = 0
            if job is not None and job.failure is None:
                queue_depth = sum(1 for cell in job.queue
                                  if cell.key not in job.completed)
                leased = sum(
                    len(info.lease) for info in self._workers.values()
                    if info.lease_plan_id == job.plan_id)
            return {
                "queue_depth": queue_depth,
                "leased": leased,
                "outstanding": queue_depth + leased,
                "workers": len(self._workers),
                "retire_pending": self._retire_pending,
            }

    def request_retire(self, n: int = 1) -> None:
        """Mark *n* workers for a polite Goodbye at their next idle poll.

        Retirement only happens between plans (on a :class:`GetPlan` with
        no active work for the worker), so no lease is abandoned.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        with self._lock:
            self._retire_pending += n

    def execute(self, plan, cells: list, dataset, caches: dict, *,
                store: DatasetStore | None = None,
                dataset_override: bool = False) -> list[CellResult]:
        """Run every cell of *plan* on the fleet; results in plan order.

        *dataset* and *caches* are the parent-resolved plan state (the
        same objects the other executors use); *store*, when given, is the
        parent's persistent store whose on-disk artifacts back the
        bootstrap blobs (otherwise the blobs are encoded in memory).

        *dataset_override* marks *dataset* as an explicit content
        override (the test/notebook path): its bytes have no registered
        fingerprint, so the plan id is extended with a content digest
        (distinct worker memo entry) and workers are told to bypass their
        persistent stores and always fetch the coordinator's blobs.

        When *store* has a shareable locator (``file://`` on a shared
        filesystem, ``http://`` object store) the locator is advertised
        in the plan manifest and workers bootstrap missing artifacts
        directly from it; the coordinator-relay blobs below stay as the
        fallback for workers that cannot reach the advertised store.
        """
        plan_id = plan.fingerprint
        if dataset_override:
            digest = hashlib.sha256(
                dataset.X.tobytes() + dataset.y.tobytes()).hexdigest()[:16]
            plan_id = f"{plan_id}-override-{digest}"
            store = None
        job = _Job(plan, plan_id, cells,
                   self._dataset_blob(plan, dataset, store),
                   self._cache_blobs(plan, caches, store),
                   store_ok=not dataset_override,
                   store_url=None if store is None else store.locator,
                   auto_leases=self.batch_size == "auto")
        # Under an active trace collection the caller's current span (the
        # scheduler's plan span) becomes the parent of every worker-side
        # batch/cell span; None keeps the fleet span-free.
        if TRACER.enabled:
            job.trace = TRACER.current_context()
        with self._cond:
            if self._closing:
                raise RuntimeError("coordinator is closed")
            if self._job is not None:
                raise RuntimeError("coordinator is already executing a plan")
            self._job = job
            self._cond.notify_all()
        try:
            with self._cond:
                while job.failure is None and not job.finished:
                    self._expire_silent_workers()
                    self._release_stragglers(job)
                    self._check_fleet_alive(job)
                    self._cond.wait(timeout=0.1)
        finally:
            with self._cond:
                self._job = None
                self._cond.notify_all()
        if job.failure is not None:
            raise RuntimeError(f"plan {plan.name!r} failed on the fleet: {job.failure}")
        return [job.completed[cell.key] for cell in cells]

    def close(self, *, timeout: float = 10.0) -> None:
        """Shut the fleet down: Goodbye to polling workers, reap local ones."""
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._cond.notify_all()
            procs = list(self._procs)
        deadline = time.monotonic() + timeout
        # Local workers poll GetPlan between plans and receive Goodbye on
        # the next poll; give them the grace window, then escalate.
        for proc in procs:
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            workers = list(self._workers.values())
        for info in workers:
            self._sever(info)
        self._accept_thread.join(timeout=2.0)
        for thread in list(self._threads):
            thread.join(timeout=2.0)

    # ------------------------------------------------------------------ #
    # Blob snapshots
    # ------------------------------------------------------------------ #
    @staticmethod
    def _dataset_blob(plan, dataset, store: DatasetStore | None) -> bytes:
        if store is not None and store.has_dataset(plan.dataset):
            try:
                return store.dataset_bytes(plan.dataset)
            except IntegrityError:
                # The stored blob is corrupt; the in-memory dataset is the
                # source of truth, so re-encode instead of relaying garbage.
                pass
        return DatasetStore.encode_dataset(dataset)

    @staticmethod
    def _cache_blobs(plan, caches: dict, store: DatasetStore | None) -> dict[str, bytes]:
        blobs: dict[str, bytes] = {}
        for key, cache in caches.items():
            if store is not None and store.has_cache(key, plan.dataset):
                try:
                    blobs[key] = store.cache_bytes(key, plan.dataset)
                    continue
                except IntegrityError:
                    pass  # fall through: encode from the in-memory cache
            buf = io.BytesIO()
            cache.save(buf)
            blobs[key] = buf.getvalue()
        return blobs

    # ------------------------------------------------------------------ #
    # Fleet liveness
    # ------------------------------------------------------------------ #
    def _expire_silent_workers(self) -> None:
        """Requeue and sever workers whose heartbeat went silent (lock held)."""
        now = time.monotonic()
        for info in list(self._workers.values()):
            if now - info.last_seen > self.heartbeat_timeout:
                self._workers.pop(info.worker_id, None)
                self._requeue_lease(info, reason="heartbeat timeout")
                self._sever(info)

    def _check_fleet_alive(self, job: _Job) -> None:
        """Fail fast when a purely-local fleet has no survivors (lock held).

        An external fleet (workers we did not spawn) may legitimately have
        nobody connected yet, so the check only fires when every spawned
        local worker has exited and no connection remains.  Under an
        autoscaler (:attr:`elastic`) an empty fleet is a transient — the
        next scaling tick will spawn replacements — so the check is off.
        """
        if self.elastic or self._workers or not self._procs:
            return
        if all(proc.poll() is not None for proc in self._procs):
            job.failure = ("all local fleet workers exited "
                           f"({len(self._procs)} spawned, none connected)")
            self._cond.notify_all()

    def _release_stragglers(self, job: _Job) -> None:
        """Speculatively duplicate overdue leases to the queue (lock held).

        Only fires when the queue has drained (otherwise idle workers have
        plenty to race already) and at least one lease has completed (the
        percentile needs a sample).  Each lease is speculated at most
        once, and the duplicated cells do not charge the retry budget —
        the straggler is presumed slow, not broken.
        """
        if not self.speculation or job.queue or not job.lease_durations:
            return
        durations = sorted(job.lease_durations)
        index = int(self.speculation_percentile * (len(durations) - 1))
        deadline = max(self.speculation_min_delay,
                       self.speculation_factor * durations[index])
        now = time.monotonic()
        for info in self._workers.values():
            if (not info.lease or info.lease_plan_id != job.plan_id
                    or info.speculated or now - info.lease_since <= deadline):
                continue
            info.speculated = True
            pending = [cell for cell in info.lease
                       if cell.key not in job.completed]
            for cell in reversed(pending):
                job.queue.appendleft(cell)
            if pending:
                self._counters["speculative_releases"].inc()
                self._cond.notify_all()

    @staticmethod
    def _sever(info: _WorkerInfo) -> None:
        try:
            info.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            info.conn.close()
        except OSError:
            pass

    def _requeue_lease(self, info: _WorkerInfo, *, reason: str) -> None:
        """Return a dead worker's unfinished leased cells to the queue (lock held)."""
        job = self._job
        lease, info.lease = info.lease, []
        if job is None or not lease or info.lease_plan_id != job.plan_id:
            return
        self._counters["workers_failed"].inc()
        for cell in reversed(lease):
            if cell.key in job.completed:
                continue
            attempts = job.retries.get(cell.key, 0) + 1
            job.retries[cell.key] = attempts
            if attempts > self.max_retries:
                job.failure = (
                    f"cell {cell.key} requeued {attempts} times "
                    f"(> max_retries={self.max_retries}); last worker "
                    f"{info.worker_id} at {info.addr} died: {reason}")
            else:
                job.queue.appendleft(cell)
                self._counters["requeued_cells"].inc()
        self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, addr),
                name=f"fleet-conn-{addr[0]}:{addr[1]}", daemon=True)
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn, addr) -> None:
        info: _WorkerInfo | None = None
        auth = (protocol.FrameAuth(self.auth_key, role="coordinator")
                if self.auth_key is not None else None)
        try:
            while True:
                message = protocol.recv_message(conn, auth)
                now = time.monotonic()
                if isinstance(message, Hello):
                    info = self._handshake(conn, addr, message, now, auth)
                    if info is None:
                        return
                    continue
                if info is None:
                    protocol.send_message(
                        conn, Reject("handshake required before any other message"))
                    return
                with self._lock:
                    info.last_seen = now
                if isinstance(message, Heartbeat):
                    if message.metrics is not None:
                        with self._lock:
                            self._worker_metrics[info.worker_id] = message.metrics
                    continue
                protocol.send_message(conn, self._reply(info, message),
                                      None, auth)
        except protocol.AuthError:
            # A frame that failed tag verification: tampered, replayed,
            # or signed under a different key.  Count it — silent auth
            # rejections cost operators hours — and sever; nothing after
            # an unauthentic frame can be trusted.
            self._auth_failures.inc()
        except (ConnectionClosed, ConnectionError, OSError, protocol.ProtocolError):
            # A corrupted frame (CRC mismatch) severs the connection; the
            # worker's reconnect loop re-handshakes on a clean stream.
            pass
        finally:
            with self._cond:
                if info is not None:
                    # Pop only if the registry still maps the id to *this*
                    # connection — a reconnect may have replaced it.
                    if self._workers.get(info.worker_id) is info:
                        self._workers.pop(info.worker_id)
                    self._requeue_lease(info, reason="connection lost")
                    self._cond.notify_all()
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._threads = [t for t in self._threads
                                 if t is not threading.current_thread()]

    def _handshake(self, conn, addr, hello: Hello, now: float,
                   auth=None) -> _WorkerInfo | None:
        reason = None
        auth_failed = False
        if hello.protocol_version != PROTOCOL_VERSION:
            reason = (f"protocol version mismatch: worker speaks "
                      f"{hello.protocol_version}, coordinator {PROTOCOL_VERSION}")
        elif hello.store_format_version != _FORMAT_VERSION:
            reason = (f"store fingerprint format mismatch: worker uses "
                      f"version {hello.store_format_version}, coordinator "
                      f"{_FORMAT_VERSION} — artifacts would not be shareable")
        elif hello.simulator_versions != _simulator_versions():
            # Fingerprints fold in the simulator versions: a skewed worker
            # would store the coordinator's blobs under keys its own local
            # runs compute differently, silently serving stale data later.
            reason = (f"simulator version mismatch: worker has "
                      f"{hello.simulator_versions!r}, coordinator "
                      f"{_simulator_versions()!r} — fingerprints would not agree")
        elif self.auth_key is not None:
            # Keyed coordinator: the HELLO must prove knowledge of the
            # shared key over the worker's own challenge nonce.  The
            # Reject travels unsigned (no session exists yet), which is
            # safe: it grants nothing, and the worker needs the reason.
            if not hello.auth_proof:
                auth_failed = True
                reason = ("authentication required: this coordinator is "
                          "keyed; start the worker with the same "
                          "--auth-key-file")
            elif not hmac.compare_digest(hello.auth_proof, protocol.hello_proof(
                    self.auth_key, hello.auth_nonce, hello.worker_id)):
                auth_failed = True
                reason = ("authentication failed: worker credential does "
                          "not match this coordinator's key")
        elif hello.auth_proof:
            # The worker expects an authenticated fleet; handing it an
            # unauthenticated session would silently downgrade it.
            reason = ("worker presented credentials but this coordinator "
                      "is unauthenticated; start it with --auth-key-file")
        if reason is not None:
            self._counters["rejected_handshakes"].inc()
            if auth_failed:
                self._auth_failures.inc()
            protocol.send_message(conn, Reject(reason))
            return None
        info = _WorkerInfo(conn, addr, hello.worker_id, hello.pid, now)
        with self._cond:
            # A worker restarted with a stable --worker-id may reconnect
            # while its old connection lingers: requeue the old lease and
            # sever it, so the id maps to exactly one live connection.
            old = self._workers.get(hello.worker_id)
            if old is not None:
                self._requeue_lease(old, reason="worker id reconnected")
                self._sever(old)
            self._workers[hello.worker_id] = info
            self._cond.notify_all()
        if self.auth_key is not None:
            # Answer the worker's challenge and issue our own; both
            # nonces then derive the per-connection session key.  The
            # Welcome itself is the last unsigned frame either side sends.
            coordinator_nonce = protocol.auth_nonce()
            protocol.send_message(conn, Welcome(
                self.coordinator_id, auth_nonce=coordinator_nonce,
                auth_proof=protocol.welcome_proof(
                    self.auth_key, hello.auth_nonce, coordinator_nonce)))
            auth.activate_session(hello.auth_nonce, coordinator_nonce)
        else:
            protocol.send_message(conn, Welcome(self.coordinator_id))
        return info

    def _reply(self, info: _WorkerInfo, message):
        """Compute the reply to one worker request (takes the lock itself)."""
        with self._cond:
            job = self._job
            if isinstance(message, GetPlan):
                if self._closing:
                    return Goodbye()
                if job is not None and job.failure is None and not job.finished:
                    return PlanAssignment(job.plan_id, job.plan, job.store_ok,
                                          job.store_url)
                if self._retire_pending > 0:
                    # Between plans is the safe retirement point: the
                    # worker holds no lease and abandons nothing.
                    self._retire_pending -= 1
                    self._counters["workers_retired"].inc()
                    return Goodbye("retired by autoscaler")
                return NoPlan()
            if isinstance(message, FetchDataset):
                if job is None or job.plan_id != message.plan_id:
                    return PlanDone(message.plan_id)
                self._counters["datasets_served"].inc()
                return DatasetBlob(job.plan_id, job.dataset_blob,
                                   job.dataset_sha256)
            if isinstance(message, FetchCache):
                if job is None or job.plan_id != message.plan_id:
                    return PlanDone(message.plan_id)
                self._counters["caches_served"].inc()
                return CacheBlob(job.plan_id, message.model_key,
                                 job.cache_blobs[message.model_key],
                                 job.cache_sha256s[message.model_key])
            if isinstance(message, GetBatch):
                return self._lease_batch(info, job, message)
            if isinstance(message, Results):
                self._record_results(info, job, message)
                return Ack()
        raise protocol.ProtocolError(
            f"unexpected message {type(message).__name__} from {info.worker_id}")

    def _lease_batch(self, info: _WorkerInfo, job: _Job | None, message: GetBatch):
        if job is None or job.plan_id != message.plan_id or job.failure is not None:
            return PlanDone(message.plan_id)
        lease: list = []
        if self.batch_size == "auto":
            lease_cost = 0.0
            while job.queue and len(lease) < _AUTO_LEASE_MAX_CELLS:
                cell = job.queue[0]
                if cell.key in job.completed:
                    job.queue.popleft()  # stale requeued copy
                    continue
                cost = max(cell.cost_hint, 0.0)
                # The first cell is always taken (so a cell costlier than
                # the whole budget goes out as a singleton lease); after
                # that, stop before the budget overflows.
                if lease and lease_cost + cost > job.lease_budget:
                    break
                job.queue.popleft()
                lease.append(cell)
                lease_cost += cost
        else:
            while job.queue and len(lease) < self.batch_size:
                cell = job.queue.popleft()
                # A requeued cell may have been completed after all by a
                # worker that was wrongly presumed dead; skip stale copies.
                if cell.key in job.completed:
                    continue
                lease.append(cell)
        if lease:
            info.lease = lease
            info.lease_plan_id = job.plan_id
            info.lease_since = time.monotonic()
            info.speculated = False
            return Batch(job.plan_id, tuple(lease), trace=job.trace)
        if job.finished:
            return PlanDone(job.plan_id)
        return Idle()

    def _record_results(self, info: _WorkerInfo, job: _Job | None,
                        message: Results) -> None:
        if message.metrics is not None:
            self._worker_metrics[info.worker_id] = message.metrics
        if job is None or job.plan_id != message.plan_id:
            return  # stale results from a previous plan: ack and discard
        if message.spans:
            TRACER.record(message.spans)
        for result in message.results:
            if result.key in job.completed:
                self._counters["duplicate_results"].inc()
            else:
                job.completed[result.key] = result
                self._counters["results_received"].inc()
        if info.lease_plan_id == message.plan_id and info.lease:
            info.lease = []
            job.lease_durations.append(time.monotonic() - info.lease_since)
        self._cond.notify_all()
