"""Local autoscaler: size the worker fleet to the coordinator's queue depth.

The elastic half of the fault-tolerance story: :func:`desired_workers` is
the pure sizing rule (trivially unit-testable — load snapshot in, worker
count out) and :class:`LocalAutoscaler` is the thread that applies it,
spawning localhost worker processes through
:meth:`Coordinator.spawn_local_workers` when work queues up and retiring
them through :meth:`Coordinator.request_retire` when it drains.
Retirement is always polite — the coordinator says Goodbye at a worker's
next between-plans poll, so no lease is ever abandoned — and the
coordinator's :attr:`~Coordinator.elastic` flag is set so an empty fleet
is treated as a transient, not a wreck.

Scaling is deliberately asymmetric: scale-up is immediate (queued cells
are latency), scale-down waits for ``idle_ticks`` consecutive
under-target observations (spawning a Python worker costs an interpreter
start — don't thrash on the gap between two plans).

Usage::

    with Coordinator() as coordinator, LocalAutoscaler(
            coordinator, min_workers=0, max_workers=4,
            store_url=server.url) as scaler:
        rows = coordinator.execute(plan, cells, dataset, caches)
"""

from __future__ import annotations

import logging
import threading

from repro.distributed.coordinator import Coordinator
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["desired_workers", "LocalAutoscaler"]

logger = logging.getLogger(__name__)


def desired_workers(load: dict, *, min_workers: int, max_workers: int,
                    cells_per_worker: int = 4) -> int:
    """The worker count a load snapshot calls for.

    One worker per ``cells_per_worker`` outstanding cells (queued +
    leased; the natural unit is the lease ``batch_size``), clamped to
    ``[min_workers, max_workers]``.  Pure function of the snapshot
    returned by :meth:`Coordinator.load`.
    """
    if not 0 <= min_workers <= max_workers:
        raise ValueError(f"need 0 <= min_workers <= max_workers, "
                         f"got {min_workers}..{max_workers}")
    if cells_per_worker < 1:
        raise ValueError(f"cells_per_worker must be >= 1, got {cells_per_worker}")
    outstanding = load["outstanding"]
    want = -(-outstanding // cells_per_worker)  # ceil division
    return max(min_workers, min(max_workers, want))


class LocalAutoscaler:
    """Spawn/retire localhost workers from the coordinator's queue depth.

    Parameters
    ----------
    coordinator:
        The :class:`Coordinator` to scale (marked :attr:`~Coordinator.elastic`).
    min_workers / max_workers:
        Fleet size bounds; ``min_workers=0`` lets an idle fleet drain to
        nothing between experiment batches.
    cells_per_worker:
        Target outstanding cells per worker (see :func:`desired_workers`).
    interval:
        Seconds between scaling decisions.
    idle_ticks:
        Consecutive under-target observations before retiring anyone.
    store_dir / store_url / cell_delay / auth_key_file:
        Forwarded to :meth:`Coordinator.spawn_local_workers` —
        *auth_key_file* is how elastically-spawned workers inherit a
        keyed fleet's shared secret.
    """

    def __init__(self, coordinator: Coordinator, *, min_workers: int = 0,
                 max_workers: int = 4, cells_per_worker: int = 4,
                 interval: float = 0.5, idle_ticks: int = 4,
                 store_dir=None, store_url=None,
                 cell_delay: float | None = None,
                 auth_key_file=None) -> None:
        # Validate the bounds eagerly (desired_workers re-checks per call).
        desired_workers({"outstanding": 0}, min_workers=min_workers,
                        max_workers=max_workers,
                        cells_per_worker=cells_per_worker)
        if idle_ticks < 1:
            raise ValueError(f"idle_ticks must be >= 1, got {idle_ticks}")
        self.coordinator = coordinator
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.cells_per_worker = cells_per_worker
        self.interval = interval
        self.idle_ticks = idle_ticks
        self.store_dir = store_dir
        self.store_url = store_url
        self.cell_delay = cell_delay
        self.auth_key_file = auth_key_file
        # Registry-backed counters: the ticker thread increments while
        # any other thread reads .stats, so the updates must be atomic
        # (they mutate under the registry lock — the unlocked dict this
        # replaces could tear a snapshot mid-increment).
        self.metrics = MetricsRegistry(attach_to=REGISTRY)
        self._counters = {
            "spawned": self.metrics.counter(
                "repro_autoscaler_spawned_total", "Workers spawned on scale-up"),
            "retired": self.metrics.counter(
                "repro_autoscaler_retired_total", "Workers retired on scale-down"),
            "ticks": self.metrics.counter(
                "repro_autoscaler_ticks_total", "Scaling decisions evaluated"),
        }
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._under_target = 0
        coordinator.elastic = True

    @property
    def stats(self) -> dict[str, int]:
        """Compatibility view of the registry counters (atomic snapshot)."""
        return {name: int(counter.value)
                for name, counter in self._counters.items()}

    def start(self) -> LocalAutoscaler:
        """Run the scaling loop on a daemon thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._loop, name="fleet-autoscaler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the scaling loop (spawned workers keep running until retired)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> LocalAutoscaler:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except (OSError, RuntimeError) as exc:
                # Scaling is advisory: a failed spawn must not kill the
                # loop (the next tick retries), and a closing coordinator
                # simply stops mattering.
                logger.warning("autoscaler tick failed: %s", exc)

    def tick(self) -> None:
        """One scaling decision (public so tests can drive it directly)."""
        self._counters["ticks"].inc()
        load = self.coordinator.load()
        # Workers already marked for retirement will leave on their own;
        # count them as gone so ticks don't stack retire requests.
        effective = max(0, load["workers"] - load["retire_pending"])
        want = desired_workers(load, min_workers=self.min_workers,
                               max_workers=self.max_workers,
                               cells_per_worker=self.cells_per_worker)
        if want > effective:
            self._under_target = 0
            n = want - effective
            self.coordinator.spawn_local_workers(
                n, store_dir=self.store_dir, store_url=self.store_url,
                cell_delay=self.cell_delay, auth_key_file=self.auth_key_file)
            self._counters["spawned"].inc(n)
            logger.info("autoscaler: spawned %d worker(s) -> %d "
                        "(outstanding=%d)", n, want, load["outstanding"])
        elif want < effective:
            self._under_target += 1
            if self._under_target >= self.idle_ticks:
                self._under_target = 0
                n = effective - want
                self.coordinator.request_retire(n)
                self._counters["retired"].inc(n)
                logger.info("autoscaler: retiring %d worker(s) -> %d", n, want)
        else:
            self._under_target = 0
