"""Distributed worker-fleet execution of experiment plans.

The ``process`` executor of :mod:`repro.experiments.scheduler` stops at
one machine; this package serializes the same pure, picklable
:class:`~repro.core.evaluation.EvalCell` protocol over TCP to a fleet of
workers on any number of hosts:

* :mod:`repro.distributed.protocol` — the versioned, length-prefixed,
  schema'd wire protocol (HELLO handshake with optional keyed
  challenge–response, HMAC-signed frames, plan manifests, cell batches,
  results, heartbeats, store-bootstrap blobs — no pickle anywhere);
* :mod:`repro.distributed.coordinator` — the :class:`Coordinator` that
  expands a plan into cells, leases them to workers with bounded-retry
  requeue on worker death, serves dataset/cache blobs to cold stores and
  merges results in plan order;
* :mod:`repro.distributed.worker` — the :class:`FleetWorker` client,
  runnable as ``python -m repro.distributed.worker --connect HOST:PORT``.

Because cell seeds are derived at planning time and the merge is
plan-ordered, results are **bit-identical** to the serial executor
regardless of worker count, disconnect order or requeue history.
"""

from repro.distributed.protocol import PROTOCOL_VERSION, parse_address

__all__ = ["Coordinator", "FleetWorker", "PROTOCOL_VERSION", "parse_address"]


def __getattr__(name: str):
    # Lazy so `python -m repro.distributed.worker` does not import the
    # worker module twice (runpy warns when the package already did).
    if name == "Coordinator":
        from repro.distributed.coordinator import Coordinator

        return Coordinator
    if name == "FleetWorker":
        from repro.distributed.worker import FleetWorker

        return FleetWorker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
