"""Versioned wire protocol of the distributed worker fleet.

Framing
-------
Every message is one *frame*: a 12-byte big-endian header — payload
length plus the CRC32 of the payload — followed by that many bytes of
pickle payload.  The receiver recomputes the CRC before unpickling, so a
frame corrupted on the wire raises :class:`ProtocolError` instead of
feeding garbage to :mod:`pickle` (the CRC is an integrity check against
accidental corruption, not an authentication mechanism — see the trust
model below).  Frames are written atomically under a caller-supplied lock
(the worker's heartbeat thread shares its socket with the request loop),
and :func:`recv_message` reads exactly one frame, so the stream never
needs resynchronization.

Message flow
------------
The conversation is worker-driven: apart from the reply to each request,
the coordinator never pushes anything, so a worker that sends a request
reads exactly one reply (heartbeats are fire-and-forget in the other
direction and get no reply).

1. handshake — :class:`Hello` (protocol version, store-fingerprint format
   version, worker identity) answered by :class:`Welcome` or, on any
   version mismatch, :class:`Reject` followed by a close;
2. plan manifest — :class:`GetPlan` answered by :class:`PlanAssignment`
   (the full :class:`~repro.experiments.plan.ExperimentPlan`, which is a
   frozen dataclass of primitives and pickles unchanged), :class:`NoPlan`
   (poll again later) or :class:`Goodbye` (fleet shutting down);
3. store bootstrap — the :class:`PlanAssignment` manifest advertises the
   coordinator store's *locator* URL (``store_url``) when the store is
   shareable, so cold workers read the dataset and warmed caches
   **directly from shared storage** (e.g. the S3-style object store of
   :mod:`repro.datasets.object_server`) instead of funneling blobs
   through the coordinator's socket; :class:`FetchDataset` /
   :class:`FetchCache` answered by :class:`DatasetBlob` /
   :class:`CacheBlob` (raw ``.npz`` bytes) remain as the
   coordinator-relay fallback when no locator is advertised or the
   advertised store is unreachable;
4. work loop — :class:`GetBatch` answered by :class:`Batch`,
   :class:`Idle` (cells in flight elsewhere, poll again) or
   :class:`PlanDone`; :class:`Results` answered by :class:`Ack`;
5. liveness — :class:`Heartbeat`, sent on an interval by a worker-side
   daemon thread even while cells compute.

Trust model
-----------
Payloads are **pickle**: the protocol authenticates nothing and must only
run on trusted networks (the coordinator binds loopback by default).
This mirrors the trust model of ``multiprocessing``'s own socket
transport that the single-host ``process`` executor already relies on.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import zlib
from dataclasses import dataclass, field

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ConnectionClosed",
    "ProtocolError",
    "send_message",
    "recv_message",
    "parse_address",
    "Hello",
    "Welcome",
    "Reject",
    "GetPlan",
    "PlanAssignment",
    "NoPlan",
    "Goodbye",
    "FetchDataset",
    "DatasetBlob",
    "FetchCache",
    "CacheBlob",
    "GetBatch",
    "Batch",
    "Idle",
    "PlanDone",
    "Results",
    "Ack",
    "Heartbeat",
]

#: Bump on any incompatible change to the message set or framing; the
#: HELLO handshake rejects workers whose version differs.
#: Version 2 added the advertised store locator (``PlanAssignment.store_url``).
#: Version 3 added CRC32 frame checksums and blob digests
#: (``DatasetBlob.sha256`` / ``CacheBlob.sha256``).
#: Version 4 added telemetry: ``Heartbeat.metrics`` / ``Results.metrics``
#: (worker-side counter snapshots the coordinator merges into its
#: fleet-wide view), ``Batch.trace`` (the parent span context) and
#: ``Results.spans`` (the worker's finished batch/cell spans).
PROTOCOL_VERSION = 4

#: Upper bound on a single frame (a defensive cap, far above any real
#: dataset blob; a corrupt or foreign length prefix fails fast instead of
#: attempting a multi-gigabyte read).
MAX_FRAME_BYTES = 1 << 31

_HEADER = struct.Struct(">QI")  # payload length, CRC32 of payload


class ConnectionClosed(ConnectionError):
    """The peer closed the connection mid-frame (or before one started)."""


class ProtocolError(RuntimeError):
    """The peer violated the framing or message protocol."""


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(f"peer closed with {remaining} of {n} bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message, lock: threading.Lock | None = None) -> None:
    """Pickle *message* and write it as one length-prefixed frame.

    With *lock* the header+payload write is atomic with respect to other
    senders on the same socket (the worker's heartbeat thread).
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def recv_message(sock: socket.socket):
    """Read exactly one frame and unpickle it.

    Raises :class:`ConnectionClosed` on EOF and :class:`ProtocolError` on
    an implausible length prefix, a CRC mismatch, or an unpicklable
    payload — i.e. any frame that was corrupted in flight.
    """
    length, crc = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    payload = _recv_exactly(sock, length)
    actual = zlib.crc32(payload)
    if actual != crc:
        raise ProtocolError(
            f"frame CRC mismatch: header says {crc:#010x}, payload is {actual:#010x}")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


def parse_address(address: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` string into a socket address tuple."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT, got {address!r}")
    return host, int(port)


# --------------------------------------------------------------------------- #
# Handshake
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Hello:
    """Worker → coordinator: identity plus the compatibility versions.

    ``store_format_version`` (the worker's
    :data:`repro.datasets.store._FORMAT_VERSION`) and
    ``simulator_versions`` (its
    :func:`~repro.datasets.store._simulator_versions` token) must both
    match the coordinator's: they are fingerprint ingredients, so a skew
    would let bootstrap blobs land under keys the other side never looks
    up — or worse, let one side's store serve the other side's stale
    simulator output.
    """

    protocol_version: int
    store_format_version: int
    worker_id: str
    pid: int
    simulator_versions: str = ""


@dataclass(frozen=True)
class Welcome:
    """Coordinator → worker: handshake accepted."""

    coordinator_id: str


@dataclass(frozen=True)
class Reject:
    """Coordinator → worker: handshake refused (version mismatch); closes."""

    reason: str


# --------------------------------------------------------------------------- #
# Plan manifests
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GetPlan:
    worker_id: str


@dataclass(frozen=True)
class PlanAssignment:
    """The plan manifest: the full plan plus its content-hash identity.

    ``plan_id`` (:attr:`ExperimentPlan.fingerprint`, extended with a
    content digest when the coordinator runs an explicit dataset
    override) scopes every later message, so results or fetches from a
    worker still chewing on a previous plan are recognized as stale
    instead of corrupting the current one.  ``store_ok`` is ``False``
    when the plan runs on an override dataset whose content has no
    registered fingerprint: the worker must then fetch the blobs and keep
    them out of its persistent store.

    ``store_url`` is the coordinator store's shareable locator (``file://``
    on a shared filesystem, ``http://`` for an object store) or ``None``:
    a worker missing an artifact tries the advertised store first and
    only falls back to :class:`FetchDataset`/:class:`FetchCache` relay
    frames when there is no locator or the direct read fails, so
    cold-starting a large fleet no longer serializes every blob through
    the coordinator's single socket.
    """

    plan_id: str
    plan: object
    store_ok: bool = True
    store_url: str | None = None


@dataclass(frozen=True)
class NoPlan:
    """No plan is active; poll again after *delay* seconds."""

    delay: float = 0.2


@dataclass(frozen=True)
class Goodbye:
    """The fleet is shutting down; the worker should exit cleanly."""

    reason: str = "shutdown"


# --------------------------------------------------------------------------- #
# Store bootstrap
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FetchDataset:
    plan_id: str


@dataclass(frozen=True)
class DatasetBlob:
    """Raw ``.npz`` bytes of the plan's resolved dataset.

    ``sha256`` is the hex content digest of ``data`` (empty when the
    sender predates v3); receivers verify it before deserializing.
    """

    plan_id: str
    data: bytes = field(repr=False)
    sha256: str = ""


@dataclass(frozen=True)
class FetchCache:
    plan_id: str
    model_key: str


@dataclass(frozen=True)
class CacheBlob:
    """Raw ``.npz`` bytes of one warmed analytical-prediction cache.

    ``sha256`` as on :class:`DatasetBlob`.
    """

    plan_id: str
    model_key: str
    data: bytes = field(repr=False)
    sha256: str = ""


# --------------------------------------------------------------------------- #
# The work loop
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GetBatch:
    plan_id: str
    worker_id: str


@dataclass(frozen=True)
class Batch:
    """A leased batch of cells; the lease is released by :class:`Results`
    or requeued when the worker dies.

    ``trace`` (v4) is the plan span's
    :class:`~repro.obs.tracing.SpanContext` when the coordinator side
    runs under an active trace collection: the worker parents its batch
    and cell spans to it and ships them back in :attr:`Results.spans`.
    ``None`` (the default, and the only value when tracing is off) asks
    the worker to create no spans at all.
    """

    plan_id: str
    cells: tuple
    trace: object | None = None


@dataclass(frozen=True)
class Idle:
    """Queue empty but results still outstanding; poll again after *delay*."""

    delay: float = 0.05


@dataclass(frozen=True)
class PlanDone:
    """The plan (by id) is complete or no longer active."""

    plan_id: str


@dataclass(frozen=True)
class Results:
    """Worker → coordinator: one batch's cell results.

    ``spans`` (v4) carries the worker's finished batch/cell
    :class:`~repro.obs.tracing.Span` objects when the :class:`Batch`
    shipped a ``trace`` context; ``metrics`` (v4) a
    :class:`~repro.obs.metrics.MetricsSnapshot` of the worker's
    registry, folded into the coordinator's fleet-wide view.
    """

    plan_id: str
    worker_id: str
    results: tuple
    spans: tuple = ()
    metrics: object | None = None


@dataclass(frozen=True)
class Ack:
    """Coordinator → worker: results recorded."""


@dataclass(frozen=True)
class Heartbeat:
    """Fire-and-forget liveness signal; resets the coordinator's lease timer.

    ``metrics`` (v4) is a :class:`~repro.obs.metrics.MetricsSnapshot`
    of the worker's counters (``direct_fetches``, ``relay_fetches``,
    ``reconnects``, cells completed, ...), so the coordinator exposes
    per-worker and aggregate fleet gauges on its status port even while
    cells are still computing.
    """

    worker_id: str
    metrics: object | None = None
