"""Versioned wire protocol of the distributed worker fleet.

Framing (v5)
------------
Every message is one *frame*: a 13-byte big-endian header — payload
length, the CRC32 of the payload, and a flags byte — followed by that
many bytes of **schema-encoded** payload
(:mod:`repro.distributed.codec`: a closed value model plus a whitelist
of plain-data dataclasses; pickle never touches the wire), and, on
authenticated connections, a 32-byte HMAC-SHA256 tag.  The receiver
verifies the tag first (it covers a per-direction monotonic sequence
number, the header and the payload — a tampered or replayed frame fails
here), then the CRC (accidental corruption on unauthenticated
connections), then decodes; any violation raises
:class:`ProtocolError` and severs the connection.  Frames are written
atomically under a caller-supplied lock (the worker's heartbeat thread
shares its socket with the request loop), and :func:`recv_message`
reads exactly one frame, so the stream never needs resynchronization.

Authentication
--------------
With a shared key (``--auth-key-file``) the HELLO handshake runs a
mutual challenge–response: :class:`Hello` carries a fresh worker nonce
plus ``HMAC(key, nonce + worker_id)``, and :class:`Welcome` answers
with a fresh coordinator nonce plus ``HMAC(key, both nonces)`` — each
side proves key knowledge against a nonce the *other* side just chose,
so neither proof can be replayed.  Both sides then derive a
per-connection session key from the nonce pair
(:meth:`FrameAuth.activate_session`) and every subsequent frame carries
an HMAC-SHA256 tag over ``direction || sequence-number || header ||
payload`` under that session key: tampering trips the tag before the
CRC, replaying a captured frame fails on the sequence number, and
replaying a whole captured session fails on the fresh nonces.  A frame
that should be signed but is not (or vice versa) is refused
(:class:`AuthError`).  Without a key the frames are unsigned and the
codec still guarantees no crafted frame can execute code.

Message flow
------------
The conversation is worker-driven: apart from the reply to each request,
the coordinator never pushes anything, so a worker that sends a request
reads exactly one reply (heartbeats are fire-and-forget in the other
direction and get no reply).

1. handshake — :class:`Hello` (protocol version, store-fingerprint format
   version, worker identity) answered by :class:`Welcome` or, on any
   version mismatch, :class:`Reject` followed by a close;
2. plan manifest — :class:`GetPlan` answered by :class:`PlanAssignment`
   (the full :class:`~repro.experiments.plan.ExperimentPlan`, a frozen
   dataclass of primitives with an explicit codec schema), :class:`NoPlan`
   (poll again later) or :class:`Goodbye` (fleet shutting down);
3. store bootstrap — the :class:`PlanAssignment` manifest advertises the
   coordinator store's *locator* URL (``store_url``) when the store is
   shareable, so cold workers read the dataset and warmed caches
   **directly from shared storage** (e.g. the S3-style object store of
   :mod:`repro.datasets.object_server`) instead of funneling blobs
   through the coordinator's socket; :class:`FetchDataset` /
   :class:`FetchCache` answered by :class:`DatasetBlob` /
   :class:`CacheBlob` (raw ``.npz`` bytes) remain as the
   coordinator-relay fallback when no locator is advertised or the
   advertised store is unreachable;
4. work loop — :class:`GetBatch` answered by :class:`Batch`,
   :class:`Idle` (cells in flight elsewhere, poll again) or
   :class:`PlanDone`; :class:`Results` answered by :class:`Ack`;
5. liveness — :class:`Heartbeat`, sent on an interval by a worker-side
   daemon thread even while cells compute.

Trust model
-----------
Unknown or malformed frames fail closed: the codec only instantiates
whitelisted plain-data dataclasses, so a malicious peer cannot execute
code, and with a shared key it cannot speak at all.  Keyless operation
remains appropriate for loopback and trusted single-host runs (the
coordinator binds loopback by default); the CLIs refuse a non-loopback
bind without a key unless ``--insecure`` is passed.
"""

from __future__ import annotations

import hmac
import os
import socket
import struct
import threading
import zlib
from dataclasses import dataclass, field
from hashlib import sha256

from repro.distributed.codec import CodecError, decode_value, encode_value

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ConnectionClosed",
    "ProtocolError",
    "AuthError",
    "FrameAuth",
    "send_message",
    "recv_message",
    "parse_address",
    "Hello",
    "Welcome",
    "Reject",
    "GetPlan",
    "PlanAssignment",
    "NoPlan",
    "Goodbye",
    "FetchDataset",
    "DatasetBlob",
    "FetchCache",
    "CacheBlob",
    "GetBatch",
    "Batch",
    "Idle",
    "PlanDone",
    "Results",
    "Ack",
    "Heartbeat",
]

#: Bump on any incompatible change to the message set or framing; the
#: HELLO handshake rejects workers whose version differs.
#: Version 2 added the advertised store locator (``PlanAssignment.store_url``).
#: Version 3 added CRC32 frame checksums and blob digests
#: (``DatasetBlob.sha256`` / ``CacheBlob.sha256``).
#: Version 4 added telemetry: ``Heartbeat.metrics`` / ``Results.metrics``
#: (worker-side counter snapshots the coordinator merges into its
#: fleet-wide view), ``Batch.trace`` (the parent span context) and
#: ``Results.spans`` (the worker's finished batch/cell spans).
#: Version 5 replaced pickle payloads with the schema'd codec
#: (:mod:`repro.distributed.codec`), added the flags byte to the frame
#: header, and layered the shared-key HMAC handshake + per-frame tags
#: (``Hello.auth_nonce``/``auth_proof``, ``Welcome`` likewise).
PROTOCOL_VERSION = 5

#: Upper bound on a single frame (a defensive cap, far above any real
#: dataset blob; a corrupt or foreign length prefix fails fast instead of
#: attempting a multi-gigabyte read).
MAX_FRAME_BYTES = 1 << 31

_HEADER = struct.Struct(">QIB")  # payload length, CRC32 of payload, flags

#: Flags-byte bit: a 32-byte HMAC-SHA256 tag follows the payload.
FLAG_SIGNED = 0x01
#: Size of the per-frame HMAC-SHA256 tag.
TAG_BYTES = 32


class ConnectionClosed(ConnectionError):
    """The peer closed the connection mid-frame (or before one started)."""


class ProtocolError(RuntimeError):
    """The peer violated the framing or message protocol."""


class AuthError(ProtocolError):
    """A frame failed authentication: bad tag, replay, or missing tag."""


def _hmac_hex(key: bytes, *parts: bytes) -> str:
    return hmac.new(key, b"|".join(parts), sha256).hexdigest()


def hello_proof(key: bytes, nonce: str, worker_id: str) -> str:
    """The worker's HELLO challenge proof: key knowledge bound to its nonce."""
    return _hmac_hex(key, b"repro-hello", nonce.encode(), worker_id.encode())


def welcome_proof(key: bytes, worker_nonce: str, coordinator_nonce: str) -> str:
    """The coordinator's WELCOME proof: key knowledge bound to *both* nonces.

    The worker nonce is fresh per connection, so a recorded WELCOME
    cannot be replayed to a new worker — mutual authentication, not just
    client authentication.
    """
    return _hmac_hex(key, b"repro-welcome", worker_nonce.encode(),
                     coordinator_nonce.encode())


def auth_nonce() -> str:
    """A fresh random handshake nonce (hex)."""
    return os.urandom(16).hex()


class FrameAuth:
    """Per-connection HMAC state: session key and per-direction sequence numbers.

    Created once per connection with the shared key and this side's
    *role* (``"worker"`` or ``"coordinator"`` — the role picks the
    direction labels folded into every tag, so a frame reflected back to
    its sender never verifies).  Handshake frames (HELLO/WELCOME/REJECT)
    travel unsigned — their authenticity comes from the challenge
    proofs *inside* them; once both nonces are known,
    :meth:`activate_session` derives the per-connection session key and
    every later frame is signed with it.

    Sequence numbers are monotonic per direction, start at zero on
    session activation and are folded into each tag: the receiver
    computes the tag with the sequence number it *expects*, so a
    replayed (or dropped-then-reordered) frame fails verification —
    there is no window in which an old frame is acceptable.

    Thread safety: :meth:`sign` must be called under the same lock that
    serializes ``sendall`` on the socket (wire order must match
    sequence order); :meth:`verify` assumes a single reader per socket.
    """

    def __init__(self, key: bytes, role: str) -> None:
        if role not in ("worker", "coordinator"):
            raise ValueError(f"role must be worker|coordinator, got {role!r}")
        if not key:
            raise ValueError("auth key must be non-empty")
        self.key = bytes(key)
        self.role = role
        self._send_label = b"w>c" if role == "worker" else b"c>w"
        self._recv_label = b"c>w" if role == "worker" else b"w>c"
        self._session_key: bytes | None = None
        self._send_seq = 0
        self._recv_seq = 0

    @property
    def session_active(self) -> bool:
        """Whether the handshake completed and frames must be signed."""
        return self._session_key is not None

    def activate_session(self, worker_nonce: str, coordinator_nonce: str) -> None:
        """Derive the per-connection session key; resets both sequences."""
        self._session_key = hmac.new(
            self.key, b"|".join((b"repro-session", worker_nonce.encode(),
                                 coordinator_nonce.encode())),
            sha256).digest()
        self._send_seq = 0
        self._recv_seq = 0

    def _tag(self, label: bytes, seq: int, header: bytes, payload: bytes) -> bytes:
        return hmac.new(
            self._session_key,
            label + seq.to_bytes(8, "big") + header + payload,
            sha256).digest()

    def sign(self, header: bytes, payload: bytes) -> bytes:
        """The tag for the next outbound frame (consumes a sequence number)."""
        tag = self._tag(self._send_label, self._send_seq, header, payload)
        self._send_seq += 1
        return tag

    def verify(self, header: bytes, payload: bytes, tag: bytes) -> None:
        """Check an inbound frame's tag; :class:`AuthError` on any mismatch."""
        expected = self._tag(self._recv_label, self._recv_seq, header, payload)
        if not hmac.compare_digest(expected, tag):
            raise AuthError(
                f"frame authentication failed (sequence {self._recv_seq}): "
                "tampered, replayed, or signed with a different key")
        self._recv_seq += 1


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(f"peer closed with {remaining} of {n} bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message,
                 lock: threading.Lock | None = None,
                 auth: FrameAuth | None = None) -> None:
    """Schema-encode *message* and write it as one length-prefixed frame.

    With *lock* the write — and the signing sequence number, when *auth*
    has an active session — is atomic with respect to other senders on
    the same socket (the worker's heartbeat thread).  Handshake frames
    (before :meth:`FrameAuth.activate_session`) travel unsigned.
    """
    try:
        payload = encode_value(message)
    except CodecError as exc:
        raise ProtocolError(f"message is outside the wire schema: {exc}") from exc
    signed = auth is not None and auth.session_active
    flags = FLAG_SIGNED if signed else 0
    header = _HEADER.pack(len(payload), zlib.crc32(payload), flags)
    if lock is not None:
        with lock:
            frame = (header + payload + auth.sign(header, payload)
                     if signed else header + payload)
            sock.sendall(frame)
    else:
        frame = (header + payload + auth.sign(header, payload)
                 if signed else header + payload)
        sock.sendall(frame)


def recv_message(sock: socket.socket, auth: FrameAuth | None = None):
    """Read exactly one frame, authenticate it, and decode it.

    Checks run strictest-first: the HMAC tag (when the connection is
    authenticated), then the CRC, then the codec.  Raises
    :class:`ConnectionClosed` on EOF, :class:`AuthError` on a missing or
    failed tag, and :class:`ProtocolError` on an implausible length
    prefix, an unknown flag, a CRC mismatch, or an undecodable payload —
    i.e. any frame that was corrupted or forged in flight.
    """
    header = _recv_exactly(sock, _HEADER.size)
    length, crc, flags = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    if flags & ~FLAG_SIGNED:
        raise ProtocolError(f"unknown frame flags {flags:#04x}")
    payload = _recv_exactly(sock, length)
    session = auth is not None and auth.session_active
    if flags & FLAG_SIGNED:
        tag = _recv_exactly(sock, TAG_BYTES)
        if not session:
            raise AuthError(
                "peer sent a signed frame on an unauthenticated connection")
        # The tag covers the sequence number, header and payload, so it
        # is checked before the CRC: on an authenticated connection a
        # corrupted frame must be reported as an authentication failure,
        # never rationalized as accidental line noise.
        auth.verify(header, payload, tag)
    elif session:
        raise AuthError(
            "peer sent an unsigned frame on an authenticated connection")
    actual = zlib.crc32(payload)
    if actual != crc:
        raise ProtocolError(
            f"frame CRC mismatch: header says {crc:#010x}, payload is {actual:#010x}")
    try:
        return decode_value(payload)
    except CodecError as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


def parse_address(address: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` string into a socket address tuple."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT, got {address!r}")
    return host, int(port)


# --------------------------------------------------------------------------- #
# Handshake
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Hello:
    """Worker → coordinator: identity plus the compatibility versions.

    ``store_format_version`` (the worker's
    :data:`repro.datasets.store._FORMAT_VERSION`) and
    ``simulator_versions`` (its
    :func:`~repro.datasets.store._simulator_versions` token) must both
    match the coordinator's: they are fingerprint ingredients, so a skew
    would let bootstrap blobs land under keys the other side never looks
    up — or worse, let one side's store serve the other side's stale
    simulator output.

    ``auth_nonce``/``auth_proof`` (v5) carry the worker's half of the
    keyed challenge–response: a fresh random nonce and
    :func:`hello_proof` over it.  Both empty on unauthenticated fleets.
    """

    protocol_version: int
    store_format_version: int
    worker_id: str
    pid: int
    simulator_versions: str = ""
    auth_nonce: str = ""
    auth_proof: str = ""


@dataclass(frozen=True)
class Welcome:
    """Coordinator → worker: handshake accepted.

    ``auth_nonce``/``auth_proof`` (v5) are the coordinator's half of the
    challenge–response: its own fresh nonce and :func:`welcome_proof`
    over both nonces — the worker verifies it before trusting the
    coordinator, then both sides derive the session key from the nonce
    pair and start signing frames.
    """

    coordinator_id: str
    auth_nonce: str = ""
    auth_proof: str = ""


@dataclass(frozen=True)
class Reject:
    """Coordinator → worker: handshake refused (version/auth mismatch); closes."""

    reason: str


# --------------------------------------------------------------------------- #
# Plan manifests
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GetPlan:
    worker_id: str


@dataclass(frozen=True)
class PlanAssignment:
    """The plan manifest: the full plan plus its content-hash identity.

    ``plan_id`` (:attr:`ExperimentPlan.fingerprint`, extended with a
    content digest when the coordinator runs an explicit dataset
    override) scopes every later message, so results or fetches from a
    worker still chewing on a previous plan are recognized as stale
    instead of corrupting the current one.  ``store_ok`` is ``False``
    when the plan runs on an override dataset whose content has no
    registered fingerprint: the worker must then fetch the blobs and keep
    them out of its persistent store.

    ``store_url`` is the coordinator store's shareable locator (``file://``
    on a shared filesystem, ``http://`` for an object store) or ``None``:
    a worker missing an artifact tries the advertised store first and
    only falls back to :class:`FetchDataset`/:class:`FetchCache` relay
    frames when there is no locator or the direct read fails, so
    cold-starting a large fleet no longer serializes every blob through
    the coordinator's single socket.
    """

    plan_id: str
    plan: object
    store_ok: bool = True
    store_url: str | None = None


@dataclass(frozen=True)
class NoPlan:
    """No plan is active; poll again after *delay* seconds."""

    delay: float = 0.2


@dataclass(frozen=True)
class Goodbye:
    """The fleet is shutting down; the worker should exit cleanly."""

    reason: str = "shutdown"


# --------------------------------------------------------------------------- #
# Store bootstrap
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FetchDataset:
    plan_id: str


@dataclass(frozen=True)
class DatasetBlob:
    """Raw ``.npz`` bytes of the plan's resolved dataset.

    ``sha256`` is the hex content digest of ``data`` (empty when the
    sender predates v3); receivers verify it before deserializing.
    """

    plan_id: str
    data: bytes = field(repr=False)
    sha256: str = ""


@dataclass(frozen=True)
class FetchCache:
    plan_id: str
    model_key: str


@dataclass(frozen=True)
class CacheBlob:
    """Raw ``.npz`` bytes of one warmed analytical-prediction cache.

    ``sha256`` as on :class:`DatasetBlob`.
    """

    plan_id: str
    model_key: str
    data: bytes = field(repr=False)
    sha256: str = ""


# --------------------------------------------------------------------------- #
# The work loop
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GetBatch:
    plan_id: str
    worker_id: str


@dataclass(frozen=True)
class Batch:
    """A leased batch of cells; the lease is released by :class:`Results`
    or requeued when the worker dies.

    ``trace`` (v4) is the plan span's
    :class:`~repro.obs.tracing.SpanContext` when the coordinator side
    runs under an active trace collection: the worker parents its batch
    and cell spans to it and ships them back in :attr:`Results.spans`.
    ``None`` (the default, and the only value when tracing is off) asks
    the worker to create no spans at all.
    """

    plan_id: str
    cells: tuple
    trace: object | None = None


@dataclass(frozen=True)
class Idle:
    """Queue empty but results still outstanding; poll again after *delay*."""

    delay: float = 0.05


@dataclass(frozen=True)
class PlanDone:
    """The plan (by id) is complete or no longer active."""

    plan_id: str


@dataclass(frozen=True)
class Results:
    """Worker → coordinator: one batch's cell results.

    ``spans`` (v4) carries the worker's finished batch/cell
    :class:`~repro.obs.tracing.Span` objects when the :class:`Batch`
    shipped a ``trace`` context; ``metrics`` (v4) a
    :class:`~repro.obs.metrics.MetricsSnapshot` of the worker's
    registry, folded into the coordinator's fleet-wide view.
    """

    plan_id: str
    worker_id: str
    results: tuple
    spans: tuple = ()
    metrics: object | None = None


@dataclass(frozen=True)
class Ack:
    """Coordinator → worker: results recorded."""


@dataclass(frozen=True)
class Heartbeat:
    """Fire-and-forget liveness signal; resets the coordinator's lease timer.

    ``metrics`` (v4) is a :class:`~repro.obs.metrics.MetricsSnapshot`
    of the worker's counters (``direct_fetches``, ``relay_fetches``,
    ``reconnects``, cells completed, ...), so the coordinator exposes
    per-worker and aggregate fleet gauges on its status port even while
    cells are still computing.
    """

    worker_id: str
    metrics: object | None = None
