"""Schema'd wire codec for the fleet protocol (v5): no pickle, ever.

Frames used to be pickled, which meant a malicious peer could execute
arbitrary code with one crafted frame.  This module replaces pickle with
a small msgpack-style binary encoding built entirely from the stdlib:

* a closed **value model** — ``None``, ``bool``, ``int``, ``float``,
  ``str``, ``bytes``, ``tuple``, ``list`` and ``dict`` (tuples and lists
  keep their identity so decoded messages compare equal to what was
  sent, and dict keys may themselves be tuples — the shape
  :class:`~repro.obs.metrics.MetricsSnapshot` samples use);
* a **struct registry** — the only non-primitive objects that may cross
  the wire are the frame dataclasses of
  :mod:`repro.distributed.protocol` and the plain-data payload types
  they carry (the experiment-plan tree, eval cells and results, spans,
  metrics snapshots).  Each registered struct has an explicit field
  schema derived from its dataclass definition; decoding validates the
  tag and the field names and then calls the dataclass constructor —
  never arbitrary code.

Anything outside the value model or the registry fails closed with
:class:`CodecError` (a subclass of the protocol's framing error type by
the time it surfaces from :func:`~repro.distributed.protocol.recv_message`).
Numpy blobs ride as typed raw ``bytes`` buffers and are only
deserialized by the store's ``.npz`` decoders after digest verification
— nothing in this module ever materializes an object from attacker
bytes beyond the whitelisted dataclasses of primitives.

The encoding is deterministic for a given message (no maps with
unordered iteration beyond the insertion order Python guarantees), so
bit-identity of results is preserved end to end: plan fingerprints are
recomputed from the *decoded* plan and must match the sender's.
"""

from __future__ import annotations

import operator
import struct
from dataclasses import MISSING, fields, is_dataclass

__all__ = ["CodecError", "encode_value", "decode_value", "register_struct"]


class CodecError(RuntimeError):
    """A value outside the wire schema, or a malformed encoded buffer."""


# Type tags.  One byte each; lengths and counts are big-endian.
_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT64 = b"i"      # ">q"
_BIGINT = b"I"     # u32 length + signed big-endian bytes
_FLOAT = b"f"      # ">d" (exact IEEE-754 round trip)
_STR = b"s"        # u32 length + UTF-8
_BYTES = b"b"      # u64 length + raw (dataset blobs are large)
_TUPLE = b"t"      # u32 count + items
_LIST = b"l"       # u32 count + items
_DICT = b"d"       # u32 count + (key, value) pairs
_STRUCT = b"S"     # tag string + u32 field count + (name, value) pairs

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Maximum nesting depth a decoder will follow — far above any real
#: message (a plan tree is ~5 levels) and low enough that a crafted
#: deeply-nested buffer cannot exhaust the stack.
MAX_DEPTH = 32

#: Registered wire structs: tag -> (class, allowed field names,
#: required field names).  Only these classes can be instantiated by the
#: decoder; the schema is explicit and introspectable.
_STRUCTS: dict[str, tuple[type, frozenset, frozenset]] = {}
_CLASSES: dict[type, str] = {}
_LOADED = False


def register_struct(cls: type, tag: str | None = None) -> type:
    """Whitelist a frozen plain-data dataclass for wire transport.

    The field schema is the dataclass definition itself: decoding
    accepts exactly those field names (missing ones must have defaults)
    and constructs the class with keyword arguments — no other code
    path.  Returns *cls* so it can be used as a decorator.
    """
    if not is_dataclass(cls):
        raise TypeError(f"wire structs must be dataclasses, got {cls!r}")
    name = tag or cls.__name__
    spec = fields(cls)
    allowed = frozenset(f.name for f in spec)
    required = frozenset(
        f.name for f in spec
        if f.default is MISSING and f.default_factory is MISSING)
    _STRUCTS[name] = (cls, allowed, required)
    _CLASSES[cls] = name
    return cls


def _load_registry() -> None:
    """Register every type allowed on the wire (idempotent, lazy).

    Lazy so importing the protocol module does not drag in the whole
    experiments package; by the time a frame is encoded the process has
    these modules loaded anyway.
    """
    global _LOADED
    if _LOADED:
        return
    from repro.core.evaluation import CellResult, EvalCell
    from repro.datasets.store import DatasetSpec
    from repro.distributed import protocol
    from repro.experiments.plan import (
        EstimatorSpec,
        ExperimentPlan,
        FactorySpec,
        SeriesSpec,
    )
    from repro.obs.metrics import MetricsSnapshot
    from repro.obs.tracing import Span, SpanContext

    for cls in (
        # Frame vocabulary (every type recv_message may return).
        protocol.Hello, protocol.Welcome, protocol.Reject,
        protocol.GetPlan, protocol.PlanAssignment, protocol.NoPlan,
        protocol.Goodbye, protocol.FetchDataset, protocol.DatasetBlob,
        protocol.FetchCache, protocol.CacheBlob, protocol.GetBatch,
        protocol.Batch, protocol.Idle, protocol.PlanDone,
        protocol.Results, protocol.Ack, protocol.Heartbeat,
        # Payload objects frames carry (all plain-data dataclasses).
        ExperimentPlan, DatasetSpec, SeriesSpec, FactorySpec,
        EstimatorSpec, EvalCell, CellResult, Span, SpanContext,
        MetricsSnapshot,
    ):
        register_struct(cls)
    _LOADED = True


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #
def _encode(value, out: list) -> None:
    if value is None:
        out.append(_NONE)
    elif value is True:
        out.append(_TRUE)
    elif value is False:
        out.append(_FALSE)
    elif type(value) is int:
        _encode_int(value, out)
    elif isinstance(value, float):  # accepts np.float64 (a float subclass)
        out.append(_FLOAT)
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_STR)
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_BYTES)
        out.append(_U64.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, tuple):
        out.append(_TUPLE)
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode(item, out)
    elif isinstance(value, list):
        out.append(_LIST)
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out.append(_DICT)
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode(key, out)
            _encode(item, out)
    elif type(value) in _CLASSES:
        _encode_struct(value, out)
    else:
        # Integer-likes (numpy int64 seeds and counts) convert exactly;
        # everything else is outside the schema and refused.
        try:
            as_int = operator.index(value)
        except TypeError:
            raise CodecError(
                f"{type(value).__name__} is not a wire-encodable type") from None
        _encode_int(as_int, out)


def _encode_int(value: int, out: list) -> None:
    if _INT64_MIN <= value <= _INT64_MAX:
        out.append(_INT64)
        out.append(_I64.pack(value))
    else:
        raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
        out.append(_BIGINT)
        out.append(_U32.pack(len(raw)))
        out.append(raw)


def _encode_struct(value, out: list) -> None:
    tag = _CLASSES[type(value)]
    _cls, allowed, _required = _STRUCTS[tag]
    raw = tag.encode("utf-8")
    out.append(_STRUCT)
    out.append(_U32.pack(len(raw)))
    out.append(raw)
    items = [(name, getattr(value, name)) for name in sorted(allowed)]
    out.append(_U32.pack(len(items)))
    for name, item in items:
        name_raw = name.encode("utf-8")
        out.append(_U32.pack(len(name_raw)))
        out.append(name_raw)
        _encode(item, out)


def encode_value(value) -> bytes:
    """Encode *value* under the wire schema; :class:`CodecError` if outside it."""
    _load_registry()
    out: list = []
    _encode(value, out)
    return b"".join(out)


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #
class _Reader:
    """Bounds-checked cursor over an untrusted buffer."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.buf):
            raise CodecError(
                f"truncated buffer: need {n} bytes at offset {self.pos}, "
                f"have {len(self.buf) - self.pos}")
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def text(self) -> str:
        try:
            return self.take(self.u32()).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in encoded string: {exc}") from None


def _decode(reader: _Reader, depth: int):
    if depth > MAX_DEPTH:
        raise CodecError(f"nesting deeper than {MAX_DEPTH} levels")
    tag = reader.take(1)
    if tag == _NONE:
        return None
    if tag == _TRUE:
        return True
    if tag == _FALSE:
        return False
    if tag == _INT64:
        return _I64.unpack(reader.take(8))[0]
    if tag == _BIGINT:
        return int.from_bytes(reader.take(reader.u32()), "big", signed=True)
    if tag == _FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _STR:
        return reader.text()
    if tag == _BYTES:
        (length,) = _U64.unpack(reader.take(8))
        return reader.take(length)
    if tag == _TUPLE:
        return tuple(_decode(reader, depth + 1) for _ in range(reader.u32()))
    if tag == _LIST:
        return [_decode(reader, depth + 1) for _ in range(reader.u32())]
    if tag == _DICT:
        count = reader.u32()
        result = {}
        for _ in range(count):
            key = _decode(reader, depth + 1)
            result[key] = _decode(reader, depth + 1)
        return result
    if tag == _STRUCT:
        return _decode_struct(reader, depth)
    raise CodecError(f"unknown type tag {tag!r} at offset {reader.pos - 1}")


def _decode_struct(reader: _Reader, depth: int):
    tag = reader.text()
    try:
        cls, allowed, required = _STRUCTS[tag]
    except KeyError:
        raise CodecError(f"unknown wire struct {tag!r}") from None
    count = reader.u32()
    kwargs = {}
    for _ in range(count):
        name = reader.text()
        if name not in allowed:
            raise CodecError(f"struct {tag!r} has no field {name!r}")
        kwargs[name] = _decode(reader, depth + 1)
    missing = required - kwargs.keys()
    if missing:
        raise CodecError(
            f"struct {tag!r} is missing required fields {sorted(missing)}")
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"struct {tag!r} rejected its fields: {exc}") from None


def decode_value(buf: bytes):
    """Decode one value; :class:`CodecError` on any malformed byte.

    The whole buffer must be consumed — trailing garbage is as much a
    framing violation as a truncated value.
    """
    _load_registry()
    reader = _Reader(buf)
    try:
        value = _decode(reader, 0)
    except struct.error as exc:  # unpack on a short slice
        raise CodecError(f"malformed encoded value: {exc}") from None
    if reader.pos != len(buf):
        raise CodecError(
            f"{len(buf) - reader.pos} trailing bytes after the encoded value")
    return value
