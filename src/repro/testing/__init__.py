"""Testing utilities shipped with the package (fault injection, chaos)."""

from repro.testing.faults import FaultyBackend, FaultySocket, flip_bit

__all__ = ["FaultyBackend", "FaultySocket", "flip_bit"]
