"""Programmable fault injection for the store and the fleet wire protocol.

The robustness claims of the store/fleet stack (checksums catch
corruption, retries absorb error bursts, relay fallback survives a dead
shared store) are only claims until a test can *cause* each failure on
demand.  This module provides the two injection points:

* :class:`FaultyBackend` wraps any
  :class:`~repro.datasets.backends.StoreBackend` and injects faults into
  the **raw** byte ops, *underneath* the inherited checksum layer — an
  injected bit-flip is therefore exactly what on-disk corruption looks
  like, and the template ``read()`` is expected to catch it.  Rules are
  programmable per operation, per key substring, and per firing count
  (``times``), so a test can say "the first two reads of the dataset
  blob fail with a connection reset, then the store recovers".

* :class:`FaultySocket` wraps a connected socket and corrupts, delays,
  or drops whole protocol *frames* — it parses the frame header so
  injected corruption hits payload bytes (``corrupt_frames``) or the
  trailing HMAC tag of a signed frame (``corrupt_tags``) only, never
  the length prefix (a corrupted length would desynchronize the stream
  instead of exercising the CRC or tag check).

Every injected fault is appended to a ``log`` (and formatted by
``log_text()``), which the CI chaos job uploads as an artifact: a green
chaos run documents exactly which failures it survived.

This module is intentionally dependency-free (stdlib only) and lives in
the installed package, not in ``tests/``, so the CI chaos job and
downstream users can drive it without the test tree on ``sys.path``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.datasets.backends import StoreBackend, is_checksum_key
from repro.distributed import protocol

__all__ = ["FaultyBackend", "FaultySocket", "flip_bit"]


def flip_bit(data: bytes, *, bit: int = 0) -> bytes:
    """*data* with one bit flipped (the canonical minimal corruption)."""
    if not data:
        return data
    index, offset = divmod(bit, 8)
    index %= len(data)
    corrupted = bytearray(data)
    corrupted[index] ^= 1 << offset
    return bytes(corrupted)


@dataclass
class _Rule:
    """One armed fault: what to do, where it applies, how often it fires."""

    kind: str                    # "error" | "corrupt" | "delay"
    op: str                      # backend op name, or "*" for any
    key: str                     # key substring filter ("" matches all)
    times: int | None            # remaining firings; None = unlimited
    exc: Exception | None = None
    delay: float = 0.0
    skip_checksums: bool = True  # don't fire on ``.sha256`` sidecar keys

    def matches(self, op: str, key: str) -> bool:
        """Whether this rule fires for backend operation *op* on *key*."""
        if self.times is not None and self.times <= 0:
            return False
        if self.op != "*" and self.op != op:
            return False
        if self.key and self.key not in key:
            return False
        if self.skip_checksums and is_checksum_key(key):
            return False
        return True


class FaultyBackend(StoreBackend):
    """A :class:`StoreBackend` that injects programmed faults below the
    checksum layer of *inner*.

    The wrapper delegates to the inner backend's **raw** ``_read`` /
    ``_write`` / ``_delete``, so exactly one checksum layer runs — this
    wrapper's inherited one.  Injected corruption on a ``read`` is thus
    indistinguishable from on-disk bit rot and must be caught by
    verification; corruption on a ``write`` lands corrupt bytes under a
    valid-looking key (the sidecar is computed from the uncorrupted
    data), modelling a torn write.

    Arm faults with :meth:`inject_error`, :meth:`inject_corruption` and
    :meth:`inject_delay`; every firing is recorded in :attr:`log`.
    """

    def __init__(self, inner: StoreBackend) -> None:
        self.inner = inner
        self.scheme = inner.scheme
        self.rules: list[_Rule] = []
        self.log: list[dict] = []
        self._lock = threading.Lock()
        self._sleep = time.sleep

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #
    def inject_error(self, exc: Exception, *, op: str = "*", key: str = "",
                     times: int | None = 1) -> FaultyBackend:
        """Raise *exc* on the next *times* matching operations."""
        self.rules.append(_Rule("error", op, key, times, exc=exc))
        return self

    def inject_corruption(self, *, op: str = "read", key: str = "",
                          times: int | None = 1,
                          skip_checksums: bool = True) -> FaultyBackend:
        """Bit-flip the payload of the next *times* matching reads/writes.

        Sidecar keys are skipped by default: corrupting the 64-byte digest
        itself also trips verification, but the interesting failure mode
        is a corrupt *blob* under an intact digest.
        """
        self.rules.append(_Rule("corrupt", op, key, times,
                                skip_checksums=skip_checksums))
        return self

    def inject_delay(self, seconds: float, *, op: str = "*", key: str = "",
                     times: int | None = 1) -> FaultyBackend:
        """Sleep *seconds* before the next *times* matching operations."""
        self.rules.append(_Rule("delay", op, key, times, delay=seconds))
        return self

    def log_text(self) -> str:
        """The fault log, one line per injected fault (CI artifact format)."""
        return "\n".join(
            f"[{entry['n']:03d}] {entry['kind']:7s} op={entry['op']} "
            f"key={entry['key']}" for entry in self.log)

    # ------------------------------------------------------------------ #
    # Injection core
    # ------------------------------------------------------------------ #
    def _apply(self, op: str, key: str, data: bytes | None = None) -> bytes | None:
        """Fire every armed rule matching (*op*, *key*); maybe mutate *data*."""
        with self._lock:
            fired = []
            for rule in self.rules:
                if not rule.matches(op, key):
                    continue
                if rule.times is not None:
                    rule.times -= 1
                self.log.append(
                    {"n": len(self.log) + 1, "kind": rule.kind,
                     "op": op, "key": key})
                fired.append(rule)
        for rule in fired:
            if rule.kind == "delay":
                self._sleep(rule.delay)
            elif rule.kind == "error":
                raise rule.exc
            elif rule.kind == "corrupt" and data is not None:
                data = flip_bit(data)
        return data

    # ------------------------------------------------------------------ #
    # StoreBackend raw surface (delegating to the inner raw surface)
    # ------------------------------------------------------------------ #
    @property
    def locator(self) -> str | None:
        """The wrapped backend's shareable URL (faults are not advertised)."""
        return self.inner.locator

    def _read(self, key: str) -> bytes:
        data = self.inner._read(key)
        return self._apply("read", key, data)

    def _write(self, key: str, data: bytes) -> None:
        data = self._apply("write", key, data)
        self.inner._write(key, data)

    def _delete(self, key: str) -> None:
        self._apply("delete", key)
        self.inner._delete(key)

    def exists(self, key: str) -> bool:
        """Existence check on the inner backend (fault rules may fire first)."""
        self._apply("exists", key)
        return self.inner.exists(key)

    def list(self, prefix: str = "") -> list[str]:
        """Key listing from the inner backend (fault rules may fire first)."""
        self._apply("list", prefix)
        return self.inner.list(prefix)


@dataclass
class FaultySocket:
    """A socket proxy that corrupts, delays, or drops protocol frames.

    Frame-aware: :func:`~repro.distributed.protocol.send_message` writes
    each frame with a single ``sendall``, so the proxy counts frames on
    the send side and — when a frame index is armed via
    ``corrupt_frames`` — flips the first *payload* byte while leaving
    the 13-byte header (and, on a signed frame, the trailing HMAC tag)
    intact.  The length still describes the stream (no
    desynchronization, no hang); the CRC — and on an authenticated
    connection the tag, which covers the payload and is checked *first*
    — no longer matches, which is precisely the condition
    :func:`recv_message` must detect.

    ``corrupt_tags`` instead flips a bit in the trailing
    :data:`~repro.distributed.protocol.TAG_BYTES` of a signed frame,
    leaving the payload (and therefore its CRC) intact: a receiver that
    rejects such a frame provably did so on the tag check, not the CRC.
    Arming a tag corruption for an unsigned frame is a no-op (logged as
    ``tag-skip``) — there is no tag to corrupt.

    ``drop_after`` closes the underlying socket after that many frames
    have been sent, modelling a connection cut mid-conversation.
    """

    sock: object
    corrupt_frames: set[int] = field(default_factory=set)  # 1-based indices
    corrupt_tags: set[int] = field(default_factory=set)    # 1-based indices
    drop_after: int | None = None
    send_delay: float = 0.0
    frames_sent: int = 0
    log: list = field(default_factory=list)

    def sendall(self, frame: bytes) -> None:
        """Forward *frame*, corrupting/delaying/dropping per the armed rules."""
        self.frames_sent += 1
        if self.drop_after is not None and self.frames_sent > self.drop_after:
            self.log.append({"frame": self.frames_sent, "kind": "drop"})
            self.close()
            raise ConnectionResetError("connection dropped by fault injection")
        if self.send_delay:
            time.sleep(self.send_delay)
        header = protocol._HEADER.size
        signed = (len(frame) >= header
                  and frame[header - 1] & protocol.FLAG_SIGNED)
        body_end = len(frame) - protocol.TAG_BYTES if signed else len(frame)
        if self.frames_sent in self.corrupt_frames and body_end > header:
            self.log.append({"frame": self.frames_sent, "kind": "corrupt"})
            frame = (frame[:header] + flip_bit(frame[header:body_end])
                     + frame[body_end:])
        if self.frames_sent in self.corrupt_tags:
            if signed:
                self.log.append({"frame": self.frames_sent, "kind": "tag"})
                frame = frame[:body_end] + flip_bit(frame[body_end:])
            else:
                self.log.append({"frame": self.frames_sent, "kind": "tag-skip"})
        self.sock.sendall(frame)

    def recv(self, n: int) -> bytes:
        """Plain pass-through read (faults are injected on the send side)."""
        return self.sock.recv(n)

    def close(self) -> None:
        """Close the underlying socket, swallowing double-close errors."""
        try:
            self.sock.close()
        except OSError:
            pass

    def __getattr__(self, name):
        return getattr(self.sock, name)
