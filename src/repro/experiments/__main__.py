"""Command-line entry point: ``python -m repro.experiments [names...]``.

Options
-------
``--quick``       use the cheap settings (small ensembles, subsampled datasets)
``--full``        use the high-fidelity settings
``--executor``    how to dispatch learning-curve cells: ``serial``, ``thread``,
                  ``process`` or ``remote`` (a TCP worker fleet) — results are
                  bit-identical; defaults to ``process`` when ``--jobs`` > 1
                  and ``serial`` otherwise
``--jobs``        worker count for the thread/process executors (``-1`` = CPUs);
                  for ``remote``, the size of the spawned localhost fleet
``--bind``        remote executor: listen address for *external* fleet workers
                  (``HOST:PORT``; default is a loopback ephemeral port)
``--workers``     remote executor: spawn N localhost fleet workers (default:
                  ``--jobs`` when ``--bind`` is not given, else 0)
``--store-dir``   persistent dataset/cache store directory: datasets are
                  simulated and analytical caches warmed at most once, then
                  reloaded by later invocations and worker processes
``--store-url``   the same store behind any registered backend locator:
                  ``file://DIR``, ``memory://`` (process-local scratch) or
                  ``http://HOST:PORT/`` — an S3-style object store (serve one
                  with ``python -m repro.datasets.object_server``).  A fleet
                  coordinator advertises the locator to its workers, so cold
                  workers bootstrap directly from the object store instead of
                  relaying blobs through the coordinator socket
``--store-prune`` after the run, delete store entries whose fingerprint none
                  of the executed experiments uses (stale settings, old
                  simulator versions)
``--publish-models`` after each plan-backed experiment, fit one canonical
                  model per servable series on the full dataset and publish
                  it into the store under ``models/<series>-<plan_fp>.npz``;
                  serve the store with ``repro-serve --store-url ...`` (see
                  :mod:`repro.serving` and ``docs/serving.md``)
``--heartbeat-timeout`` / ``--batch-size`` / ``--max-retries``
                  remote-executor fault-tolerance knobs: worker liveness
                  deadline, cells per lease, and the per-cell requeue budget
                  (see the README's "Operating a fleet" section)
``--batch-cells`` cell-fusion target for the process and remote executors:
                  ``auto`` (default) shapes cost-balanced batches/leases from
                  the calibrated cost model, an integer ``N`` forces ~N cells
                  per batch/lease.  Batch shape never affects results.  For
                  ``--executor process`` with ``--jobs`` > 1 a single warm
                  worker pool additionally serves the whole experiment
                  sequence, so workers spawn once and keep their per-plan
                  memos across experiments
``--trace``       record every experiment/plan/batch/cell span of the run —
                  across threads, worker processes and the fleet wire — to
                  FILE as JSON lines and print a per-phase summary (see
                  ``docs/observability.md``)
``--status-port`` remote executor: serve the coordinator's read-only
                  ``/metrics`` (fleet-wide Prometheus text) and ``/healthz``
                  (JSON liveness + load) on this port (0 = ephemeral)
``--auth-key-file`` shared-secret key file: fleet handshakes and frames are
                  HMAC-authenticated, spawned workers inherit the key, the
                  status sidecar and any ``http://`` store requests are
                  signed (see the README's "Securing a fleet" section and
                  ``docs/protocol.md``)
``--insecure``    allow a non-loopback ``--bind`` without ``--auth-key-file``
                  (without it, that combination is a startup error)
``--log-format`` / ``--log-level``
                  structured logging: ``json`` emits one JSON object per
                  line (machine-ingestable), ``text`` the classic format
``names``         experiment names (default: all; see ``EXPERIMENTS``)

Fleet workers
-------------
``python -m repro.experiments fleet-worker --connect HOST:PORT
[--store-dir DIR | --store-url URL]`` starts a worker process for a
``--executor remote --bind`` coordinator on this or any other host (an
alias for ``python -m repro.distributed.worker``; see there for all
options).  Workers missing an artifact bootstrap it directly from the
store the coordinator advertises (falling back to coordinator relay),
so even store-less workers never re-simulate.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import (add_auth_args, add_logging_parent, add_store_args,
                       check_bind_safety, load_auth_key)
from repro.experiments.reporting import format_result
from repro.experiments.runner import EXPERIMENTS, ExperimentSettings, run_experiment
from repro.experiments.scheduler import EXECUTORS
from repro.obs.logging import configure_logging
from repro.obs.tracing import TRACER, write_trace


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "fleet-worker":
        from repro.distributed.worker import main as worker_main

        return worker_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the figures of 'Learning with Analytical Models'",
        parents=[
            add_store_args(
                dir_help="persistent dataset/analytical-cache store directory",
                url_help="store locator instead of a directory: file://DIR, "
                         "memory:// or http://HOST:PORT/ (an S3-style object "
                         "store, e.g. python -m repro.datasets.object_server)"),
            add_auth_args(),
            add_logging_parent(),
        ],
    )
    parser.add_argument("names", nargs="*", default=list(EXPERIMENTS),
                        help=f"experiments to run (default: all). Available: {', '.join(EXPERIMENTS)}")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true", help="cheap smoke-test settings")
    group.add_argument("--full", action="store_true", help="high-fidelity settings")
    parser.add_argument("--executor", choices=EXECUTORS, default=None,
                        help="cell executor (results are bit-identical across "
                             "executors; default: process when --jobs > 1, else serial)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="workers for the thread/process executors (-1 = CPU "
                             "count); local fleet size for --executor remote")
    parser.add_argument("--bind", default=None, metavar="HOST:PORT",
                        help="remote executor: accept external fleet workers on "
                             "this address (start them with the fleet-worker "
                             "subcommand)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="remote executor: spawn N localhost fleet workers "
                             "(default: --jobs without --bind, 0 with it)")
    parser.add_argument("--heartbeat-timeout", type=float, default=None,
                        metavar="S",
                        help="remote executor: seconds of heartbeat silence "
                             "before a worker is presumed dead and its leased "
                             "cells are requeued (default 15; must be > 0 and "
                             "well above the workers' 1s heartbeat interval)")
    parser.add_argument("--batch-size", type=int, default=None, metavar="N",
                        help="remote executor: cells per lease (default 4; "
                             "smaller bounds requeue cost and tail idle time, "
                             "larger amortizes round-trips)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="remote executor: requeue budget per cell before "
                             "the plan fails hard (default 3; 0 = any worker "
                             "death fails the plan)")
    parser.add_argument("--batch-cells", default=None, metavar="auto|N",
                        help="process/remote executors: cell-fusion target — "
                             "'auto' shapes cost-balanced batches (process) "
                             "or adaptive leases (remote) from the cost "
                             "model, an integer forces ~N cells per batch; "
                             "results are bit-identical for any value")
    parser.add_argument("--store-prune", action="store_true",
                        help="after the run, delete store entries not used by "
                             "the executed experiments (requires --store-dir "
                             "or --store-url)")
    parser.add_argument("--publish-models", action="store_true",
                        help="after each plan-backed experiment, fit one model "
                             "per servable series on the full dataset and "
                             "publish it into the store for the serving tier "
                             "(serve with repro-serve --store-url ...; "
                             "requires --store-dir or --store-url)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record every experiment/plan/batch/cell span of "
                             "the run to FILE as JSON lines and print a "
                             "per-phase summary (works with every executor; "
                             "spans cross the process-pool and fleet-wire "
                             "boundaries)")
    parser.add_argument("--status-port", type=int, default=None, metavar="PORT",
                        help="remote executor: serve the coordinator's "
                             "read-only /metrics (fleet-wide Prometheus text) "
                             "and /healthz (JSON) on this port (0 = ephemeral)")
    args = parser.parse_args(argv)
    configure_logging(fmt=args.log_format, level=args.log_level)
    auth_key = load_auth_key(args.auth_key_file, parser=parser)

    if args.quick:
        settings = ExperimentSettings.quick()
    elif args.full:
        settings = ExperimentSettings.full()
    else:
        settings = ExperimentSettings()

    executor = args.executor
    if executor is None:
        if args.bind is not None or args.workers is not None:
            executor = "remote"
        else:
            executor = "serial" if args.jobs == 1 else "process"
    if executor != "remote" and (args.bind is not None or args.workers is not None):
        parser.error("--bind/--workers require --executor remote")
    fleet_knobs = {"heartbeat_timeout": args.heartbeat_timeout,
                   "batch_size": args.batch_size,
                   "max_retries": args.max_retries}
    fleet_knobs = {k: v for k, v in fleet_knobs.items() if v is not None}
    if fleet_knobs and executor != "remote":
        flags = ", ".join("--" + k.replace("_", "-") for k in fleet_knobs)
        parser.error(f"{flags} require --executor remote")
    if args.heartbeat_timeout is not None and args.heartbeat_timeout <= 0:
        parser.error(f"--heartbeat-timeout must be > 0, got {args.heartbeat_timeout}")
    if args.batch_size is not None and args.batch_size < 1:
        parser.error(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.max_retries is not None and args.max_retries < 0:
        parser.error(f"--max-retries must be >= 0, got {args.max_retries}")
    if args.status_port is not None and executor != "remote":
        parser.error("--status-port requires --executor remote (it serves "
                     "the fleet coordinator's metrics)")
    batch_cells = None
    if args.batch_cells is not None:
        if executor not in ("process", "remote"):
            parser.error("--batch-cells requires --executor process or remote")
        from repro.experiments.pool import resolve_batch_cells

        try:
            batch_cells = resolve_batch_cells(args.batch_cells)
        except ValueError as exc:
            parser.error(str(exc))
        if executor == "remote":
            if args.batch_size is not None:
                parser.error("--batch-cells and --batch-size are mutually "
                             "exclusive (both set the fleet lease size)")
            # For the remote executor the fusion target IS the lease size.
            fleet_knobs["batch_size"] = batch_cells
            batch_cells = None
    if args.store_prune and args.store_url is None and args.store_dir is None:
        parser.error("--store-prune requires --store-dir or --store-url")
    if args.publish_models and args.store_url is None and args.store_dir is None:
        parser.error("--publish-models requires --store-dir or --store-url")

    store = None
    if args.store_url is not None:
        # Always resolved through the scheme registry, so a malformed URL
        # (missing scheme, typo'd http:/) is a usage error instead of
        # silently becoming a local directory named after the URL.
        from repro.datasets.backends import resolve_backend
        from repro.datasets.store import DatasetStore

        try:
            store = DatasetStore(resolve_backend(args.store_url, auth=auth_key))
        except ValueError as exc:
            parser.error(str(exc))
    elif args.store_dir is not None:
        from repro.datasets.store import DatasetStore

        store = DatasetStore(args.store_dir)

    fleet = None
    status_server = None
    if executor == "remote":
        from repro.distributed.coordinator import Coordinator
        from repro.distributed.protocol import parse_address
        from repro.experiments.scheduler import _resolve_jobs

        bind = ("127.0.0.1", 0) if args.bind is None else parse_address(args.bind)
        check_bind_safety(parser, bind[0], auth=auth_key, insecure=args.insecure)
        fleet = Coordinator(bind=bind, auth_key=auth_key, **fleet_knobs)
        if args.bind is not None:
            host, port = fleet.address
            # A wildcard bind address is not connectable from other hosts;
            # tell workers to use this machine's name instead.
            connect_host = host
            if host in ("0.0.0.0", "::"):
                import socket as _socket

                connect_host = _socket.gethostname()
            print(f"fleet coordinator listening on {host}:{port} "
                  f"(connect workers with: python -m repro.experiments "
                  f"fleet-worker --connect {connect_host}:{port})")
        if args.status_port is not None:
            status_server = fleet.serve_status(("127.0.0.1", args.status_port),
                                               auth=auth_key)
            print(f"fleet status at {status_server.url} "
                  f"(/metrics and /healthz, read-only)")
        n_local = args.workers
        if n_local is None:
            n_local = 0 if args.bind is not None else _resolve_jobs(args.jobs)
        if n_local:
            # Workers open the parent store through its shareable locator
            # (file:// directory, http:// object store); a non-shareable
            # store (memory://) leaves them store-less — they bootstrap
            # from the coordinator's blobs instead.
            fleet.spawn_local_workers(
                n_local, store_url=None if store is None else store.locator,
                auth_key_file=args.auth_key_file)

    pool = None
    if executor == "process":
        from repro.experiments.scheduler import _resolve_jobs

        n_workers = _resolve_jobs(args.jobs)
        if n_workers > 1:
            # One warm pool for the whole sequence: workers spawn once and
            # keep their per-plan memos across experiments.
            from repro.experiments.pool import WorkerPool

            pool = WorkerPool(n_workers)

    from contextlib import nullcontext

    collect = TRACER.collect() if args.trace is not None else nullcontext([])
    try:
        with collect as trace_spans:
            for name in args.names:
                if args.publish_models:
                    from repro.experiments.plan import experiment_plan

                    publish = experiment_plan(name, settings) is not None
                else:
                    publish = False
                result = run_experiment(name, settings=settings, executor=executor,
                                        jobs=args.jobs, store=store, fleet=fleet,
                                        pool=pool, batch_cells=batch_cells,
                                        publish_models=publish)
                print(format_result(result))
                if publish:
                    outcome = result.extra.get("published_models", {})
                    for series, key in sorted(outcome.get("published", {}).items()):
                        print(f"published model: {series} -> {key}")
                    for series, reason in sorted(outcome.get("skipped", {}).items()):
                        print(f"not servable:    {series} ({reason})")
                print()
    finally:
        if status_server is not None:
            status_server.stop()
        if fleet is not None:
            fleet.close()
        if pool is not None:
            pool.close()

    if args.trace is not None:
        from repro.experiments.reporting import format_trace_summary, summarize_trace

        write_trace(args.trace, trace_spans)
        print(f"trace written to {args.trace}")
        print(format_trace_summary(summarize_trace(trace_spans)))

    if args.store_prune:
        from repro.experiments.plan import experiment_plan

        # Datasets/caches are keyed by dataset fingerprint, published
        # models by plan fingerprint: keep both, or pruning right after
        # --publish-models would delete the just-published models.
        keep = set()
        for name in args.names:
            plan = experiment_plan(name, settings)
            if plan is not None:
                keep.add(plan.dataset.fingerprint)
                keep.add(plan.fingerprint)
        removed = store.prune(keep)
        print(f"store prune: kept {len(keep)} fingerprint(s), "
              f"removed {len(removed)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
