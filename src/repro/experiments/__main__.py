"""Command-line entry point: ``python -m repro.experiments [names...]``.

Options
-------
``--quick``    use the cheap settings (small ensembles, subsampled datasets)
``--full``     use the high-fidelity settings
``names``      experiment names (default: all; see ``EXPERIMENTS``)
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.reporting import format_result
from repro.experiments.runner import EXPERIMENTS, ExperimentSettings, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the figures of 'Learning with Analytical Models'",
    )
    parser.add_argument("names", nargs="*", default=list(EXPERIMENTS),
                        help=f"experiments to run (default: all). Available: {', '.join(EXPERIMENTS)}")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true", help="cheap smoke-test settings")
    group.add_argument("--full", action="store_true", help="high-fidelity settings")
    args = parser.parse_args(argv)

    if args.quick:
        settings = ExperimentSettings.quick()
    elif args.full:
        settings = ExperimentSettings.full()
    else:
        settings = ExperimentSettings()

    for name in args.names:
        result = run_experiment(name, settings=settings)
        print(format_result(result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
