"""Command-line entry point: ``python -m repro.experiments [names...]``.

Options
-------
``--quick``      use the cheap settings (small ensembles, subsampled datasets)
``--full``       use the high-fidelity settings
``--executor``   how to dispatch learning-curve cells: ``serial``, ``thread``
                 or ``process`` — results are bit-identical; defaults to
                 ``process`` when ``--jobs`` > 1 and ``serial`` otherwise
``--jobs``       worker count for the thread/process executors (``-1`` = CPUs)
``--store-dir``  persistent dataset/cache store directory: datasets are
                 simulated and analytical caches warmed at most once, then
                 reloaded by later invocations and worker processes
``names``        experiment names (default: all; see ``EXPERIMENTS``)
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.reporting import format_result
from repro.experiments.runner import EXPERIMENTS, ExperimentSettings, run_experiment
from repro.experiments.scheduler import EXECUTORS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the figures of 'Learning with Analytical Models'",
    )
    parser.add_argument("names", nargs="*", default=list(EXPERIMENTS),
                        help=f"experiments to run (default: all). Available: {', '.join(EXPERIMENTS)}")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true", help="cheap smoke-test settings")
    group.add_argument("--full", action="store_true", help="high-fidelity settings")
    parser.add_argument("--executor", choices=EXECUTORS, default=None,
                        help="cell executor (results are bit-identical across "
                             "executors; default: process when --jobs > 1, else serial)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="workers for the thread/process executors (-1 = CPU count)")
    parser.add_argument("--store-dir", default=None, metavar="DIR",
                        help="persistent dataset/analytical-cache store directory")
    args = parser.parse_args(argv)

    if args.quick:
        settings = ExperimentSettings.quick()
    elif args.full:
        settings = ExperimentSettings.full()
    else:
        settings = ExperimentSettings()

    executor = args.executor
    if executor is None:
        executor = "serial" if args.jobs == 1 else "process"

    store = None
    if args.store_dir is not None:
        from repro.datasets.store import DatasetStore

        store = DatasetStore(args.store_dir)

    for name in args.names:
        result = run_experiment(name, settings=settings, executor=executor,
                                jobs=args.jobs, store=store)
        print(format_result(result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
