"""Experiment settings, results container and the top-level runner.

``run_experiment`` / ``run_all`` are built on the plan/scheduler
architecture: experiments that expand into independent ``(series,
fraction, repeat)`` cells (see :mod:`repro.experiments.plan`) are
dispatched through a pluggable executor (``serial`` / ``thread`` /
``process``, see :mod:`repro.experiments.scheduler`) with results
bit-identical across executors; the two irregular experiments
(``analytical_accuracy``, ``ablation_sampling_strategy``) fall back to
their plain functions.  A persistent
:class:`~repro.datasets.store.DatasetStore` can be shared across the run
so datasets are simulated and analytical caches warmed at most once per
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import LearningCurve

__all__ = ["ExperimentSettings", "ExperimentResult", "run_experiment", "run_all", "EXPERIMENTS"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Quality/cost knobs shared by all experiments.

    Parameters
    ----------
    n_estimators:
        Trees per ensemble (the paper uses scikit-learn defaults; smaller
        values keep the full reproduction suite fast without changing the
        qualitative outcome).
    n_repeats:
        Independent uniform samplings per training fraction (the spread of
        the paper's box plots).
    max_configs:
        Optional cap on dataset size (uniform subsample); ``None`` uses the
        full configuration space of the figure.
    random_state:
        Master seed.
    """

    n_estimators: int = 20
    n_repeats: int = 3
    max_configs: int | None = None
    random_state: int = 0

    @classmethod
    def quick(cls) -> ExperimentSettings:
        """Cheap settings for tests and smoke runs."""
        return cls(n_estimators=8, n_repeats=2, max_configs=400, random_state=0)

    @classmethod
    def full(cls) -> ExperimentSettings:
        """Higher-fidelity settings (closer to scikit-learn defaults)."""
        return cls(n_estimators=60, n_repeats=5, max_configs=None, random_state=0)


@dataclass
class ExperimentResult:
    """Outcome of one experiment: the series the corresponding figure plots."""

    experiment_id: str
    description: str
    dataset_name: str
    curves: dict[str, LearningCurve] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def rows(self) -> list[dict]:
        """Flat rows (series, fraction, MAPE statistics) across all curves."""
        rows: list[dict] = []
        for curve in self.curves.values():
            rows.extend(curve.as_rows())
        return rows

    def best_mape(self, series: str) -> float:
        """Lowest mean MAPE achieved by a series across its fractions."""
        return float(np.min(self.curves[series].means))

    def summary(self) -> str:
        """Formatted text table of the result (delegates to reporting)."""
        from repro.experiments.reporting import format_result

        return format_result(self)


def _resolve_store(store):
    """Accept a DatasetStore, a directory path, or None."""
    if store is None:
        return None
    from repro.datasets.store import DatasetStore

    if isinstance(store, DatasetStore):
        return store
    return DatasetStore(store)


#: Names of all available experiments (figures first, then ablations).
#: A literal — not derived from :func:`_experiment_registry` — so importing
#: this module never pulls in the figure/ablation modules (they import the
#: plan/scheduler stack, which imports this module: the registry must stay
#: lazy for the package to be importable in any submodule order).
EXPERIMENTS = (
    "figure3_stencil",
    "figure3_fmm",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "analytical_accuracy",
    "ablation_aggregation",
    "ablation_analytical_quality",
    "ablation_sampling_strategy",
    "ablation_ml_backend",
    "ablation_tree_method",
)


def _experiment_registry() -> dict:
    from repro.experiments import ablations, figures

    registry = {
        "figure3_stencil": figures.figure3_stencil,
        "figure3_fmm": figures.figure3_fmm,
        "figure5": figures.figure5,
        "figure6": figures.figure6,
        "figure7": figures.figure7,
        "figure8": figures.figure8,
        "analytical_accuracy": figures.analytical_accuracy,
        "ablation_aggregation": ablations.ablation_aggregation,
        "ablation_analytical_quality": ablations.ablation_analytical_quality,
        "ablation_sampling_strategy": ablations.ablation_sampling_strategy,
        "ablation_ml_backend": ablations.ablation_ml_backend,
        "ablation_tree_method": ablations.ablation_tree_method,
    }
    assert tuple(registry) == EXPERIMENTS
    return registry


def run_experiment(name: str, settings: ExperimentSettings | None = None, *,
                   executor: str = "serial", jobs: int = 1,
                   store=None, fleet=None, pool=None,
                   batch_cells=None, publish_models: bool = False) -> ExperimentResult:
    """Run one experiment by name.

    Parameters
    ----------
    name:
        One of :data:`EXPERIMENTS`.
    settings:
        Quality/cost knobs (default :class:`ExperimentSettings()`).
    executor:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"remote"`` — how
        the experiment's ``(series, fraction, repeat)`` cells are
        dispatched.  Results are bit-identical across executors.
    jobs:
        Worker count for the thread/process executors (``-1`` = CPU
        count) or the size of the spawned local fleet for ``"remote"``.
    store:
        Optional persistent dataset/cache store — a
        :class:`~repro.datasets.store.DatasetStore` or a directory path.
    fleet:
        Remote executor only: an existing
        :class:`~repro.distributed.coordinator.Coordinator` serving a
        worker fleet (``None`` spawns a localhost fleet per plan).
    pool:
        Process executor only: an existing warm
        :class:`~repro.experiments.pool.WorkerPool` (``None`` spawns a
        pool per plan; see :func:`run_all`, which shares one across the
        whole sequence).
    batch_cells:
        Cell-fusion target (``"auto"`` or an int) for the process
        executor / spawned remote fleet; batch shape never affects
        results.
    publish_models:
        After the run, fit one canonical model per servable series on
        the full dataset and publish it into the *store* for the
        serving tier (see :mod:`repro.serving`); requires a store.

    The two plan-less experiments (``analytical_accuracy``,
    ``ablation_sampling_strategy``) always run serially in-process and
    build their datasets directly (the store is not consulted); executor,
    jobs and batch_cells are still validated so invalid values fail
    uniformly.  They have no plan fingerprint, hence nothing to publish:
    requesting ``publish_models`` for them is an error.
    """
    registry = _experiment_registry()
    try:
        func = registry[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(registry)}") from None
    from repro.experiments.pool import resolve_batch_cells
    from repro.experiments.scheduler import EXECUTORS, _resolve_jobs

    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    _resolve_jobs(jobs)
    batch_cells = resolve_batch_cells(batch_cells)
    settings = settings or ExperimentSettings()
    from repro.experiments.plan import experiment_plan
    from repro.obs.tracing import TRACER

    # Under an active trace collection the whole experiment runs inside
    # one span; the scheduler's plan span nests under it.  A no-op (one
    # attribute check) when tracing is off.
    with TRACER.span("experiment", attrs={"experiment": name,
                                          "executor": executor}):
        plan = experiment_plan(name, settings)
        if plan is None:
            if publish_models:
                raise ValueError(
                    f"experiment {name!r} has no plan, so it has no servable "
                    "models to publish")
            return func(settings=settings)
        from repro.experiments.scheduler import run_plan

        return run_plan(plan, executor=executor, jobs=jobs,
                        store=_resolve_store(store), fleet=fleet, pool=pool,
                        batch_cells=batch_cells, publish_models=publish_models)


def run_all(settings: ExperimentSettings | None = None,
            names: tuple[str, ...] | None = None, *,
            executor: str = "serial", jobs: int = 1,
            store=None, fleet=None, pool=None,
            batch_cells=None, publish_models: bool = False) -> dict[str, ExperimentResult]:
    """Run several (default: all) experiments and return their results by name.

    The optional *store* is shared across all experiments of the run, so
    e.g. the blocked-stencil dataset is generated once for figure 3, 6
    and the ablations instead of once each.  A *fleet* coordinator is
    likewise shared: its workers stay connected (and keep their per-plan
    memos) across the whole sequence.  The process executor gets the
    same treatment automatically: unless an external *pool* is passed,
    one warm :class:`~repro.experiments.pool.WorkerPool` is created for
    the whole sequence, so workers are spawned once and keep their
    per-plan memos across experiments instead of being respawned per
    plan.

    With ``publish_models``, every plan-backed experiment additionally
    publishes its serving-tier models into the shared *store*; the two
    plan-less experiments are silently left unpublished (they have no
    plan fingerprint to key a model under).
    """
    from repro.experiments.plan import experiment_plan

    store = _resolve_store(store)
    if publish_models and store is None:
        raise ValueError("publish_models requires a store to publish into")
    own_pool = False
    if pool is None and executor == "process":
        from repro.experiments.scheduler import _resolve_jobs

        n_workers = _resolve_jobs(jobs)
        if n_workers > 1:
            from repro.experiments.pool import WorkerPool

            pool = WorkerPool(n_workers)
            own_pool = True
    results: dict[str, ExperimentResult] = {}
    try:
        for name in (names or EXPERIMENTS):
            publish = publish_models and experiment_plan(name, settings) is not None
            results[name] = run_experiment(name, settings=settings,
                                           executor=executor, jobs=jobs,
                                           store=store, fleet=fleet, pool=pool,
                                           batch_cells=batch_cells,
                                           publish_models=publish)
    finally:
        if own_pool:
            pool.close()
    return results
