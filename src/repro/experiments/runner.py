"""Experiment settings, results container and the top-level runner."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import LearningCurve

__all__ = ["ExperimentSettings", "ExperimentResult", "run_experiment", "run_all", "EXPERIMENTS"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Quality/cost knobs shared by all experiments.

    Parameters
    ----------
    n_estimators:
        Trees per ensemble (the paper uses scikit-learn defaults; smaller
        values keep the full reproduction suite fast without changing the
        qualitative outcome).
    n_repeats:
        Independent uniform samplings per training fraction (the spread of
        the paper's box plots).
    max_configs:
        Optional cap on dataset size (uniform subsample); ``None`` uses the
        full configuration space of the figure.
    random_state:
        Master seed.
    """

    n_estimators: int = 20
    n_repeats: int = 3
    max_configs: int | None = None
    random_state: int = 0

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Cheap settings for tests and smoke runs."""
        return cls(n_estimators=8, n_repeats=2, max_configs=400, random_state=0)

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """Higher-fidelity settings (closer to scikit-learn defaults)."""
        return cls(n_estimators=60, n_repeats=5, max_configs=None, random_state=0)


@dataclass
class ExperimentResult:
    """Outcome of one experiment: the series the corresponding figure plots."""

    experiment_id: str
    description: str
    dataset_name: str
    curves: dict[str, LearningCurve] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def rows(self) -> list[dict]:
        """Flat rows (series, fraction, MAPE statistics) across all curves."""
        rows: list[dict] = []
        for curve in self.curves.values():
            rows.extend(curve.as_rows())
        return rows

    def best_mape(self, series: str) -> float:
        """Lowest mean MAPE achieved by a series across its fractions."""
        return float(np.min(self.curves[series].means))

    def summary(self) -> str:
        """Formatted text table of the result (delegates to reporting)."""
        from repro.experiments.reporting import format_result

        return format_result(self)


def _experiment_registry() -> dict:
    from repro.experiments import ablations, figures

    return {
        "figure3_stencil": figures.figure3_stencil,
        "figure3_fmm": figures.figure3_fmm,
        "figure5": figures.figure5,
        "figure6": figures.figure6,
        "figure7": figures.figure7,
        "figure8": figures.figure8,
        "analytical_accuracy": figures.analytical_accuracy,
        "ablation_aggregation": ablations.ablation_aggregation,
        "ablation_analytical_quality": ablations.ablation_analytical_quality,
        "ablation_sampling_strategy": ablations.ablation_sampling_strategy,
        "ablation_ml_backend": ablations.ablation_ml_backend,
    }


#: Names of all available experiments (figures first, then ablations).
EXPERIMENTS = tuple(_experiment_registry().keys())


def run_experiment(name: str, settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Run one experiment by name."""
    registry = _experiment_registry()
    try:
        func = registry[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(registry)}") from None
    return func(settings=settings or ExperimentSettings())


def run_all(settings: ExperimentSettings | None = None,
            names: tuple[str, ...] | None = None) -> dict[str, ExperimentResult]:
    """Run several (default: all) experiments and return their results by name."""
    results: dict[str, ExperimentResult] = {}
    for name in (names or EXPERIMENTS):
        results[name] = run_experiment(name, settings=settings)
    return results
