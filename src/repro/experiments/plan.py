"""Declarative experiment plans.

The paper's evaluation is a grid of independent ``(figure, series,
fraction, repeat)`` learning-curve cells.  This module describes each
experiment as data rather than code: an :class:`ExperimentPlan` names the
dataset (as a :class:`~repro.datasets.store.DatasetSpec` recipe), the
series (each a picklable :class:`FactorySpec` plus its training
fractions), the repeat count and the master seed.  Because every field is
a frozen dataclass of primitives, a plan — and the :class:`EvalCell`
tasks it expands into — can cross process boundaries, which is what lets
:mod:`repro.experiments.scheduler` dispatch cells to thread or process
pools while guaranteeing results bit-identical to the serial run.

Experiments that do not fit the learning-curve-grid shape
(``analytical_accuracy``, ``ablation_sampling_strategy``) have no plan;
:func:`experiment_plan` returns ``None`` and the runner falls back to
calling their function directly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.analytical import (
    AnalyticalPredictionCache,
    FmmAnalyticalModel,
    StencilAnalyticalModel,
    calibrate_scale,
)
from repro.analytical.base import AnalyticalModel
from repro.core.evaluation import EvalCell, plan_learning_curve
from repro.core.features import PerformanceDataset
from repro.core.hybrid import HybridPerformanceModel
from repro.datasets.store import DatasetSpec
from repro.experiments.runner import ExperimentSettings
from repro.ml import (
    BaggingRegressor,
    DecisionTreeRegressor,
    ExtraTreesRegressor,
    KNeighborsRegressor,
    Pipeline,
    RandomForestRegressor,
    StandardScaler,
)
from repro.ml.metrics import mean_absolute_percentage_error

__all__ = [
    "EstimatorSpec",
    "FactorySpec",
    "SeriesSpec",
    "ExperimentPlan",
    "experiment_plan",
    "expand_cells",
    "build_analytical",
    "build_factory",
    "compute_extras",
    "BlockingBlindStencilModel",
    "ConstantAnalyticalModel",
    "PLANNED_EXPERIMENTS",
]

#: Training fractions used in the paper's figures.
FIG3_STENCIL_FRACTIONS = (0.01, 0.02, 0.04, 0.06, 0.10)
FIG3_FMM_FRACTIONS = (0.10, 0.20, 0.40, 0.60, 0.80)
FIG5_ML_FRACTIONS = (0.10, 0.15, 0.20)
FIG5_HYBRID_FRACTIONS = (0.01, 0.02, 0.04)
FIG6_FRACTIONS = (0.01, 0.02, 0.04)
FIG7_FRACTIONS = (0.01, 0.02, 0.04)
FIG8_FRACTIONS = (0.15, 0.20, 0.25)
ABLATION_FRACTIONS = (0.01, 0.02, 0.04)


# --------------------------------------------------------------------------- #
# Degraded analytical models (ablation_analytical_quality)
# --------------------------------------------------------------------------- #
class BlockingBlindStencilModel(AnalyticalModel):
    """The stencil analytical model with the blocking information removed.

    Every configuration is predicted as if it were un-blocked, so the model
    keeps the grid-size dependence but loses the dimension that actually
    dominates the Figure 6 dataset — a *structurally* degraded analytical
    model (monotone transformations such as rescaling or powers would be
    absorbed by the hybrid's log feature + standardization and change
    nothing).
    """

    def __init__(self, base: AnalyticalModel) -> None:
        self.base = base

    def predict_config(self, config) -> float:
        from repro.stencil.config import StencilConfig

        stripped = StencilConfig(I=config.I, J=config.J, K=config.K,
                                 unroll=config.unroll, threads=config.threads)
        return self.base.predict_config(stripped)

    def config_from_features(self, row, feature_names):
        return self.base.config_from_features(row, feature_names)


class ConstantAnalyticalModel(AnalyticalModel):
    """An analytical model with no information at all (constant prediction).

    The hybrid built on it collapses to the pure ML model plus one useless
    feature — the lower bound of the analytical-quality sweep.
    """

    def __init__(self, base: AnalyticalModel, value: float = 1e-3) -> None:
        self.base = base
        self.value = value

    def predict_config(self, config) -> float:
        return self.value

    def config_from_features(self, row, feature_names):
        return self.base.config_from_features(row, feature_names)


#: Analytical-model registry: key -> zero-argument builder.  Keys double as
#: the ``model_key`` under which warmed caches are persisted by the store.
_ANALYTICAL_BUILDERS = {
    "stencil": StencilAnalyticalModel,
    "fmm": FmmAnalyticalModel,
    "stencil_blocking_blind": lambda: BlockingBlindStencilModel(StencilAnalyticalModel()),
    "stencil_constant": lambda: ConstantAnalyticalModel(StencilAnalyticalModel()),
}


def build_analytical(key: str) -> AnalyticalModel:
    """Instantiate the analytical model registered under *key*."""
    try:
        return _ANALYTICAL_BUILDERS[key]()
    except KeyError:
        raise KeyError(
            f"unknown analytical model {key!r}; available: {sorted(_ANALYTICAL_BUILDERS)}"
        ) from None


# --------------------------------------------------------------------------- #
# Picklable model-factory specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EstimatorSpec:
    """Recipe for one ML regressor (the per-seed randomness stays outside).

    ``n_estimators`` is ignored by estimators that have no ensemble size
    (decision tree, k-NN).  ``tree_method`` selects the split-search
    backend of tree-based estimators (``None`` defers to the process
    engine defaults, ``"exact"`` / ``"hist"`` force one — see
    :mod:`repro.ml.engine`); non-tree estimators ignore it.
    """

    name: str
    n_estimators: int = 0
    tree_method: str | None = None


@dataclass(frozen=True)
class FactorySpec:
    """Recipe for a per-seed model factory.

    ``kind`` selects the construction: ``"ml_pipeline"`` is the paper's
    standardize+regressor pipeline, ``"hybrid"`` couples the named
    analytical model with the estimator through
    :class:`~repro.core.hybrid.HybridPerformanceModel`.
    """

    kind: str
    estimator: EstimatorSpec
    analytical: str | None = None
    aggregate: bool = False


@dataclass(frozen=True)
class SeriesSpec:
    """One curve of an experiment: a label, a factory and its fractions."""

    label: str
    factory: FactorySpec
    fractions: tuple[float, ...]


@dataclass(frozen=True)
class ExperimentPlan:
    """Complete declarative description of one learning-curve experiment.

    ``analytical`` names the model whose prediction cache backs the
    experiment's ``extra`` statistics; ``extras`` lists the symbolic
    post-processing steps :func:`compute_extras` performs after the merge.
    """

    name: str
    experiment_id: str
    description: str
    dataset: DatasetSpec
    series: tuple[SeriesSpec, ...]
    n_repeats: int
    random_state: int
    min_train: int = 3
    analytical: str | None = None
    extras: tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Content hash identifying the plan (the fleet protocol's plan id).

        First 16 hex digits of the SHA-256 of the canonical JSON encoding
        of every field (the plan is a frozen dataclass of primitives, so
        :func:`dataclasses.asdict` is lossless).  Two equal plans — even
        built in different processes — share the id, which is what lets a
        fleet worker memoize per-plan state across coordinator runs and a
        coordinator recognize stale messages from a previous plan.
        """
        payload = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def cache_keys(self) -> tuple[str, ...]:
        """Distinct analytical-model keys the plan needs caches for."""
        keys: list[str] = []
        for spec in self.series:
            if spec.factory.analytical and spec.factory.analytical not in keys:
                keys.append(spec.factory.analytical)
        if self.analytical and self.analytical not in keys:
            keys.append(self.analytical)
        return tuple(keys)


def _build_estimator(spec: EstimatorSpec, seed: int):
    if spec.name == "decision_tree":
        return DecisionTreeRegressor(random_state=seed, tree_method=spec.tree_method)
    if spec.name == "extra_trees":
        return ExtraTreesRegressor(n_estimators=spec.n_estimators, random_state=seed,
                                   tree_method=spec.tree_method)
    if spec.name == "random_forest":
        return RandomForestRegressor(n_estimators=spec.n_estimators, random_state=seed,
                                     tree_method=spec.tree_method)
    if spec.name == "bagged_tree":
        return BaggingRegressor(estimator=DecisionTreeRegressor(tree_method=spec.tree_method),
                                n_estimators=spec.n_estimators, random_state=seed)
    if spec.name == "knn":
        return KNeighborsRegressor(n_neighbors=5, weights="distance")
    raise KeyError(f"unknown estimator {spec.name!r}")


def build_factory(spec: FactorySpec, dataset: PerformanceDataset,
                  cache: AnalyticalPredictionCache | None = None):
    """Resolve a :class:`FactorySpec` into a ``factory(seed) -> model`` callable.

    For hybrid factories the shared *cache* (bound to the spec's
    analytical model) is threaded into every instance, so each dataset
    row is evaluated by the analytical model at most once per process.
    """
    if spec.kind == "ml_pipeline":
        def factory(seed: int):
            return Pipeline(steps=[
                ("scale", StandardScaler()),
                ("model", _build_estimator(spec.estimator, seed)),
            ])

        return factory
    if spec.kind == "hybrid":
        if spec.analytical is None:
            raise ValueError("hybrid factories need an analytical model key")
        analytical = cache.model if cache is not None else build_analytical(spec.analytical)

        def factory(seed: int):
            return HybridPerformanceModel(
                analytical_model=analytical,
                feature_names=dataset.feature_names,
                ml_model=_build_estimator(spec.estimator, seed),
                aggregate_analytical=spec.aggregate,
                analytical_cache=cache,
                random_state=seed,
            )

        return factory
    raise KeyError(f"unknown factory kind {spec.kind!r}")


# --------------------------------------------------------------------------- #
# Plan expansion and post-processing
# --------------------------------------------------------------------------- #
def expand_cells(plan: ExperimentPlan) -> list[EvalCell]:
    """Expand a plan into its independent :class:`EvalCell` tasks.

    Each series spawns its seeds from its own stream (seeded with the
    plan's master seed), exactly as the serial per-curve evaluation did,
    so the expansion is executor-independent.  Every cell is stamped
    with a :attr:`~repro.core.evaluation.EvalCell.cost_hint` (per-row
    cost units from the scheduler's cost model) so cost-aware batch
    shapers — the process executor's LPT fusion, the fleet
    coordinator's adaptive leases — can balance work without
    re-deriving estimator metadata.  The hint is advisory and excluded
    from the plan fingerprint; results never depend on it.
    """
    # Imported lazily: the pool module is package-internal machinery and
    # importing it here at module level would re-enter the package
    # __init__ while this module is still initializing.
    from repro.experiments.pool import COST_MODEL

    cells: list[EvalCell] = []
    for spec in plan.series:
        cells.extend(
            dataclasses.replace(
                cell,
                cost_hint=COST_MODEL.factory_units(spec.factory, cell.fraction))
            for cell in plan_learning_curve(
                spec.fractions, plan.n_repeats,
                series=spec.label, factory_key=spec.label,
                min_train=plan.min_train, random_state=plan.random_state,
                dataset_fingerprint=plan.dataset.fingerprint,
            ))
    return cells


def compute_extras(plan: ExperimentPlan, dataset: PerformanceDataset,
                   caches: dict[str, AnalyticalPredictionCache]) -> dict:
    """Post-merge ``extra`` statistics (analytical MAPEs, calibration)."""
    extra: dict = {}
    for key in plan.extras:
        if key in ("analytical_mape", "analytical_only_mape"):
            cache = caches[plan.analytical]
            extra[key] = mean_absolute_percentage_error(
                dataset.y, cache.predict(dataset.X))
        elif key == "analytical_quality":
            base_preds = caches["stencil"].predict(dataset.X)
            # Calibrate on the cached predictions (identical values to a
            # fresh per-config evaluation, without re-running the model).
            scale = calibrate_scale(base_preds, dataset.y)
            blind_preds = caches["stencil_blocking_blind"].predict(dataset.X)
            extra.update({
                "untuned_am_mape": mean_absolute_percentage_error(
                    dataset.y, base_preds),
                "calibrated_am_mape": mean_absolute_percentage_error(
                    dataset.y, scale * base_preds),
                "calibration_scale": scale,
                "blocking_blind_am_mape": mean_absolute_percentage_error(
                    dataset.y, blind_preds),
            })
        else:
            raise KeyError(f"unknown extras step {key!r}")
    return extra


# --------------------------------------------------------------------------- #
# The plans themselves
# --------------------------------------------------------------------------- #
def _pipeline(estimator: str, settings: ExperimentSettings) -> FactorySpec:
    n = 0 if estimator == "decision_tree" else settings.n_estimators
    return FactorySpec(kind="ml_pipeline", estimator=EstimatorSpec(estimator, n))


def _hybrid(analytical: str, settings: ExperimentSettings, *,
            estimator: EstimatorSpec | None = None,
            aggregate: bool = False) -> FactorySpec:
    est = estimator or EstimatorSpec("extra_trees", settings.n_estimators)
    return FactorySpec(kind="hybrid", estimator=est, analytical=analytical,
                       aggregate=aggregate)


def experiment_plan(name: str,
                    settings: ExperimentSettings | None = None) -> ExperimentPlan | None:
    """The :class:`ExperimentPlan` for *name*, or ``None`` for opaque experiments."""
    s = settings or ExperimentSettings()

    def _spec(dataset_name: str) -> DatasetSpec:
        return DatasetSpec(dataset_name, max_configs=s.max_configs, random_state=0)

    def _plan(experiment_id: str, description: str, dataset_name: str,
              series: tuple[SeriesSpec, ...], analytical: str | None = None,
              extras: tuple[str, ...] = ()) -> ExperimentPlan:
        return ExperimentPlan(
            name=name, experiment_id=experiment_id, description=description,
            dataset=_spec(dataset_name), series=series,
            n_repeats=s.n_repeats, random_state=s.random_state,
            analytical=analytical, extras=extras,
        )

    if name == "figure3_stencil":
        return _plan(
            "figure3A",
            "ML model comparison on the stencil (grid sizes + blocking) dataset",
            "stencil-blocked",
            tuple(SeriesSpec(label, _pipeline(label, s), FIG3_STENCIL_FRACTIONS)
                  for label in ("decision_tree", "extra_trees", "random_forest")),
        )
    if name == "figure3_fmm":
        return _plan(
            "figure3B",
            "ML model comparison on the FMM (t, N, q, k) dataset",
            "fmm",
            tuple(SeriesSpec(label, _pipeline(label, s), FIG3_FMM_FRACTIONS)
                  for label in ("decision_tree", "extra_trees", "random_forest")),
        )
    if name == "figure5":
        return _plan(
            "figure5",
            "Hybrid (1-4% training) vs extra trees (10-20%) on grid-size-only stencil",
            "stencil-grid-only",
            (SeriesSpec("extra_trees", _pipeline("extra_trees", s), FIG5_ML_FRACTIONS),
             SeriesSpec("hybrid", _hybrid("stencil", s), FIG5_HYBRID_FRACTIONS)),
            analytical="stencil", extras=("analytical_mape",),
        )
    if name == "figure6":
        return _plan(
            "figure6",
            "Hybrid vs extra trees at 1-4% training on the blocked stencil dataset",
            "stencil-blocked",
            (SeriesSpec("extra_trees", _pipeline("extra_trees", s), FIG6_FRACTIONS),
             SeriesSpec("hybrid", _hybrid("stencil", s), FIG6_FRACTIONS)),
            analytical="stencil", extras=("analytical_mape",),
        )
    if name == "figure7":
        return _plan(
            "figure7",
            "Hybrid (serial AM) vs extra trees on the multithreaded stencil dataset",
            "stencil-threaded",
            (SeriesSpec("extra_trees", _pipeline("extra_trees", s), FIG7_FRACTIONS),
             SeriesSpec("hybrid", _hybrid("stencil", s), FIG7_FRACTIONS)),
            analytical="stencil", extras=("analytical_mape",),
        )
    if name == "figure8":
        return _plan(
            "figure8",
            "Hybrid vs extra trees at 15-25% training on the FMM dataset",
            "fmm",
            (SeriesSpec("extra_trees", _pipeline("extra_trees", s), FIG8_FRACTIONS),
             SeriesSpec("hybrid", _hybrid("fmm", s), FIG8_FRACTIONS)),
            analytical="fmm", extras=("analytical_mape",),
        )
    if name == "ablation_aggregation":
        return _plan(
            "ablation_aggregation",
            "Effect of the optional analytical/stacked aggregation stage",
            "stencil-blocked",
            (SeriesSpec("hybrid_stacked_only",
                        _hybrid("stencil", s, aggregate=False), ABLATION_FRACTIONS),
             SeriesSpec("hybrid_aggregated",
                        _hybrid("stencil", s, aggregate=True), ABLATION_FRACTIONS)),
            analytical="stencil", extras=("analytical_only_mape",),
        )
    if name == "ablation_analytical_quality":
        return _plan(
            "ablation_analytical_quality",
            "Hybrid accuracy with full, blocking-blind and uninformative analytical models",
            "stencil-blocked",
            (SeriesSpec("hybrid_full_am", _hybrid("stencil", s), ABLATION_FRACTIONS),
             SeriesSpec("hybrid_blocking_blind_am",
                        _hybrid("stencil_blocking_blind", s), ABLATION_FRACTIONS),
             SeriesSpec("hybrid_constant_am",
                        _hybrid("stencil_constant", s), ABLATION_FRACTIONS)),
            analytical="stencil", extras=("analytical_quality",),
        )
    if name == "ablation_tree_method":
        def _et(method: str | None) -> EstimatorSpec:
            return EstimatorSpec("extra_trees", s.n_estimators, tree_method=method)

        return _plan(
            "ablation_tree_method",
            "Exact vs histogram-binned split search for the ML and hybrid models",
            "stencil-blocked",
            (SeriesSpec("extra_trees_exact",
                        FactorySpec(kind="ml_pipeline", estimator=_et("exact")),
                        ABLATION_FRACTIONS),
             SeriesSpec("extra_trees_hist",
                        FactorySpec(kind="ml_pipeline", estimator=_et("hist")),
                        ABLATION_FRACTIONS),
             SeriesSpec("hybrid_exact",
                        _hybrid("stencil", s, estimator=_et("exact")),
                        ABLATION_FRACTIONS),
             SeriesSpec("hybrid_hist",
                        _hybrid("stencil", s, estimator=_et("hist")),
                        ABLATION_FRACTIONS)),
            analytical="stencil",
        )
    if name == "ablation_ml_backend":
        return _plan(
            "ablation_ml_backend",
            "Hybrid model with different stacked ML learners",
            "stencil-blocked",
            (SeriesSpec("hybrid_extra_trees",
                        _hybrid("stencil", s,
                                estimator=EstimatorSpec("extra_trees", s.n_estimators)),
                        ABLATION_FRACTIONS),
             SeriesSpec("hybrid_random_forest",
                        _hybrid("stencil", s,
                                estimator=EstimatorSpec("random_forest", s.n_estimators)),
                        ABLATION_FRACTIONS),
             SeriesSpec("hybrid_bagged_tree",
                        _hybrid("stencil", s,
                                estimator=EstimatorSpec("bagged_tree",
                                                        max(5, s.n_estimators // 2))),
                        ABLATION_FRACTIONS),
             SeriesSpec("hybrid_knn",
                        _hybrid("stencil", s, estimator=EstimatorSpec("knn")),
                        ABLATION_FRACTIONS)),
            analytical="stencil",
        )
    return None


#: Experiment names that expand into cell plans (the rest run opaquely).
PLANNED_EXPERIMENTS = (
    "figure3_stencil", "figure3_fmm", "figure5", "figure6", "figure7",
    "figure8", "ablation_aggregation", "ablation_analytical_quality",
    "ablation_ml_backend", "ablation_tree_method",
)
