"""Persistent warm worker pool, cost-aware batch shaping and zero-copy transport.

The process executor's historical constant factors — worker spawn per
plan, per-batch dataset pickling, per-process plan-state rebuild — are
attacked here structurally, in three coordinated layers:

* :class:`WorkerPool` is a process pool that **outlives a single plan**:
  ``run_all`` and the CLI create one pool for a whole experiment
  sequence, so workers are spawned once and keep their per-plan memos
  (see ``_WORKER_STATE`` in :mod:`repro.experiments.scheduler`) across
  plans.  The pool counts distinct worker PIDs (:attr:`WorkerPool.
  spawn_count`) so tests and CI can assert that a second invocation
  *reused* workers instead of respawning, and accumulates a phase
  breakdown (spawn / dispatch / compute / merge) in :attr:`WorkerPool.
  stats` so benchmark history can say which constant factor moved.

* :class:`CostModel` estimates a cell's cost from ``fraction x n_rows x
  estimator-family weight`` and calibrates the per-family
  seconds-per-unit scale from observed batch durations.
  :func:`shape_batches` uses those estimates in a greedy LPT
  (longest-processing-time-first) shaper that replaces the blind
  contiguous split: expensive cells are isolated early, cheap cells are
  fused into large batches, so every batch carries comparable work and
  stragglers shrink.  The same estimates make the distributed
  coordinator's lease size adaptive (``batch_size="auto"``).

* :class:`SharedDataset` ships :class:`~repro.core.features.
  PerformanceDataset` arrays to workers through
  :mod:`multiprocessing.shared_memory`: the parent copies ``X``/``y``
  into one named segment, workers attach and build zero-copy read-only
  views, and only a tiny :class:`SharedDatasetRef` crosses the pickle
  boundary per batch.  When shared memory is unavailable the scheduler
  degrades to shipping the dataset object itself (pickled in-band with
  protocol 5 by the pool machinery) or, with a shareable store locator,
  to the store bootstrap path — both existing routes stay intact as the
  cold-start fallbacks.

Batch shape never affects results: cells are pure, seeds are derived at
planning time and the merge is keyed, so any permutation or fusion of a
plan's cells produces bit-identical rows (property-tested in
``tests/test_pool.py``).
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.features import PerformanceDataset
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.parallel.threadpool import weighted_chunk_indices

__all__ = [
    "CostModel",
    "COST_MODEL",
    "SharedDataset",
    "SharedDatasetRef",
    "WorkerPool",
    "resolve_batch_cells",
    "shape_batches",
]

#: ``"auto"`` fusion: batches per pool worker.  Mild oversubscription lets
#: the pool queue absorb cost-estimate error dynamically without paying a
#: dispatch round-trip per cell.
AUTO_BATCHES_PER_WORKER = 2

#: Hard cap on cells per lease/batch under ``"auto"`` shaping, bounding
#: both the requeue cost of a dead fleet worker and estimate error.
AUTO_LEASE_MAX_CELLS = 16


def resolve_batch_cells(value: int | str | None) -> int | str | None:
    """Validate a ``batch_cells`` knob: ``None``, ``"auto"`` or an int >= 1.

    The shared validator behind ``run_plan(batch_cells=...)``, the
    ``--batch-cells`` CLI flag and ``Coordinator(batch_size=...)``;
    numeric strings (CLI input) are converted.
    """
    if value is None or value == "auto":
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ValueError(f"batch_cells must be 'auto' or an integer >= 1, got {value!r}")
    if isinstance(value, str):
        if not value.isdigit():
            raise ValueError(
                f"batch_cells must be 'auto' or an integer >= 1, got {value!r}")
        value = int(value)
    if not isinstance(value, int):
        raise ValueError(f"batch_cells must be 'auto' or an integer >= 1, got {value!r}")
    if value < 1:
        raise ValueError(f"batch_cells must be 'auto' or an integer >= 1, got {value}")
    return value


# --------------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------------- #
#: Relative per-tree (or per-fit) weight of each estimator family.  Rough
#: priors — :meth:`CostModel.observe` calibrates the absolute scale per
#: family from measured batch durations, so only the ballpark matters.
_FAMILY_WEIGHTS = {
    "decision_tree": 1.0,
    "extra_trees": 0.7,       # random thresholds: no split search
    "random_forest": 1.6,     # exhaustive split search per node
    "bagged_tree": 1.2,
    "knn": 0.05,              # fit is a memcpy; predict dominates
}
_DEFAULT_WEIGHT = 1.0
#: The hybrid wrapper adds one stacked feature + cached analytical calls.
_HYBRID_FACTOR = 1.15
#: Uncalibrated seconds-per-unit: any common scale works for *shaping*
#: (only ratios matter); calibration makes estimates absolute.
_DEFAULT_SECONDS_PER_UNIT = 1e-5


class CostModel:
    """Per-cell cost estimates, calibrated from observed cell durations.

    A cell's *units* are ``family_weight x max(1, n_estimators) x
    fraction x n_rows`` — proportional to the training work of the
    fitted ensemble (trees x training rows).  :meth:`observe` folds
    measured ``(units, seconds)`` samples into a per-family
    seconds-per-unit EWMA, so later plans (and the fleet coordinator's
    adaptive leases) see estimates in real seconds.

    The model is a process-wide singleton (:data:`COST_MODEL`): every
    executor contributes observations and every shaper benefits.
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.smoothing = smoothing
        self._seconds_per_unit: dict[str, float] = {}
        self.observations = 0

    @staticmethod
    def family(factory) -> str:
        """The calibration family of a :class:`FactorySpec` (estimator name)."""
        return factory.estimator.name

    def factory_units(self, factory, fraction: float, n_rows: float = 1.0) -> float:
        """Estimated cost units of one ``(factory, fraction)`` fit.

        With the default ``n_rows=1`` the result is a *per-row* unit —
        the right scale for :attr:`EvalCell.cost_hint`, where only
        ratios within one plan matter (the dataset size is a common
        factor across a plan's cells).
        """
        est = factory.estimator
        weight = _FAMILY_WEIGHTS.get(est.name, _DEFAULT_WEIGHT)
        units = weight * max(1, est.n_estimators) * fraction * n_rows
        if factory.kind == "hybrid":
            units *= _HYBRID_FACTOR
        return units

    def seconds_per_unit(self, family: str) -> float:
        """Calibrated (or default) seconds-per-unit scale of *family*."""
        return self._seconds_per_unit.get(family, _DEFAULT_SECONDS_PER_UNIT)

    def estimate_seconds(self, family: str, units: float) -> float:
        """Predicted wall-clock seconds for *units* of *family* work."""
        return units * self.seconds_per_unit(family)

    def plan_costs(self, plan, cells, n_rows: int) -> dict[tuple, float]:
        """``cell.key -> estimated seconds`` for every cell of *plan*.

        Estimates are comparable across series (the per-family
        calibration shares the scale), which is what lets the LPT shaper
        and the coordinator's adaptive leases mix families in one batch
        budget.
        """
        factories = {spec.label: spec.factory for spec in plan.series}
        costs: dict[tuple, float] = {}
        for cell in cells:
            factory = factories[cell.factory_key]
            # The 1-unit floor keeps degenerate cells (tiny fractions)
            # from looking free: every cell pays fixed split/predict
            # overhead regardless of training size.
            units = max(self.factory_units(factory, cell.fraction, n_rows), 1.0)
            costs[cell.key] = self.estimate_seconds(self.family(factory), units)
        return costs

    def plan_units(self, plan, cells, n_rows: int) -> dict[tuple, tuple[str, float]]:
        """``cell.key -> (family, units)`` — the raw inputs behind :meth:`plan_costs`."""
        factories = {spec.label: spec.factory for spec in plan.series}
        return {
            cell.key: (
                self.family(factories[cell.factory_key]),
                max(self.factory_units(factories[cell.factory_key],
                                       cell.fraction, n_rows), 1.0),
            )
            for cell in cells
        }

    def observe(self, units_by_family: dict[str, float], seconds: float) -> None:
        """Fold one measured batch into the per-family calibration.

        The batch's wall clock is attributed to its families
        proportionally to their *predicted* share, then each family's
        seconds-per-unit is blended toward the implied scale (EWMA).
        Non-positive observations are ignored (clock glitches).
        """
        total_units = sum(units_by_family.values())
        if seconds <= 0.0 or total_units <= 0.0:
            return
        predicted = sum(self.estimate_seconds(family, units)
                        for family, units in units_by_family.items())
        if predicted <= 0.0:
            return
        scale = seconds / predicted
        for family, units in units_by_family.items():
            if units <= 0.0:
                continue
            implied = self.seconds_per_unit(family) * scale
            old = self._seconds_per_unit.get(family)
            if old is None:
                self._seconds_per_unit[family] = implied
            else:
                alpha = self.smoothing
                self._seconds_per_unit[family] = (1 - alpha) * old + alpha * implied
        self.observations += 1


#: Process-wide cost model shared by the process executor and the fleet
#: coordinator, so calibration from one plan benefits the next.
COST_MODEL = CostModel()


def shape_batches(cells: list, costs: dict[tuple, float],
                  n_batches: int) -> list[list]:
    """Partition *cells* into at most *n_batches* cost-balanced batches.

    A thin adapter over :func:`~repro.parallel.threadpool.
    weighted_chunk_indices` (greedy LPT): expensive cells are isolated
    early, cheap cells are fused, and each batch keeps its cells in plan
    order.  Cells whose key is missing from *costs* count as free.

    Batch shape is a pure throughput knob: any partition of a plan's
    cells merges to bit-identical rows (property-tested).
    """
    weights = [costs.get(cell.key, 0.0) for cell in cells]
    return [[cells[i] for i in chunk]
            for chunk in weighted_chunk_indices(weights, n_batches)]


# --------------------------------------------------------------------------- #
# Zero-copy dataset transport
# --------------------------------------------------------------------------- #
def _dataset_digest(dataset: PerformanceDataset) -> str:
    return hashlib.sha256(dataset.X.tobytes() + dataset.y.tobytes()).hexdigest()


@dataclass(frozen=True)
class SharedDatasetRef:
    """Picklable handle to a :class:`SharedDataset` segment.

    A few hundred bytes cross the process boundary per batch instead of
    the full arrays.  ``canonical`` records whether the content is the
    plan's store-registered dataset (workers may then trust store-loaded
    caches for its fingerprint) or an explicit override (stores must be
    bypassed, exactly like the shipped-object path).
    """

    shm_name: str
    dataset_name: str
    feature_names: tuple[str, ...]
    x_shape: tuple[int, int]
    x_dtype: str
    y_dtype: str
    digest: str
    canonical: bool = True

    def materialize(self) -> PerformanceDataset:
        """Attach to the segment and build a zero-copy, read-only dataset.

        The attached segment is kept alive (and leak-tracker-unregistered)
        in a per-process registry; the parent owns the segment's lifetime
        and unlinks it when the pool closes.
        """
        from multiprocessing import shared_memory

        shm = _ATTACHED_SEGMENTS.get(self.shm_name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=self.shm_name)
            # Attaching registers the segment with the resource tracker on
            # Python < 3.13, which would unlink it when this *worker*
            # exits even though the parent still owns it.  Unregister
            # defensively; the parent's registration does the cleanup.
            try:  # pragma: no cover - interpreter-version dependent
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
            _ATTACHED_SEGMENTS[self.shm_name] = shm
        x_size = int(np.prod(self.x_shape)) * np.dtype(self.x_dtype).itemsize
        X = np.ndarray(self.x_shape, dtype=self.x_dtype, buffer=shm.buf)
        y = np.ndarray((self.x_shape[0],), dtype=self.y_dtype,
                       buffer=shm.buf, offset=x_size)
        X.flags.writeable = False
        y.flags.writeable = False
        return PerformanceDataset(name=self.dataset_name, X=X, y=y,
                                  feature_names=list(self.feature_names))


#: Worker-side registry of attached segments: keeps the mapped memory
#: alive for as long as memo'd datasets reference it.
_ATTACHED_SEGMENTS: dict = {}


class SharedDataset:
    """Parent-side owner of one dataset's shared-memory segment.

    ``X`` and ``y`` are copied once into a single named segment;
    :attr:`ref` is the tiny picklable handle workers materialize from.
    The creator must call :meth:`close` (or let the owning
    :class:`WorkerPool` do it) to unlink the segment.

    Configuration objects are deliberately not shipped: cell evaluation
    touches only ``X``/``y``/``feature_names``, and analytical caches
    reconstruct configurations from feature rows.
    """

    def __init__(self, dataset: PerformanceDataset, *, canonical: bool = True) -> None:
        from multiprocessing import shared_memory

        X = np.ascontiguousarray(dataset.X)
        y = np.ascontiguousarray(dataset.y)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, X.nbytes + y.nbytes))
        buf = self._shm.buf
        np.ndarray(X.shape, dtype=X.dtype, buffer=buf)[...] = X
        np.ndarray(y.shape, dtype=y.dtype, buffer=buf, offset=X.nbytes)[...] = y
        self.ref = SharedDatasetRef(
            shm_name=self._shm.name,
            dataset_name=dataset.name,
            feature_names=tuple(dataset.feature_names),
            x_shape=tuple(X.shape),
            x_dtype=X.dtype.str,
            y_dtype=y.dtype.str,
            digest=_dataset_digest(dataset),
            canonical=canonical,
        )
        self._closed = False

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        self.close()


# --------------------------------------------------------------------------- #
# The persistent pool
# --------------------------------------------------------------------------- #
def _prime_worker(delay: float) -> int:
    """Spawn-time warm-up: pay the heavy imports before the first plan.

    The short sleep keeps the priming tasks from all landing on the
    first worker, so every pool process both exists and is warm when the
    first real batch arrives.
    """
    import repro.experiments.scheduler  # noqa: F401  (imports the eval stack)

    time.sleep(delay)
    return os.getpid()


def _timed_call(fn, args: tuple):
    """Run ``fn(*args)`` in a worker, reporting pid and monotonic span.

    ``time.perf_counter`` is CLOCK_MONOTONIC-backed and system-wide on
    Linux, so the parent can subtract its submit timestamp from the
    worker's start timestamp to measure dispatch latency (queueing +
    argument pickling) separately from compute.
    """
    start = time.perf_counter()
    result = fn(*args)
    return os.getpid(), start, time.perf_counter() - start, result


def _resolve_pool_jobs(jobs: int) -> int:
    if jobs == -1:
        return max(1, os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be -1 or >= 1, got {jobs}")
    return jobs


class WorkerPool:
    """A warm process pool that outlives a single ``run_plan`` call.

    Parameters
    ----------
    jobs:
        Worker processes (``-1`` = CPU count).
    prime:
        Spawn all workers eagerly and pay the package imports up front
        (default).  Disable for tests that only inspect bookkeeping.

    Notes
    -----
    One pool serves a whole experiment sequence: workers keep their
    per-plan state memos (dataset, warmed caches, factories) across
    plans, so consecutive plans — or repeated invocations of the same
    plan — skip the per-process rebuild entirely.  :attr:`spawn_count`
    counts distinct worker PIDs ever observed; a warm second invocation
    must not grow it (asserted by the CI ``parallel-smoke`` job).

    :attr:`stats` accumulates the phase breakdown benchmark entries
    record: ``spawn_seconds`` (pool creation + priming),
    ``dispatch_seconds`` (submit-to-worker-start latency: queueing and
    argument pickling), ``compute_seconds`` (in-worker evaluation) and
    ``merge_seconds`` (plan-order result merge, recorded by the
    scheduler).
    """

    #: Phase-breakdown keys accumulated in seconds (floats in ``.stats``).
    _SECONDS_KEYS = ("spawn_seconds", "dispatch_seconds",
                     "compute_seconds", "merge_seconds")
    #: Work-volume keys (ints in ``.stats``).
    _COUNT_KEYS = ("batches", "cells", "plans")

    def __init__(self, jobs: int = -1, *, prime: bool = True) -> None:
        self.jobs = _resolve_pool_jobs(jobs)
        # Registry-backed phase counters: run_batches mutates them from
        # whichever thread drives the plan while monitors read .stats —
        # every increment happens under the registry lock, so a snapshot
        # taken mid-increment can never tear (regression-tested in
        # tests/test_obs.py; the bare dict this replaces could).
        self.metrics = MetricsRegistry(attach_to=REGISTRY)
        self._counters = {
            key: self.metrics.counter(
                f"repro_pool_{key}" if key.endswith("_seconds")
                else f"repro_pool_{key}_total",
                f"Worker pool {key.replace('_', ' ')}")
            for key in self._SECONDS_KEYS + self._COUNT_KEYS
        }
        self._pids: set[int] = set()
        self._shared: dict[str, SharedDataset] = {}
        self._closed = False
        t0 = time.perf_counter()
        self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        if prime:
            delay = 0.02 if self.jobs > 1 else 0.0
            futures = [self._executor.submit(_prime_worker, delay)
                       for _ in range(self.jobs)]
            self._pids.update(f.result() for f in futures)
        self._counters["spawn_seconds"].inc(time.perf_counter() - t0)

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> dict[str, float]:
        """Compatibility view of the registry counters (atomic snapshot).

        Seconds keys stay floats, volume keys ints — the shape the
        benchmark entries and tests always consumed.
        """
        out: dict[str, float] = {key: self._counters[key].value
                                 for key in self._SECONDS_KEYS}
        out.update({key: int(self._counters[key].value)
                    for key in self._COUNT_KEYS})
        return out

    @property
    def spawn_count(self) -> int:
        """Distinct worker processes observed over the pool's lifetime."""
        return len(self._pids)

    @property
    def worker_pids(self) -> frozenset:
        """The distinct worker PIDs behind :attr:`spawn_count`."""
        return frozenset(self._pids)

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def share_dataset(self, dataset: PerformanceDataset, *,
                      canonical: bool = True) -> SharedDatasetRef | None:
        """Place *dataset* in shared memory (memoized by content digest).

        Returns the picklable ref workers materialize from, or ``None``
        when shared memory is unavailable on this platform — callers then
        fall back to shipping the dataset object or the store locator.
        Segments live until :meth:`close`.
        """
        digest = _dataset_digest(dataset)
        shared = self._shared.get(digest)
        if shared is not None:
            return shared.ref
        try:
            shared = SharedDataset(dataset, canonical=canonical)
        except (ImportError, OSError):  # pragma: no cover - platform dependent
            return None
        self._shared[digest] = shared
        return shared.ref

    def run_batches(self, fn, batch_args: list[tuple]) -> list:
        """Run ``fn(*args)`` for every argument tuple; results in order.

        Each call is wrapped to report the worker's PID (spawn counting)
        and its monotonic start/duration (phase accounting).  Returns
        ``[(seconds, result), ...]`` so callers can feed measured batch
        durations back into the cost model.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        submit_times: list[float] = []
        futures = []
        t0 = time.perf_counter()
        for args in batch_args:
            submit_times.append(time.perf_counter())
            futures.append(self._executor.submit(_timed_call, fn, args))
        self._counters["dispatch_seconds"].inc(time.perf_counter() - t0)
        out = []
        for submitted, future in zip(submit_times, futures, strict=True):
            pid, started, seconds, result = future.result()
            self._pids.add(pid)
            self._counters["dispatch_seconds"].inc(max(0.0, started - submitted))
            self._counters["compute_seconds"].inc(seconds)
            out.append((seconds, result))
        self._counters["batches"].inc(len(batch_args))
        return out

    def probe(self, fn, *args):
        """Run ``fn(*args)`` on one (arbitrary) pool worker and return it.

        A testing/monitoring hook — e.g. reading the worker-state memo's
        eviction counter from inside a live worker.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        pid, _, _, result = self._executor.submit(_timed_call, fn, args).result()
        self._pids.add(pid)
        return result

    def record_merge(self, seconds: float, cells: int) -> None:
        """Fold one plan's merge time into the phase stats (scheduler hook)."""
        self._counters["merge_seconds"].inc(seconds)
        self._counters["cells"].inc(cells)
        self._counters["plans"].inc()

    def close(self) -> None:
        """Shut down workers and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        for shared in self._shared.values():
            shared.close()
        self._shared.clear()
