"""Text reporting of experiment results.

The benchmarks print these tables so their captured output is directly
comparable with the paper's figures (same series, same training
fractions, MAPE on the y-axis).
"""

from __future__ import annotations

from repro.core.evaluation import LearningCurve
from repro.experiments.runner import ExperimentResult

__all__ = ["format_curves", "format_result", "results_to_markdown",
           "summarize_trace", "format_trace_summary"]


def format_curves(curves: dict[str, LearningCurve]) -> str:
    """Fixed-width table of MAPE statistics for a set of learning curves."""
    header = (f"{'series':<24} {'train %':>8} {'n_train':>8} "
              f"{'MAPE mean':>10} {'MAPE std':>9} {'min':>7} {'max':>7}")
    lines = [header, "-" * len(header)]
    for curve in curves.values():
        for point in curve.points:
            lines.append(
                f"{curve.label:<24} {100 * point.fraction:>7.1f}% {point.n_train:>8d} "
                f"{point.mean:>9.1f}% {point.std:>8.1f}% {point.min:>6.1f}% {point.max:>6.1f}%"
            )
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Multi-line report of one experiment (description, extras, curve table)."""
    lines = [
        f"== {result.experiment_id}: {result.description}",
        f"   dataset: {result.dataset_name}",
    ]
    for key, value in result.extra.items():
        if isinstance(value, dict):
            detail = ", ".join(f"{k}={_fmt(v)}" for k, v in value.items())
            lines.append(f"   {key}: {detail}")
        else:
            lines.append(f"   {key}: {_fmt(value)}")
    if result.curves:
        lines.append(format_curves(result.curves))
    return "\n".join(lines)


def summarize_trace(spans, *, slowest: int = 5) -> dict:
    """Aggregate a span list (or ``load_trace`` output) into a summary dict.

    Accepts :class:`~repro.obs.tracing.Span` objects or their
    ``as_dict()`` form interchangeably, so it works on a live
    ``TRACER.collect()`` result and on a ``--trace`` file read back.

    Returns a plain dict with:

    * ``spans`` / ``wall_seconds`` — span count and end-to-end wall time;
    * ``phases`` — per span name (``experiment``/``plan``/``batch``/
      ``cell``/...): count, summed duration, the longest single span
      (per-phase critical path), and the phase's own wall-clock window;
    * ``slowest_cells`` — the *slowest* cell spans with their identity;
    * ``workers`` — per-worker cell counts, busy seconds and utilization
      (busy / wall), where a cell's worker is its own ``worker``
      attribute, its parent batch's ``worker``/``pid``, or ``"local"``.
    """
    dicts = [span if isinstance(span, dict) else span.as_dict()
             for span in spans]
    if not dicts:
        return {"spans": 0, "wall_seconds": 0.0, "phases": {},
                "slowest_cells": [], "workers": {}}
    start = min(d["start"] for d in dicts)
    end = max(d["start"] + d["duration"] for d in dicts)
    wall = end - start

    phases: dict[str, dict] = {}
    for d in dicts:
        phase = phases.setdefault(
            d["name"], {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0,
                        "_start": d["start"], "_end": d["start"]})
        phase["count"] += 1
        phase["total_seconds"] += d["duration"]
        phase["max_seconds"] = max(phase["max_seconds"], d["duration"])
        phase["_start"] = min(phase["_start"], d["start"])
        phase["_end"] = max(phase["_end"], d["start"] + d["duration"])
    for phase in phases.values():
        phase["wall_seconds"] = phase.pop("_end") - phase.pop("_start")

    by_id = {d["span_id"]: d for d in dicts}

    def worker_of(cell: dict) -> str:
        if "worker" in cell.get("attrs", {}):
            return str(cell["attrs"]["worker"])
        parent = by_id.get(cell.get("parent_id"))
        if parent is not None:
            attrs = parent.get("attrs", {})
            if "worker" in attrs:
                return str(attrs["worker"])
            if "pid" in attrs:
                return f"pid-{attrs['pid']}"
        return "local"

    cells = [d for d in dicts if d["name"] == "cell"]
    slowest_cells = [
        {"seconds": d["duration"], "worker": worker_of(d),
         **{k: d["attrs"][k] for k in ("series", "fraction", "repeat")
            if k in d.get("attrs", {})}}
        for d in sorted(cells, key=lambda d: -d["duration"])[:slowest]
    ]
    workers: dict[str, dict] = {}
    for d in cells:
        record = workers.setdefault(worker_of(d),
                                    {"cells": 0, "busy_seconds": 0.0})
        record["cells"] += 1
        record["busy_seconds"] += d["duration"]
    for record in workers.values():
        record["utilization"] = record["busy_seconds"] / wall if wall else 0.0

    return {"spans": len(dicts), "wall_seconds": wall, "phases": phases,
            "slowest_cells": slowest_cells, "workers": workers}


def format_trace_summary(summary: dict) -> str:
    """Fixed-width report of a :func:`summarize_trace` dict."""
    lines = [f"trace: {summary['spans']} span(s) over "
             f"{summary['wall_seconds']:.3f}s"]
    if summary["phases"]:
        lines.append(f"{'phase':<12} {'count':>6} {'total s':>9} "
                     f"{'max s':>8} {'wall s':>8}")
        for name, phase in sorted(summary["phases"].items()):
            lines.append(f"{name:<12} {phase['count']:>6d} "
                         f"{phase['total_seconds']:>9.3f} "
                         f"{phase['max_seconds']:>8.3f} "
                         f"{phase['wall_seconds']:>8.3f}")
    if summary["slowest_cells"]:
        lines.append("slowest cells:")
        for cell in summary["slowest_cells"]:
            identity = ", ".join(f"{k}={cell[k]}" for k in
                                 ("series", "fraction", "repeat") if k in cell)
            lines.append(f"  {cell['seconds']:.3f}s  {identity} "
                         f"[{cell['worker']}]")
    if summary["workers"]:
        lines.append("worker utilization:")
        for worker, record in sorted(summary["workers"].items()):
            lines.append(f"  {worker:<20} {record['cells']:>4d} cell(s) "
                         f"{record['busy_seconds']:>8.3f}s busy "
                         f"({100 * record['utilization']:.0f}%)")
    return "\n".join(lines)


def results_to_markdown(results: dict[str, ExperimentResult]) -> str:
    """Markdown summary of several experiments (used to draft EXPERIMENTS.md)."""
    lines = ["| experiment | series | train % | MAPE mean | MAPE std |",
             "|---|---|---|---|---|"]
    for result in results.values():
        for row in result.rows():
            lines.append(
                f"| {result.experiment_id} | {row['series']} | "
                f"{100 * row['fraction']:.1f}% | {row['mape_mean']:.1f}% | "
                f"{row['mape_std']:.1f}% |"
            )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
