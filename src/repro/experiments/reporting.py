"""Text reporting of experiment results.

The benchmarks print these tables so their captured output is directly
comparable with the paper's figures (same series, same training
fractions, MAPE on the y-axis).
"""

from __future__ import annotations

from repro.core.evaluation import LearningCurve
from repro.experiments.runner import ExperimentResult

__all__ = ["format_curves", "format_result", "results_to_markdown"]


def format_curves(curves: dict[str, LearningCurve]) -> str:
    """Fixed-width table of MAPE statistics for a set of learning curves."""
    header = (f"{'series':<24} {'train %':>8} {'n_train':>8} "
              f"{'MAPE mean':>10} {'MAPE std':>9} {'min':>7} {'max':>7}")
    lines = [header, "-" * len(header)]
    for curve in curves.values():
        for point in curve.points:
            lines.append(
                f"{curve.label:<24} {100 * point.fraction:>7.1f}% {point.n_train:>8d} "
                f"{point.mean:>9.1f}% {point.std:>8.1f}% {point.min:>6.1f}% {point.max:>6.1f}%"
            )
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Multi-line report of one experiment (description, extras, curve table)."""
    lines = [
        f"== {result.experiment_id}: {result.description}",
        f"   dataset: {result.dataset_name}",
    ]
    for key, value in result.extra.items():
        if isinstance(value, dict):
            detail = ", ".join(f"{k}={_fmt(v)}" for k, v in value.items())
            lines.append(f"   {key}: {detail}")
        else:
            lines.append(f"   {key}: {_fmt(value)}")
    if result.curves:
        lines.append(format_curves(result.curves))
    return "\n".join(lines)


def results_to_markdown(results: dict[str, ExperimentResult]) -> str:
    """Markdown summary of several experiments (used to draft EXPERIMENTS.md)."""
    lines = ["| experiment | series | train % | MAPE mean | MAPE std |",
             "|---|---|---|---|---|"]
    for result in results.values():
        for row in result.rows():
            lines.append(
                f"| {result.experiment_id} | {row['series']} | "
                f"{100 * row['fraction']:.1f}% | {row['mape_mean']:.1f}% | "
                f"{row['mape_std']:.1f}% |"
            )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
