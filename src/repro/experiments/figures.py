"""One experiment definition per figure of the paper.

The functions here are deliberately thin: they declare *which dataset*,
*which models*, *which training fractions* and *which hybrid options* each
figure uses, and delegate the evaluation protocol to
:func:`repro.core.evaluation.compare_models`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analytical import (
    AnalyticalPredictionCache,
    FmmAnalyticalModel,
    StencilAnalyticalModel,
)
from repro.core.evaluation import compare_models
from repro.core.features import PerformanceDataset
from repro.core.hybrid import HybridPerformanceModel
from repro.datasets import (
    blocked_small_grid_dataset,
    fmm_dataset,
    grid_only_dataset,
    threaded_dataset,
)
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.ml import (
    DecisionTreeRegressor,
    ExtraTreesRegressor,
    Pipeline,
    RandomForestRegressor,
    StandardScaler,
)
from repro.ml.metrics import mean_absolute_percentage_error

__all__ = [
    "figure3_stencil",
    "figure3_fmm",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "analytical_accuracy",
]

#: Training fractions used in the paper's figures.
FIG3_STENCIL_FRACTIONS = (0.01, 0.02, 0.04, 0.06, 0.10)
FIG3_FMM_FRACTIONS = (0.10, 0.20, 0.40, 0.60, 0.80)
FIG5_ML_FRACTIONS = (0.10, 0.15, 0.20)
FIG5_HYBRID_FRACTIONS = (0.01, 0.02, 0.04)
FIG6_FRACTIONS = (0.01, 0.02, 0.04)
FIG7_FRACTIONS = (0.01, 0.02, 0.04)
FIG8_FRACTIONS = (0.15, 0.20, 0.25)


# --------------------------------------------------------------------------- #
# Model factories
# --------------------------------------------------------------------------- #
def _ml_pipeline_factory(estimator_cls, settings: ExperimentSettings, **kwargs) -> Callable:
    """Factory producing a standardize+regressor pipeline per seed."""

    def factory(seed: int):
        params = dict(kwargs)
        if estimator_cls is not DecisionTreeRegressor:
            params.setdefault("n_estimators", settings.n_estimators)
        return Pipeline(steps=[
            ("scale", StandardScaler()),
            ("model", estimator_cls(random_state=seed, **params)),
        ])

    return factory


def _hybrid_factory(analytical_model, feature_names, settings: ExperimentSettings,
                    *, aggregate: bool, cache: AnalyticalPredictionCache | None = None,
                    ) -> Callable:
    """Factory producing a hybrid (extra trees stacked on the AM) per seed.

    All instances share the optional analytical-prediction *cache*: the
    analytical model is deterministic and prediction-only, so each dataset
    row is evaluated once per experiment regardless of how many
    ``(fraction, repeat)`` fits the learning-curve protocol performs.
    """

    def factory(seed: int):
        return HybridPerformanceModel(
            analytical_model=analytical_model,
            feature_names=feature_names,
            ml_model=ExtraTreesRegressor(n_estimators=settings.n_estimators,
                                         random_state=seed),
            aggregate_analytical=aggregate,
            analytical_cache=cache,
            random_state=seed,
        )

    return factory


# --------------------------------------------------------------------------- #
# Figure 3: pure machine-learning model comparison
# --------------------------------------------------------------------------- #
def figure3_stencil(settings: ExperimentSettings | None = None,
                    dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Figure 3A: MAPE of DT / extra trees / random forests on the blocked stencil dataset."""
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else blocked_small_grid_dataset(
        max_configs=settings.max_configs)
    factories = {
        "decision_tree": _ml_pipeline_factory(DecisionTreeRegressor, settings),
        "extra_trees": _ml_pipeline_factory(ExtraTreesRegressor, settings),
        "random_forest": _ml_pipeline_factory(RandomForestRegressor, settings),
    }
    curves = compare_models(factories, dataset, fractions=FIG3_STENCIL_FRACTIONS,
                            n_repeats=settings.n_repeats,
                            random_state=settings.random_state)
    return ExperimentResult(
        experiment_id="figure3A",
        description="ML model comparison on the stencil (grid sizes + blocking) dataset",
        dataset_name=dataset.name,
        curves=curves,
    )


def figure3_fmm(settings: ExperimentSettings | None = None,
                dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Figure 3B: MAPE of DT / extra trees / random forests on the FMM dataset."""
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else fmm_dataset(max_configs=settings.max_configs)
    factories = {
        "decision_tree": _ml_pipeline_factory(DecisionTreeRegressor, settings),
        "extra_trees": _ml_pipeline_factory(ExtraTreesRegressor, settings),
        "random_forest": _ml_pipeline_factory(RandomForestRegressor, settings),
    }
    curves = compare_models(factories, dataset, fractions=FIG3_FMM_FRACTIONS,
                            n_repeats=settings.n_repeats,
                            random_state=settings.random_state)
    return ExperimentResult(
        experiment_id="figure3B",
        description="ML model comparison on the FMM (t, N, q, k) dataset",
        dataset_name=dataset.name,
        curves=curves,
    )


# --------------------------------------------------------------------------- #
# Figures 5-7: hybrid vs pure ML on the stencil
# --------------------------------------------------------------------------- #
def figure5(settings: ExperimentSettings | None = None,
            dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Figure 5: accurate-analytical-model region (grid sizes only).

    The pure extra-trees model trains on 10/15/20% of the dataset, the
    hybrid model on only 1/2/4%.
    """
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else grid_only_dataset(
        max_configs=settings.max_configs)
    analytical = StencilAnalyticalModel()
    cache = AnalyticalPredictionCache(analytical, dataset.feature_names)
    factories = {
        "extra_trees": _ml_pipeline_factory(ExtraTreesRegressor, settings),
        "hybrid": _hybrid_factory(analytical, dataset.feature_names, settings,
                                  aggregate=False, cache=cache),
    }
    curves = compare_models(
        factories, dataset,
        fractions_by_model={"extra_trees": FIG5_ML_FRACTIONS,
                            "hybrid": FIG5_HYBRID_FRACTIONS},
        n_repeats=settings.n_repeats, random_state=settings.random_state,
        analytical_cache=cache,
    )
    am_mape = mean_absolute_percentage_error(dataset.y, cache.predict(dataset.X))
    return ExperimentResult(
        experiment_id="figure5",
        description="Hybrid (1-4% training) vs extra trees (10-20%) on grid-size-only stencil",
        dataset_name=dataset.name,
        curves=curves,
        extra={"analytical_mape": am_mape},
    )


def figure6(settings: ExperimentSettings | None = None,
            dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Figure 6: inaccurate analytical model (blocking added, untuned).

    Both models train on 1/2/4% of the dataset.  The hybrid stacks the
    untuned analytical prediction as an extra feature (no final
    aggregation); incorporating the inaccurate analytical model still cuts
    the error of the pure ML model roughly in half, as in the paper.  The
    aggregation variant is evaluated separately in
    :func:`repro.experiments.ablations.ablation_aggregation`.
    """
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else blocked_small_grid_dataset(
        max_configs=settings.max_configs)
    analytical = StencilAnalyticalModel()
    cache = AnalyticalPredictionCache(analytical, dataset.feature_names)
    factories = {
        "extra_trees": _ml_pipeline_factory(ExtraTreesRegressor, settings),
        "hybrid": _hybrid_factory(analytical, dataset.feature_names, settings,
                                  aggregate=False, cache=cache),
    }
    curves = compare_models(factories, dataset, fractions=FIG6_FRACTIONS,
                            n_repeats=settings.n_repeats,
                            random_state=settings.random_state,
                            analytical_cache=cache)
    am_mape = mean_absolute_percentage_error(dataset.y, cache.predict(dataset.X))
    return ExperimentResult(
        experiment_id="figure6",
        description="Hybrid vs extra trees at 1-4% training on the blocked stencil dataset",
        dataset_name=dataset.name,
        curves=curves,
        extra={"analytical_mape": am_mape},
    )


def figure7(settings: ExperimentSettings | None = None,
            dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Figure 7: region not covered by the analytical model (multi-threading).

    The serial analytical model is coupled with extra trees; as in the
    paper, the analytical and stacked predictions are *not* aggregated
    because the analytical model does not capture parallelism.
    """
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else threaded_dataset(
        max_configs=settings.max_configs)
    analytical = StencilAnalyticalModel()
    cache = AnalyticalPredictionCache(analytical, dataset.feature_names)
    factories = {
        "extra_trees": _ml_pipeline_factory(ExtraTreesRegressor, settings),
        "hybrid": _hybrid_factory(analytical, dataset.feature_names, settings,
                                  aggregate=False, cache=cache),
    }
    curves = compare_models(factories, dataset, fractions=FIG7_FRACTIONS,
                            n_repeats=settings.n_repeats,
                            random_state=settings.random_state,
                            analytical_cache=cache)
    am_mape = mean_absolute_percentage_error(dataset.y, cache.predict(dataset.X))
    return ExperimentResult(
        experiment_id="figure7",
        description="Hybrid (serial AM) vs extra trees on the multithreaded stencil dataset",
        dataset_name=dataset.name,
        curves=curves,
        extra={"analytical_mape": am_mape},
    )


# --------------------------------------------------------------------------- #
# Figure 8: hybrid vs pure ML on the FMM
# --------------------------------------------------------------------------- #
def figure8(settings: ExperimentSettings | None = None,
            dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Figure 8: FMM parameter tuning with an untuned analytical model."""
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else fmm_dataset(max_configs=settings.max_configs)
    analytical = FmmAnalyticalModel()
    cache = AnalyticalPredictionCache(analytical, dataset.feature_names)
    factories = {
        "extra_trees": _ml_pipeline_factory(ExtraTreesRegressor, settings),
        "hybrid": _hybrid_factory(analytical, dataset.feature_names, settings,
                                  aggregate=False, cache=cache),
    }
    curves = compare_models(factories, dataset, fractions=FIG8_FRACTIONS,
                            n_repeats=settings.n_repeats,
                            random_state=settings.random_state,
                            analytical_cache=cache)
    am_mape = mean_absolute_percentage_error(dataset.y, cache.predict(dataset.X))
    return ExperimentResult(
        experiment_id="figure8",
        description="Hybrid vs extra trees at 15-25% training on the FMM dataset",
        dataset_name=dataset.name,
        curves=curves,
        extra={"analytical_mape": am_mape},
    )


# --------------------------------------------------------------------------- #
# In-text analytical-model accuracy numbers
# --------------------------------------------------------------------------- #
def analytical_accuracy(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Standalone analytical-model MAPE on every dataset (paper: 42% and 84.5%)."""
    settings = settings or ExperimentSettings()
    stencil_am = StencilAnalyticalModel()
    fmm_am = FmmAnalyticalModel()
    datasets = {
        "stencil-grid-only": (grid_only_dataset(max_configs=settings.max_configs), stencil_am),
        "stencil-blocked": (blocked_small_grid_dataset(max_configs=settings.max_configs), stencil_am),
        "stencil-threaded": (threaded_dataset(max_configs=settings.max_configs), stencil_am),
        "fmm": (fmm_dataset(max_configs=settings.max_configs), fmm_am),
    }
    extra = {}
    for name, (dataset, model) in datasets.items():
        predictions = model.predict(dataset.X, dataset.feature_names)
        extra[name] = {
            "mape": mean_absolute_percentage_error(dataset.y, predictions),
            "log_correlation": float(np.corrcoef(np.log(dataset.y), np.log(predictions))[0, 1]),
            "n_configs": dataset.n_samples,
        }
    return ExperimentResult(
        experiment_id="analytical_accuracy",
        description="Untuned analytical-model MAPE per dataset (paper reports 42% / 84.5%)",
        dataset_name="all",
        curves={},
        extra=extra,
    )
