"""One experiment definition per figure of the paper.

The figure functions are thin wrappers over the declarative plans in
:mod:`repro.experiments.plan`: each resolves its
:class:`~repro.experiments.plan.ExperimentPlan` (which dataset, which
models, which training fractions, which hybrid options) and hands it to
:func:`~repro.experiments.scheduler.run_plan`, which owns the evaluation
protocol, the executor choice and the persistent dataset/cache store.
``analytical_accuracy`` reports standalone numbers rather than learning
curves and therefore bypasses the plan machinery.
"""

from __future__ import annotations

import numpy as np

from repro.analytical import FmmAnalyticalModel, StencilAnalyticalModel
from repro.core.features import PerformanceDataset
from repro.datasets import (
    blocked_small_grid_dataset,
    fmm_dataset,
    grid_only_dataset,
    threaded_dataset,
)
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.experiments.scheduler import run_named_plan
from repro.ml.metrics import mean_absolute_percentage_error

__all__ = [
    "figure3_stencil",
    "figure3_fmm",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "analytical_accuracy",
]


def figure3_stencil(settings: ExperimentSettings | None = None,
                    dataset: PerformanceDataset | None = None,
                    **scheduler_options) -> ExperimentResult:
    """Figure 3A: MAPE of DT / extra trees / random forests on the blocked stencil dataset."""
    return run_named_plan("figure3_stencil", settings, dataset, **scheduler_options)


def figure3_fmm(settings: ExperimentSettings | None = None,
                dataset: PerformanceDataset | None = None,
                **scheduler_options) -> ExperimentResult:
    """Figure 3B: MAPE of DT / extra trees / random forests on the FMM dataset."""
    return run_named_plan("figure3_fmm", settings, dataset, **scheduler_options)


def figure5(settings: ExperimentSettings | None = None,
            dataset: PerformanceDataset | None = None,
            **scheduler_options) -> ExperimentResult:
    """Figure 5: accurate-analytical-model region (grid sizes only).

    The pure extra-trees model trains on 10/15/20% of the dataset, the
    hybrid model on only 1/2/4%.
    """
    return run_named_plan("figure5", settings, dataset, **scheduler_options)


def figure6(settings: ExperimentSettings | None = None,
            dataset: PerformanceDataset | None = None,
            **scheduler_options) -> ExperimentResult:
    """Figure 6: inaccurate analytical model (blocking added, untuned).

    Both models train on 1/2/4% of the dataset.  The hybrid stacks the
    untuned analytical prediction as an extra feature (no final
    aggregation); incorporating the inaccurate analytical model still cuts
    the error of the pure ML model roughly in half, as in the paper.  The
    aggregation variant is evaluated separately in
    :func:`repro.experiments.ablations.ablation_aggregation`.
    """
    return run_named_plan("figure6", settings, dataset, **scheduler_options)


def figure7(settings: ExperimentSettings | None = None,
            dataset: PerformanceDataset | None = None,
            **scheduler_options) -> ExperimentResult:
    """Figure 7: region not covered by the analytical model (multi-threading).

    The serial analytical model is coupled with extra trees; as in the
    paper, the analytical and stacked predictions are *not* aggregated
    because the analytical model does not capture parallelism.
    """
    return run_named_plan("figure7", settings, dataset, **scheduler_options)


def figure8(settings: ExperimentSettings | None = None,
            dataset: PerformanceDataset | None = None,
            **scheduler_options) -> ExperimentResult:
    """Figure 8: FMM parameter tuning with an untuned analytical model."""
    return run_named_plan("figure8", settings, dataset, **scheduler_options)


# --------------------------------------------------------------------------- #
# In-text analytical-model accuracy numbers (no learning curves — no plan)
# --------------------------------------------------------------------------- #
def analytical_accuracy(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Standalone analytical-model MAPE on every dataset (paper: 42% and 84.5%)."""
    settings = settings or ExperimentSettings()
    stencil_am = StencilAnalyticalModel()
    fmm_am = FmmAnalyticalModel()
    datasets = {
        "stencil-grid-only": (grid_only_dataset(max_configs=settings.max_configs), stencil_am),
        "stencil-blocked": (blocked_small_grid_dataset(max_configs=settings.max_configs), stencil_am),
        "stencil-threaded": (threaded_dataset(max_configs=settings.max_configs), stencil_am),
        "fmm": (fmm_dataset(max_configs=settings.max_configs), fmm_am),
    }
    extra = {}
    for name, (dataset, model) in datasets.items():
        predictions = model.predict(dataset.X, dataset.feature_names)
        extra[name] = {
            "mape": mean_absolute_percentage_error(dataset.y, predictions),
            "log_correlation": float(np.corrcoef(np.log(dataset.y), np.log(predictions))[0, 1]),
            "n_configs": dataset.n_samples,
        }
    return ExperimentResult(
        experiment_id="analytical_accuracy",
        description="Untuned analytical-model MAPE per dataset (paper reports 42% / 84.5%)",
        dataset_name="all",
        curves={},
        extra=extra,
    )
