"""Pluggable execution of experiment plans.

:func:`run_plan` takes an :class:`~repro.experiments.plan.ExperimentPlan`,
expands it into :class:`~repro.core.evaluation.EvalCell` tasks and
dispatches them through one of three executors:

* ``"serial"`` — the cells run in plan order in the calling process;
* ``"thread"`` — a ``ThreadPoolExecutor`` (tree fitting spends its time in
  NumPy kernels that release the GIL, so threads give real concurrency);
* ``"process"`` — a ``ProcessPoolExecutor``; cells are pickled to worker
  processes in balanced contiguous batches.  Workers rebuild (or, with a
  :class:`~repro.datasets.store.DatasetStore`, load from disk) the
  dataset and analytical caches once per plan and keep them in a
  per-process memo across batches.
* ``"remote"`` — a TCP worker fleet (:mod:`repro.distributed`): cells are
  leased in batches to :mod:`repro.distributed.worker` processes on any
  number of hosts, with heartbeat/requeue fault tolerance and store
  bootstrap for cold workers.  Pass an existing
  :class:`~repro.distributed.coordinator.Coordinator` as ``fleet`` (the
  CLI's ``--bind``/``--workers`` mode); without one a throwaway
  coordinator plus ``jobs`` localhost workers is spun up per plan.

Because seeds are derived at planning time and the merge is performed in
plan order, all four executors produce **bit-identical**
:class:`~repro.experiments.runner.ExperimentResult` rows; the executor is
purely a throughput knob.

When a store is supplied the parent process resolves (and persists) the
dataset and warmed analytical caches *before* dispatch, so worker
processes hit the on-disk artifacts instead of re-simulating datasets or
re-warming caches.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.analytical import AnalyticalPredictionCache
from repro.core.evaluation import CellResult, evaluate_cell, merge_cell_results
from repro.core.features import PerformanceDataset
from repro.datasets.store import DatasetStore
from repro.experiments.plan import (
    ExperimentPlan,
    build_analytical,
    build_factory,
    compute_extras,
    expand_cells,
    experiment_plan,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    _resolve_store,
)
from repro.parallel.threadpool import chunk_indices

__all__ = ["EXECUTORS", "run_plan", "run_named_plan"]

#: Valid values of the ``executor`` argument / ``--executor`` CLI flag.
EXECUTORS = ("serial", "thread", "process", "remote")


def _resolve_jobs(jobs: int) -> int:
    if jobs == -1:
        return max(1, os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be -1 or >= 1, got {jobs}")
    return jobs


def _resolve_data(plan: ExperimentPlan, store: DatasetStore | None,
                  dataset: PerformanceDataset | None = None,
                  ) -> tuple[PerformanceDataset, dict[str, AnalyticalPredictionCache]]:
    """Dataset and warmed analytical caches for *plan*.

    With a *store* (and no explicit dataset override) both the dataset and
    the warmed caches are read from / written to disk, so the expensive
    work happens at most once per machine.  An explicit *dataset* override
    (used by tests and notebooks) bypasses the store entirely — its
    content has no registered fingerprint.
    """
    use_store = store is not None and dataset is None
    if dataset is None:
        dataset = store.get(plan.dataset) if store is not None else plan.dataset.build()
    caches: dict[str, AnalyticalPredictionCache] = {}
    for key in plan.cache_keys():
        cache = None
        if use_store:
            cache = store.load_analytical_cache(key, plan.dataset,
                                                build_analytical(key),
                                                dataset.feature_names)
        if cache is None:
            cache = AnalyticalPredictionCache(build_analytical(key),
                                              dataset.feature_names)
            cache.warm(dataset.X)
            if use_store:
                store.save_analytical_cache(key, plan.dataset, cache)
        caches[key] = cache
    return dataset, caches


def _series_factories(plan: ExperimentPlan, dataset: PerformanceDataset,
                      caches: dict[str, AnalyticalPredictionCache]) -> dict:
    return {
        spec.label: build_factory(spec.factory, dataset,
                                  caches.get(spec.factory.analytical))
        for spec in plan.series
    }


# --------------------------------------------------------------------------- #
# Process-pool worker side
# --------------------------------------------------------------------------- #
#: Per-process memo of resolved plan state, so one worker handling several
#: cell batches of the same plan loads the dataset and caches only once.
_WORKER_STATE: dict = {}


def _evaluate_batch(plan: ExperimentPlan, cells: list, store_locator: str | None,
                    dataset: PerformanceDataset | None = None) -> list[CellResult]:
    """Evaluate one batch of cells (runs inside a worker process).

    Module-level (and with picklable arguments) so ``ProcessPoolExecutor``
    can ship it.  *store_locator* is the parent store's shareable URL
    (``file://`` directory, ``http://`` object store); workers open
    their own :class:`DatasetStore` on it.  The serial/thread paths
    evaluate cells directly in :func:`run_plan` against the
    parent-resolved state; divergence is impossible because both paths
    reduce to the same :func:`~repro.core.evaluation.evaluate_cell` call
    per cell and the merge is plan-ordered.
    """
    if dataset is not None:
        # Override datasets have no registered fingerprint; key the memo by
        # content so a worker handling several batches warms caches once.
        digest = hashlib.sha256(dataset.X.tobytes() + dataset.y.tobytes()).hexdigest()
        key = (plan, "override", digest)
    else:
        key = (plan, store_locator)
    state = _WORKER_STATE.get(key)
    if state is None:
        if dataset is not None:
            resolved, caches = _resolve_data(plan, None, dataset)
        else:
            store = DatasetStore(store_locator) if store_locator is not None else None
            resolved, caches = _resolve_data(plan, store)
        state = (resolved, _series_factories(plan, resolved, caches))
        _WORKER_STATE[key] = state
    resolved, factories = state
    return [evaluate_cell(cell, factories[cell.factory_key], resolved)
            for cell in cells]


# --------------------------------------------------------------------------- #
# Remote (worker-fleet) dispatch
# --------------------------------------------------------------------------- #
def _run_remote(plan: ExperimentPlan, cells: list, dataset: PerformanceDataset,
                caches: dict, store: DatasetStore | None, fleet,
                jobs: int, dataset_override: bool) -> list[CellResult]:
    """Dispatch cells to a TCP worker fleet (see :mod:`repro.distributed`).

    With an existing *fleet* coordinator the plan simply runs on it.  The
    convenience path spawns a throwaway coordinator plus *jobs* localhost
    workers; the workers share the parent's store (via its locator URL —
    warm-path loads, no bootstrap traffic) when a shareable one is
    configured.
    """
    from repro.distributed.coordinator import Coordinator

    if fleet is not None:
        return fleet.execute(plan, cells, dataset, caches, store=store,
                             dataset_override=dataset_override)
    with Coordinator() as coordinator:
        coordinator.spawn_local_workers(
            jobs, store_url=None if store is None else store.locator)
        return coordinator.execute(plan, cells, dataset, caches, store=store,
                                   dataset_override=dataset_override)


# --------------------------------------------------------------------------- #
# The scheduler proper
# --------------------------------------------------------------------------- #
def run_plan(plan: ExperimentPlan, *, executor: str = "serial", jobs: int = 1,
             store: DatasetStore | None = None,
             dataset: PerformanceDataset | None = None,
             fleet=None) -> ExperimentResult:
    """Execute *plan* and merge the cell results into an :class:`ExperimentResult`.

    Parameters
    ----------
    plan:
        The experiment plan to execute.
    executor:
        One of :data:`EXECUTORS`.  All four produce bit-identical rows.
    jobs:
        Worker count for the thread/process executors (``-1`` = CPU
        count); for ``"remote"`` without a *fleet*, the size of the
        spawned localhost fleet.
    store:
        Optional persistent :class:`DatasetStore`: datasets and warmed
        analytical caches are loaded from (and saved to) disk, shared
        across experiments, invocations and worker processes.
    dataset:
        Explicit dataset override (tests/notebooks); bypasses the store.
    fleet:
        Remote executor only: an existing
        :class:`~repro.distributed.coordinator.Coordinator` whose workers
        execute the plan (the coordinator outlives the call, so one fleet
        serves a whole sequence of experiments).  ``None`` spins up a
        local fleet of ``jobs`` workers for just this plan.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    jobs = _resolve_jobs(jobs)
    resolved, caches = _resolve_data(plan, store, dataset)
    cells = expand_cells(plan)

    if executor == "remote":
        results = _run_remote(plan, cells, resolved, caches,
                              store if dataset is None else None, fleet, jobs,
                              dataset_override=dataset is not None)
    elif executor == "serial" or jobs == 1 or len(cells) <= 1:
        factories = _series_factories(plan, resolved, caches)
        results = [evaluate_cell(cell, factories[cell.factory_key], resolved)
                   for cell in cells]
    elif executor == "thread":
        factories = _series_factories(plan, resolved, caches)
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(
                lambda cell: evaluate_cell(cell, factories[cell.factory_key], resolved),
                cells))
    else:  # process
        store_locator = store.locator if (store is not None and dataset is None) else None
        # With a shareable store, workers load the persisted dataset/caches
        # through its locator (a file:// directory or http:// object store);
        # otherwise ship the parent-resolved dataset instead of letting
        # every worker re-simulate it from the spec.
        shipped = None if store_locator is not None else resolved
        batches = [[cells[i] for i in chunk] for chunk in chunk_indices(len(cells), jobs)]
        with ProcessPoolExecutor(max_workers=len(batches)) as pool:
            futures = [pool.submit(_evaluate_batch, plan, batch, store_locator, shipped)
                       for batch in batches]
            results = [r for future in futures for r in future.result()]

    by_series: dict[str, list[CellResult]] = {}
    for result in results:
        by_series.setdefault(result.series, []).append(result)
    curves = {}
    for spec in plan.series:
        series_cells = [c for c in cells if c.series == spec.label]
        curves[spec.label] = merge_cell_results(
            series_cells, by_series.get(spec.label, []), label=spec.label)

    return ExperimentResult(
        experiment_id=plan.experiment_id,
        description=plan.description,
        dataset_name=resolved.name,
        curves=curves,
        extra=compute_extras(plan, resolved, caches),
    )


def run_named_plan(name: str, settings: ExperimentSettings | None = None,
                   dataset: PerformanceDataset | None = None, *,
                   executor: str = "serial", jobs: int = 1,
                   store=None, fleet=None) -> ExperimentResult:
    """Resolve the plan of experiment *name* and execute it.

    The shared backend of the thin per-figure / per-ablation wrappers
    (``store`` may be a :class:`DatasetStore` or a directory path;
    ``fleet`` an existing remote-executor coordinator).
    """
    plan = experiment_plan(name, settings or ExperimentSettings())
    if plan is None:
        raise KeyError(f"experiment {name!r} has no plan (runs opaquely)")
    return run_plan(plan, dataset=dataset, executor=executor, jobs=jobs,
                    store=_resolve_store(store), fleet=fleet)
