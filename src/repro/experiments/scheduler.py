"""Pluggable execution of experiment plans.

:func:`run_plan` takes an :class:`~repro.experiments.plan.ExperimentPlan`,
expands it into :class:`~repro.core.evaluation.EvalCell` tasks and
dispatches them through one of three executors:

* ``"serial"`` — the cells run in plan order in the calling process;
* ``"thread"`` — a ``ThreadPoolExecutor`` (tree fitting spends its time in
  NumPy kernels that release the GIL, so threads give real concurrency);
* ``"process"`` — a persistent :class:`~repro.experiments.pool.WorkerPool`
  of worker processes.  Cells are fused into cost-balanced batches by a
  greedy LPT shaper driven by the pool module's calibrated
  :class:`~repro.experiments.pool.CostModel`, and the resolved dataset is
  shipped zero-copy through POSIX shared memory (workers attach read-only
  views; only a tiny handle crosses the pickle boundary).  Workers
  resolve the remaining plan state (analytical caches, factories) once
  per plan — from the store when a shareable locator exists — and keep it
  in a bounded per-process memo across batches *and plans*: pass an
  external pool (see ``run_all``/the CLI, which create one per experiment
  sequence) and consecutive plans skip worker spawn and state rebuild
  entirely.
* ``"remote"`` — a TCP worker fleet (:mod:`repro.distributed`): cells are
  leased in batches to :mod:`repro.distributed.worker` processes on any
  number of hosts, with heartbeat/requeue fault tolerance and store
  bootstrap for cold workers.  Pass an existing
  :class:`~repro.distributed.coordinator.Coordinator` as ``fleet`` (the
  CLI's ``--bind``/``--workers`` mode); without one a throwaway
  coordinator plus ``jobs`` localhost workers is spun up per plan.

Because seeds are derived at planning time and the merge is performed in
plan order, all four executors produce **bit-identical**
:class:`~repro.experiments.runner.ExperimentResult` rows; the executor is
purely a throughput knob.

When a store is supplied the parent process resolves (and persists) the
dataset and warmed analytical caches *before* dispatch, so worker
processes hit the on-disk artifacts instead of re-simulating datasets or
re-warming caches.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.analytical import AnalyticalPredictionCache
from repro.core.evaluation import CellResult, evaluate_cell, merge_cell_results
from repro.core.features import PerformanceDataset
from repro.datasets.store import DatasetStore
from repro.experiments.plan import (
    ExperimentPlan,
    build_analytical,
    build_factory,
    compute_extras,
    expand_cells,
    experiment_plan,
)
from repro.experiments.pool import (
    AUTO_BATCHES_PER_WORKER,
    COST_MODEL,
    SharedDatasetRef,
    WorkerPool,
    resolve_batch_cells,
    shape_batches,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    _resolve_store,
)
from repro.obs.tracing import TRACER, span_into

__all__ = ["EXECUTORS", "run_plan", "run_named_plan", "worker_state_stats"]

#: Valid values of the ``executor`` argument / ``--executor`` CLI flag.
EXECUTORS = ("serial", "thread", "process", "remote")


def _resolve_jobs(jobs: int) -> int:
    if jobs == -1:
        return max(1, os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be -1 or >= 1, got {jobs}")
    return jobs


def _resolve_data(plan: ExperimentPlan, store: DatasetStore | None,
                  dataset: PerformanceDataset | None = None, *,
                  canonical: bool = False,
                  ) -> tuple[PerformanceDataset, dict[str, AnalyticalPredictionCache]]:
    """Dataset and warmed analytical caches for *plan*.

    With a *store* (and no explicit dataset override) both the dataset and
    the warmed caches are read from / written to disk, so the expensive
    work happens at most once per machine.  An explicit *dataset* override
    (used by tests and notebooks) bypasses the store entirely — its
    content has no registered fingerprint.  *canonical* marks a provided
    *dataset* as store-equivalent content (the shared-memory transport
    path: the bytes are the plan's registered dataset, just delivered
    without the npz read), so caches may still flow through the store.
    """
    use_store = store is not None and (dataset is None or canonical)
    if dataset is None:
        dataset = store.get(plan.dataset) if store is not None else plan.dataset.build()
    caches: dict[str, AnalyticalPredictionCache] = {}
    for key in plan.cache_keys():
        cache = None
        if use_store:
            cache = store.load_analytical_cache(key, plan.dataset,
                                                build_analytical(key),
                                                dataset.feature_names)
        if cache is None:
            cache = AnalyticalPredictionCache(build_analytical(key),
                                              dataset.feature_names)
            cache.warm(dataset.X)
            if use_store:
                store.save_analytical_cache(key, plan.dataset, cache)
        caches[key] = cache
    return dataset, caches


def _series_factories(plan: ExperimentPlan, dataset: PerformanceDataset,
                      caches: dict[str, AnalyticalPredictionCache]) -> dict:
    return {
        spec.label: build_factory(spec.factory, dataset,
                                  caches.get(spec.factory.analytical))
        for spec in plan.series
    }


# --------------------------------------------------------------------------- #
# Process-pool worker side
# --------------------------------------------------------------------------- #
#: Per-process memo of resolved plan state, so one worker handling several
#: cell batches of the same plan loads the dataset and caches only once.
#: Workers now outlive a single plan (see :class:`WorkerPool`), so the
#: memo is a bounded LRU: long experiment sequences evict their oldest
#: plan state instead of growing worker RSS without limit.
_WORKER_STATE: OrderedDict = OrderedDict()
#: Resolved plan states kept per worker.  One state holds a dataset view
#: plus warmed caches and factories — a handful covers every realistic
#: sequence (consecutive plans sharing datasets hit the memo), while a
#: hard cap bounds worker memory on arbitrarily long sequences.
_WORKER_STATE_LIMIT = 8
#: Evictions performed by this process (exposed via :func:`worker_state_stats`).
_WORKER_STATE_EVICTIONS = 0


def worker_state_stats() -> dict:
    """Size/limit/eviction counters of this process's plan-state memo.

    Call it in a *worker* (e.g. through :meth:`WorkerPool.probe`) to
    observe memo behaviour from outside; in the parent it reports the
    parent's own — normally empty — memo.
    """
    return {"size": len(_WORKER_STATE), "limit": _WORKER_STATE_LIMIT,
            "evictions": _WORKER_STATE_EVICTIONS}


def _worker_state_put(key, state) -> None:
    global _WORKER_STATE_EVICTIONS
    _WORKER_STATE[key] = state
    _WORKER_STATE.move_to_end(key)
    while len(_WORKER_STATE) > _WORKER_STATE_LIMIT:
        _WORKER_STATE.popitem(last=False)
        _WORKER_STATE_EVICTIONS += 1


def _evaluate_batch(plan: ExperimentPlan, cells: list, store_locator: str | None,
                    dataset: PerformanceDataset | None = None,
                    shared_ref: SharedDatasetRef | None = None) -> list[CellResult]:
    """Evaluate one batch of cells (runs inside a worker process).

    Module-level (and with picklable arguments) so the process pool can
    ship it.  *store_locator* is the parent store's shareable URL
    (``file://`` directory, ``http://`` object store); workers open
    their own :class:`DatasetStore` on it.  *shared_ref*, when given, is
    the parent's shared-memory dataset handle: the worker attaches a
    zero-copy read-only view instead of loading the npz artifact or
    unpickling shipped arrays (a canonical ref still reads analytical
    caches through the store; an override ref bypasses stores entirely,
    like a shipped override *dataset*).  The serial/thread paths
    evaluate cells directly in :func:`run_plan` against the
    parent-resolved state; divergence is impossible because every path
    reduces to the same :func:`~repro.core.evaluation.evaluate_cell`
    call per cell and the merge is plan-ordered.
    """
    canonical = shared_ref.canonical if shared_ref is not None else False
    if shared_ref is not None and not canonical:
        key = (plan, "override", shared_ref.digest)
    elif shared_ref is None and dataset is not None:
        # Override datasets have no registered fingerprint; key the memo by
        # content so a worker handling several batches warms caches once.
        digest = hashlib.sha256(dataset.X.tobytes() + dataset.y.tobytes()).hexdigest()
        key = (plan, "override", digest)
    else:
        # Canonical content: identical whether it arrives via the store
        # locator, shared memory, or a shipped copy of the built dataset.
        key = (plan, store_locator)
    state = _WORKER_STATE.get(key)
    if state is None:
        if shared_ref is not None:
            dataset = shared_ref.materialize()
        if dataset is not None:
            store = (DatasetStore(store_locator)
                     if canonical and store_locator is not None else None)
            resolved, caches = _resolve_data(plan, store, dataset,
                                             canonical=canonical)
        else:
            store = DatasetStore(store_locator) if store_locator is not None else None
            resolved, caches = _resolve_data(plan, store)
        state = (resolved, _series_factories(plan, resolved, caches))
        _worker_state_put(key, state)
    else:
        _WORKER_STATE.move_to_end(key)
    resolved, factories = state
    return [evaluate_cell(cell, factories[cell.factory_key], resolved)
            for cell in cells]


def _cell_attrs(cell) -> dict:
    """Span attributes identifying one cell (kept to its key fields only)."""
    return {"series": cell.series, "fraction": cell.fraction,
            "repeat": cell.repeat}


def _evaluate_batch_traced(plan: ExperimentPlan, cells: list,
                           store_locator: str | None,
                           dataset: PerformanceDataset | None = None,
                           shared_ref: SharedDatasetRef | None = None,
                           trace=None) -> tuple[list[CellResult], list]:
    """Traced twin of :func:`_evaluate_batch`: results plus finished spans.

    Dispatched instead of the plain function only when the parent runs
    under an active trace collection, so the untraced hot path stays
    byte-for-byte identical.  *trace* is the parent plan span's
    :class:`~repro.obs.tracing.SpanContext`; the batch and per-cell spans
    created here parent to it and travel back over the pool's pickle
    boundary as plain :class:`~repro.obs.tracing.Span` values.
    """
    spans: list = []
    with span_into(spans, "batch",
                   parent=trace,
                   attrs={"executor": "process", "pid": os.getpid(),
                          "cells": len(cells)}) as batch_span:
        results: list[CellResult] = []
        for cell in cells:
            with span_into(spans, "cell", parent=batch_span,
                           attrs=_cell_attrs(cell)):
                results.extend(
                    _evaluate_batch(plan, [cell], store_locator,
                                    dataset, shared_ref))
    return results, spans


# --------------------------------------------------------------------------- #
# Remote (worker-fleet) dispatch
# --------------------------------------------------------------------------- #
def _run_remote(plan: ExperimentPlan, cells: list, dataset: PerformanceDataset,
                caches: dict, store: DatasetStore | None, fleet,
                jobs: int, dataset_override: bool,
                batch_cells=None) -> list[CellResult]:
    """Dispatch cells to a TCP worker fleet (see :mod:`repro.distributed`).

    With an existing *fleet* coordinator the plan simply runs on it.  The
    convenience path spawns a throwaway coordinator plus *jobs* localhost
    workers; the workers share the parent's store (via its locator URL —
    warm-path loads, no bootstrap traffic) when a shareable one is
    configured.  *batch_cells* (``"auto"`` or an int) becomes the
    throwaway coordinator's lease ``batch_size``; an existing fleet
    already fixed its lease policy at construction, so combining the two
    is a usage error rather than a silent no-op.
    """
    from repro.distributed.coordinator import Coordinator

    if fleet is not None:
        if batch_cells is not None:
            raise ValueError(
                "batch_cells cannot be combined with an existing fleet; "
                "construct the Coordinator with batch_size=... instead")
        return fleet.execute(plan, cells, dataset, caches, store=store,
                             dataset_override=dataset_override)
    knobs = {} if batch_cells is None else {"batch_size": batch_cells}
    with Coordinator(**knobs) as coordinator:
        coordinator.spawn_local_workers(
            jobs, store_url=None if store is None else store.locator)
        return coordinator.execute(plan, cells, dataset, caches, store=store,
                                   dataset_override=dataset_override)


# --------------------------------------------------------------------------- #
# Process-pool (parent-side) dispatch
# --------------------------------------------------------------------------- #
def _run_process(plan: ExperimentPlan, cells: list, resolved: PerformanceDataset,
                 store_locator: str | None, *, dataset_override: bool,
                 pool: WorkerPool, batch_cells) -> list[CellResult]:
    """Dispatch cells to a (possibly long-lived) :class:`WorkerPool`.

    Three overhead attacks compose here: the pool may outlive this plan
    (workers keep their state memos), the batch shape is cost-balanced
    (LPT over the calibrated cost model) instead of a blind contiguous
    split, and the dataset travels through shared memory when available.
    Measured batch durations are fed back into the cost model, so later
    plans — and the fleet coordinator's adaptive leases — shape better.
    """
    costs = COST_MODEL.plan_costs(plan, cells, resolved.n_samples)
    units = COST_MODEL.plan_units(plan, cells, resolved.n_samples)
    if batch_cells is None or batch_cells == "auto":
        # Mild oversubscription: the pool queue absorbs cost-estimate
        # error dynamically without a dispatch round-trip per cell.
        n_batches = pool.jobs * AUTO_BATCHES_PER_WORKER
    else:
        n_batches = max(1, -(-len(cells) // batch_cells))
    batches = shape_batches(cells, costs, n_batches)

    shared_ref = pool.share_dataset(resolved, canonical=not dataset_override)
    if shared_ref is not None:
        shipped = None  # zero-copy: only the handle crosses the boundary
    else:
        # Shared memory unavailable: fall back to the store bootstrap
        # (when a shareable locator exists) or in-band pickling.
        shipped = None if store_locator is not None else resolved

    # Tracing on: dispatch the traced twin, which ships finished spans
    # back with the results.  Off (the common case): the dispatched
    # callable and its argument tuples are identical to the untraced
    # build, so the pool's hot path pays nothing.
    trace = TRACER.current_context() if TRACER.enabled else None
    if trace is None:
        timed = pool.run_batches(
            _evaluate_batch,
            [(plan, batch, store_locator, shipped, shared_ref)
             for batch in batches])
    else:
        traced = pool.run_batches(
            _evaluate_batch_traced,
            [(plan, batch, store_locator, shipped, shared_ref, trace)
             for batch in batches])
        timed = []
        for seconds, (batch_results, spans) in traced:
            TRACER.record(spans)
            timed.append((seconds, batch_results))
    for batch, (seconds, _) in zip(batches, timed, strict=True):
        by_family: dict[str, float] = {}
        for cell in batch:
            family, cell_units = units[cell.key]
            by_family[family] = by_family.get(family, 0.0) + cell_units
        COST_MODEL.observe(by_family, seconds)
    return [result for _, batch_results in timed for result in batch_results]


# --------------------------------------------------------------------------- #
# The scheduler proper
# --------------------------------------------------------------------------- #
def run_plan(plan: ExperimentPlan, *, executor: str = "serial", jobs: int = 1,
             store: DatasetStore | None = None,
             dataset: PerformanceDataset | None = None,
             fleet=None, pool: WorkerPool | None = None,
             batch_cells=None, publish_models: bool = False) -> ExperimentResult:
    """Execute *plan* and merge the cell results into an :class:`ExperimentResult`.

    Parameters
    ----------
    plan:
        The experiment plan to execute.
    executor:
        One of :data:`EXECUTORS`.  All four produce bit-identical rows.
    jobs:
        Worker count for the thread/process executors (``-1`` = CPU
        count); for ``"remote"`` without a *fleet*, the size of the
        spawned localhost fleet.
    store:
        Optional persistent :class:`DatasetStore`: datasets and warmed
        analytical caches are loaded from (and saved to) disk, shared
        across experiments, invocations and worker processes.
    dataset:
        Explicit dataset override (tests/notebooks); bypasses the store.
    fleet:
        Remote executor only: an existing
        :class:`~repro.distributed.coordinator.Coordinator` whose workers
        execute the plan (the coordinator outlives the call, so one fleet
        serves a whole sequence of experiments).  ``None`` spins up a
        local fleet of ``jobs`` workers for just this plan.
    pool:
        Process executor only: an existing
        :class:`~repro.experiments.pool.WorkerPool` whose warm workers
        execute the plan (the pool outlives the call — workers keep
        their plan-state memos, so one pool serves a whole sequence of
        experiments; see ``run_all`` and the CLI).  ``None`` spins up a
        pool of ``jobs`` workers for just this plan.
    batch_cells:
        Cell-fusion target for the process executor and the spawned
        remote fleet: ``None``/``"auto"`` lets the cost model shape
        cost-balanced batches (process) or adaptive leases (remote); an
        integer ``N`` forces ~``N`` cells per batch/lease.  Batch shape
        never affects results.
    publish_models:
        After a successful run, fit one canonical model per servable
        series on the **full** dataset and publish it into the *store*
        under ``models/<series>-<plan_fp>.npz`` for the serving tier
        (:mod:`repro.serving`); the publish outcome lands in
        ``result.extra["published_models"]``.  Requires a *store* (the
        artifacts need somewhere to live) and no *dataset* override
        (published models must be reproducible from the plan alone).
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    jobs = _resolve_jobs(jobs)
    batch_cells = resolve_batch_cells(batch_cells)
    if pool is not None and executor != "process":
        raise ValueError(
            f"pool requires the process executor, got executor={executor!r}")
    if publish_models and store is None:
        raise ValueError("publish_models requires a store to publish into")
    if publish_models and dataset is not None:
        raise ValueError(
            "publish_models is incompatible with a dataset override: published "
            "models must be reproducible from the plan's registered dataset")
    resolved, caches = _resolve_data(plan, store, dataset)
    cells = expand_cells(plan)
    used_pool = False

    # Under an active trace collection (``TRACER.collect()`` / the CLI's
    # ``--trace``) the whole dispatch+merge runs inside a plan span; every
    # executor parents its batch and cell spans to it (over the wire for
    # remote, over the pool's pickle boundary for process).  With tracing
    # off — the default — every ``TRACER.span`` below yields None after a
    # single attribute check, which is the basis of the scheduler's <2%
    # overhead guarantee (see benchmarks/test_bench_perf.py).
    with TRACER.span("plan", attrs={"plan": plan.experiment_id,
                                    "executor": executor,
                                    "cells": len(cells)}):
        if executor == "remote":
            results = _run_remote(plan, cells, resolved, caches,
                                  store if dataset is None else None, fleet, jobs,
                                  dataset_override=dataset is not None,
                                  batch_cells=batch_cells)
        elif (executor == "serial" or len(cells) <= 1
              or (jobs == 1 and not (executor == "process" and pool is not None))):
            factories = _series_factories(plan, resolved, caches)
            with TRACER.span("batch", attrs={"executor": "serial",
                                             "cells": len(cells)}) as batch_span:
                results = []
                for cell in cells:
                    with TRACER.span("cell", parent=batch_span,
                                     attrs=_cell_attrs(cell)):
                        results.append(evaluate_cell(
                            cell, factories[cell.factory_key], resolved))
        elif executor == "thread":
            factories = _series_factories(plan, resolved, caches)
            with TRACER.span("batch", attrs={"executor": "thread", "jobs": jobs,
                                             "cells": len(cells)}) as batch_span:
                def _eval_one(cell):
                    # Pool threads don't inherit the contextvar; parent
                    # each cell span to the batch explicitly.
                    with TRACER.span("cell", parent=batch_span,
                                     attrs=_cell_attrs(cell)):
                        return evaluate_cell(
                            cell, factories[cell.factory_key], resolved)
                with ThreadPoolExecutor(max_workers=jobs) as thread_pool:
                    results = list(thread_pool.map(_eval_one, cells))
        else:  # process
            store_locator = store.locator if (store is not None and dataset is None) else None
            own_pool = pool is None
            if own_pool:
                pool = WorkerPool(jobs)
            try:
                results = _run_process(plan, cells, resolved, store_locator,
                                       dataset_override=dataset is not None,
                                       pool=pool, batch_cells=batch_cells)
                used_pool = True
            finally:
                if own_pool:
                    pool.close()

        merge_start = time.perf_counter()
        by_series: dict[str, list[CellResult]] = {}
        for result in results:
            by_series.setdefault(result.series, []).append(result)
        curves = {}
        for spec in plan.series:
            series_cells = [c for c in cells if c.series == spec.label]
            curves[spec.label] = merge_cell_results(
                series_cells, by_series.get(spec.label, []), label=spec.label)
        if used_pool:
            pool.record_merge(time.perf_counter() - merge_start, len(cells))

    extra = compute_extras(plan, resolved, caches)
    if publish_models:
        from repro.serving.model_io import publish_plan_models

        extra["published_models"] = publish_plan_models(
            plan, resolved, caches, store)

    return ExperimentResult(
        experiment_id=plan.experiment_id,
        description=plan.description,
        dataset_name=resolved.name,
        curves=curves,
        extra=extra,
    )


def run_named_plan(name: str, settings: ExperimentSettings | None = None,
                   dataset: PerformanceDataset | None = None, *,
                   executor: str = "serial", jobs: int = 1,
                   store=None, fleet=None, pool=None,
                   batch_cells=None, publish_models: bool = False) -> ExperimentResult:
    """Resolve the plan of experiment *name* and execute it.

    The shared backend of the thin per-figure / per-ablation wrappers
    (``store`` may be a :class:`DatasetStore` or a directory path;
    ``fleet`` an existing remote-executor coordinator; ``pool`` an
    existing process-executor :class:`WorkerPool`; ``batch_cells`` the
    cell-fusion target, ``"auto"`` or an int; ``publish_models`` fits
    and publishes serving-tier models into the store after the run).
    """
    plan = experiment_plan(name, settings or ExperimentSettings())
    if plan is None:
        raise KeyError(f"experiment {name!r} has no plan (runs opaquely)")
    return run_plan(plan, dataset=dataset, executor=executor, jobs=jobs,
                    store=_resolve_store(store), fleet=fleet, pool=pool,
                    batch_cells=batch_cells, publish_models=publish_models)
