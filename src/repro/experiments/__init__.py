"""Experiment definitions reproducing every figure of the paper's evaluation.

Each ``figureX`` function builds the figure's dataset, trains the models
the figure compares with the paper's training fractions, and returns an
:class:`~repro.experiments.runner.ExperimentResult` whose rows are the
series the paper plots (MAPE versus training-set size).  The companion
benchmarks in ``benchmarks/`` simply invoke these functions and print the
resulting tables.

Use :func:`~repro.experiments.runner.run_experiment` /
:func:`~repro.experiments.runner.run_all` (or
``python -m repro.experiments``) to execute them directly.
"""

from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    run_experiment,
    run_all,
    EXPERIMENTS,
)
from repro.experiments.figures import (
    figure3_stencil,
    figure3_fmm,
    figure5,
    figure6,
    figure7,
    figure8,
    analytical_accuracy,
)
from repro.experiments.ablations import (
    ablation_aggregation,
    ablation_analytical_quality,
    ablation_sampling_strategy,
    ablation_ml_backend,
)
from repro.experiments.reporting import format_curves, format_result, results_to_markdown

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "run_experiment",
    "run_all",
    "EXPERIMENTS",
    "figure3_stencil",
    "figure3_fmm",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "analytical_accuracy",
    "ablation_aggregation",
    "ablation_analytical_quality",
    "ablation_sampling_strategy",
    "ablation_ml_backend",
    "format_curves",
    "format_result",
    "results_to_markdown",
]
