"""Experiment definitions reproducing every figure of the paper's evaluation.

Each ``figureX`` function builds the figure's dataset, trains the models
the figure compares with the paper's training fractions, and returns an
:class:`~repro.experiments.runner.ExperimentResult` whose rows are the
series the paper plots (MAPE versus training-set size).  The companion
benchmarks in ``benchmarks/`` simply invoke these functions and print the
resulting tables.

Use :func:`~repro.experiments.runner.run_experiment` /
:func:`~repro.experiments.runner.run_all` (or
``python -m repro.experiments``) to execute them directly.  Execution is
plan-based: experiments expand into picklable ``(series, fraction,
repeat)`` cells (:mod:`repro.experiments.plan`) dispatched through
pluggable serial/thread/process executors
(:mod:`repro.experiments.scheduler`) with bit-identical results, backed
by an optional persistent dataset/cache store
(:mod:`repro.datasets.store`).
"""

from repro.experiments.ablations import (
    ablation_aggregation,
    ablation_analytical_quality,
    ablation_ml_backend,
    ablation_sampling_strategy,
    ablation_tree_method,
)
from repro.experiments.figures import (
    analytical_accuracy,
    figure3_fmm,
    figure3_stencil,
    figure5,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.plan import (
    PLANNED_EXPERIMENTS,
    ExperimentPlan,
    FactorySpec,
    SeriesSpec,
    expand_cells,
    experiment_plan,
)
from repro.experiments.pool import CostModel, WorkerPool
from repro.experiments.reporting import format_curves, format_result, results_to_markdown
from repro.experiments.runner import (
    EXPERIMENTS,
    ExperimentResult,
    ExperimentSettings,
    run_all,
    run_experiment,
)
from repro.experiments.scheduler import EXECUTORS, run_plan

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "run_experiment",
    "run_all",
    "EXPERIMENTS",
    "ExperimentPlan",
    "FactorySpec",
    "SeriesSpec",
    "experiment_plan",
    "expand_cells",
    "PLANNED_EXPERIMENTS",
    "EXECUTORS",
    "run_plan",
    "WorkerPool",
    "CostModel",
    "figure3_stencil",
    "figure3_fmm",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "analytical_accuracy",
    "ablation_aggregation",
    "ablation_analytical_quality",
    "ablation_sampling_strategy",
    "ablation_ml_backend",
    "ablation_tree_method",
    "format_curves",
    "format_result",
    "results_to_markdown",
]
