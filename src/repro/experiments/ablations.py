"""Ablation experiments for the design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify how much each ingredient
of the hybrid model contributes:

* **aggregation** — stacking only vs stacking + analytical/stacked
  aggregation (the paper's optional bagging stage) vs analytical only;
* **analytical quality** — hybrid accuracy when the analytical model is
  replaced by a calibrated version or by a deliberately degraded one
  (predictions raised to a power, destroying scale information);
* **sampling strategy** — uniform random vs Latin-hypercube-style
  stratified training-set selection at small fractions;
* **ML backend** — extra trees (the paper's choice) vs random forest,
  bagged trees and k-NN as the stacked learner.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analytical import (
    AnalyticalPredictionCache,
    CalibratedModel,
    StencilAnalyticalModel,
)
from repro.analytical.base import AnalyticalModel
from repro.core.evaluation import compare_models, evaluate_learning_curve
from repro.core.hybrid import HybridPerformanceModel
from repro.core.features import PerformanceDataset
from repro.datasets import blocked_small_grid_dataset
from repro.datasets.sampling import latin_hypercube_indices, uniform_sample_indices
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.ml import (
    BaggingRegressor,
    DecisionTreeRegressor,
    ExtraTreesRegressor,
    KNeighborsRegressor,
    Pipeline,
    RandomForestRegressor,
    StandardScaler,
)
from repro.ml.metrics import mean_absolute_percentage_error
from repro.utils.rng import spawn_seeds

__all__ = [
    "ablation_aggregation",
    "ablation_analytical_quality",
    "ablation_sampling_strategy",
    "ablation_ml_backend",
]

_FRACTIONS = (0.01, 0.02, 0.04)


class _BlockingBlindModel(AnalyticalModel):
    """The stencil analytical model with the blocking information removed.

    Every configuration is predicted as if it were un-blocked, so the model
    keeps the grid-size dependence but loses the dimension that actually
    dominates the Figure 6 dataset — a *structurally* degraded analytical
    model (monotone transformations such as rescaling or powers would be
    absorbed by the hybrid's log feature + standardization and change
    nothing).
    """

    def __init__(self, base: AnalyticalModel) -> None:
        self.base = base

    def predict_config(self, config) -> float:
        from repro.stencil.config import StencilConfig

        stripped = StencilConfig(I=config.I, J=config.J, K=config.K,
                                 unroll=config.unroll, threads=config.threads)
        return self.base.predict_config(stripped)

    def config_from_features(self, row, feature_names):
        return self.base.config_from_features(row, feature_names)


class _ConstantModel(AnalyticalModel):
    """An analytical model with no information at all (constant prediction).

    The hybrid built on it collapses to the pure ML model plus one useless
    feature — the lower bound of the analytical-quality sweep.
    """

    def __init__(self, base: AnalyticalModel, value: float = 1e-3) -> None:
        self.base = base
        self.value = value

    def predict_config(self, config) -> float:
        return self.value

    def config_from_features(self, row, feature_names):
        return self.base.config_from_features(row, feature_names)


def _hybrid_factory(analytical, dataset, settings, *, aggregate=False) -> Callable:
    # One cache per factory: every (fraction, repeat) instance shares it, so
    # each dataset row is evaluated by the analytical model at most once.
    cache = AnalyticalPredictionCache(analytical, dataset.feature_names)

    def factory(seed: int):
        return HybridPerformanceModel(
            analytical_model=analytical,
            feature_names=dataset.feature_names,
            ml_model=ExtraTreesRegressor(n_estimators=settings.n_estimators,
                                         random_state=seed),
            aggregate_analytical=aggregate,
            analytical_cache=cache,
            random_state=seed,
        )

    return factory


def ablation_aggregation(settings: ExperimentSettings | None = None,
                         dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Stacking-only vs aggregation vs analytical-only on the blocked stencil dataset."""
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else blocked_small_grid_dataset(
        max_configs=settings.max_configs)
    analytical = StencilAnalyticalModel()
    factories = {
        "hybrid_stacked_only": _hybrid_factory(analytical, dataset, settings, aggregate=False),
        "hybrid_aggregated": _hybrid_factory(analytical, dataset, settings, aggregate=True),
    }
    curves = compare_models(factories, dataset, fractions=_FRACTIONS,
                            n_repeats=settings.n_repeats,
                            random_state=settings.random_state)
    am_mape = mean_absolute_percentage_error(
        dataset.y, analytical.predict(dataset.X, dataset.feature_names))
    return ExperimentResult(
        experiment_id="ablation_aggregation",
        description="Effect of the optional analytical/stacked aggregation stage",
        dataset_name=dataset.name,
        curves=curves,
        extra={"analytical_only_mape": am_mape},
    )


def ablation_analytical_quality(settings: ExperimentSettings | None = None,
                                dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Hybrid accuracy as the *information content* of the analytical model varies.

    Three analytical models feed the same hybrid pipeline: the paper's full
    (untuned) model, a blocking-blind variant that only knows the grid
    size, and a constant model carrying no information.  Note that merely
    *rescaling* the analytical model (calibration) cannot change the hybrid:
    the log-feature plus standardization make the stacked model invariant
    to any monotone power-law transformation of the analytical prediction —
    the standalone MAPEs of the untuned and calibrated models are reported
    to quantify how much calibration would matter on its own.
    """
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else blocked_small_grid_dataset(
        max_configs=settings.max_configs)
    base = StencilAnalyticalModel()
    calibrated = CalibratedModel.fit(base, dataset.configs, dataset.y)
    blind = _BlockingBlindModel(base)
    constant = _ConstantModel(base)
    factories = {
        "hybrid_full_am": _hybrid_factory(base, dataset, settings),
        "hybrid_blocking_blind_am": _hybrid_factory(blind, dataset, settings),
        "hybrid_constant_am": _hybrid_factory(constant, dataset, settings),
    }
    curves = compare_models(factories, dataset, fractions=_FRACTIONS,
                            n_repeats=settings.n_repeats,
                            random_state=settings.random_state)
    extra = {
        "untuned_am_mape": mean_absolute_percentage_error(
            dataset.y, base.predict(dataset.X, dataset.feature_names)),
        "calibrated_am_mape": mean_absolute_percentage_error(
            dataset.y, calibrated.predict(dataset.X, dataset.feature_names)),
        "calibration_scale": calibrated.scale,
        "blocking_blind_am_mape": mean_absolute_percentage_error(
            dataset.y, blind.predict(dataset.X, dataset.feature_names)),
    }
    return ExperimentResult(
        experiment_id="ablation_analytical_quality",
        description="Hybrid accuracy with full, blocking-blind and uninformative analytical models",
        dataset_name=dataset.name,
        curves=curves,
        extra=extra,
    )


def ablation_sampling_strategy(settings: ExperimentSettings | None = None,
                               dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Uniform random vs stratified training-set selection at small fractions."""
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else blocked_small_grid_dataset(
        max_configs=settings.max_configs)
    analytical = StencilAnalyticalModel()
    cache = AnalyticalPredictionCache(analytical, dataset.feature_names).warm(dataset.X)
    extra: dict = {}
    from repro.core.evaluation import LearningCurve, LearningCurvePoint

    curves: dict[str, LearningCurve] = {}
    for strategy_name, selector in (
        ("uniform", lambda X, k, seed: uniform_sample_indices(X.shape[0], k, random_state=seed)),
        ("stratified", lambda X, k, seed: latin_hypercube_indices(X, k, random_state=seed)),
    ):
        curve = LearningCurve(label=f"hybrid_{strategy_name}")
        for fraction in _FRACTIONS:
            n_train = max(3, int(round(fraction * dataset.n_samples)))
            point = LearningCurvePoint(fraction=fraction, n_train=n_train)
            for seed in spawn_seeds(settings.random_state + hash(strategy_name) % 1000,
                                    settings.n_repeats):
                train_idx = selector(dataset.X, n_train, seed)
                mask = np.ones(dataset.n_samples, dtype=bool)
                mask[train_idx] = False
                model = HybridPerformanceModel(
                    analytical_model=analytical,
                    feature_names=dataset.feature_names,
                    ml_model=ExtraTreesRegressor(n_estimators=settings.n_estimators,
                                                 random_state=seed),
                    analytical_cache=cache,
                    random_state=seed,
                )
                model.fit(dataset.X[train_idx], dataset.y[train_idx])
                point.mapes.append(mean_absolute_percentage_error(
                    dataset.y[mask], model.predict(dataset.X[mask])))
            curve.points.append(point)
        curves[curve.label] = curve
    return ExperimentResult(
        experiment_id="ablation_sampling_strategy",
        description="Uniform vs stratified training-set sampling for the hybrid model",
        dataset_name=dataset.name,
        curves=curves,
        extra=extra,
    )


def ablation_ml_backend(settings: ExperimentSettings | None = None,
                        dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Different stacked learners inside the hybrid model."""
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else blocked_small_grid_dataset(
        max_configs=settings.max_configs)
    analytical = StencilAnalyticalModel()

    cache = AnalyticalPredictionCache(analytical, dataset.feature_names)

    def hybrid_with(ml_factory) -> Callable:
        def factory(seed: int):
            return HybridPerformanceModel(
                analytical_model=analytical,
                feature_names=dataset.feature_names,
                ml_model=ml_factory(seed),
                analytical_cache=cache,
                random_state=seed,
            )

        return factory

    factories = {
        "hybrid_extra_trees": hybrid_with(
            lambda seed: ExtraTreesRegressor(n_estimators=settings.n_estimators,
                                             random_state=seed)),
        "hybrid_random_forest": hybrid_with(
            lambda seed: RandomForestRegressor(n_estimators=settings.n_estimators,
                                               random_state=seed)),
        "hybrid_bagged_tree": hybrid_with(
            lambda seed: BaggingRegressor(estimator=DecisionTreeRegressor(),
                                          n_estimators=max(5, settings.n_estimators // 2),
                                          random_state=seed)),
        "hybrid_knn": hybrid_with(lambda seed: KNeighborsRegressor(n_neighbors=5,
                                                                   weights="distance")),
    }
    curves = compare_models(factories, dataset, fractions=_FRACTIONS,
                            n_repeats=settings.n_repeats,
                            random_state=settings.random_state)
    return ExperimentResult(
        experiment_id="ablation_ml_backend",
        description="Hybrid model with different stacked ML learners",
        dataset_name=dataset.name,
        curves=curves,
    )
