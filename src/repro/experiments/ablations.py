"""Ablation experiments for the design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify how much each ingredient
of the hybrid model contributes:

* **aggregation** — stacking only vs stacking + analytical/stacked
  aggregation (the paper's optional bagging stage) vs analytical only;
* **analytical quality** — hybrid accuracy when the analytical model is
  replaced by a calibrated version or by a deliberately degraded one
  (structurally blinded to blocking, or constant);
* **sampling strategy** — uniform random vs Latin-hypercube-style
  stratified training-set selection at small fractions;
* **ML backend** — extra trees (the paper's choice) vs random forest,
  bagged trees and k-NN as the stacked learner.

The first, second and fourth are regular learning-curve grids and are
declared as plans in :mod:`repro.experiments.plan` (so they run through
the same pluggable scheduler as the figures); the sampling-strategy
ablation substitutes its own training-set selector for the evaluation
protocol's uniform split and therefore runs opaquely.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.analytical import AnalyticalPredictionCache, StencilAnalyticalModel
from repro.core.evaluation import LearningCurve, LearningCurvePoint
from repro.core.features import PerformanceDataset
from repro.core.hybrid import HybridPerformanceModel
from repro.datasets import blocked_small_grid_dataset
from repro.datasets.sampling import latin_hypercube_indices, uniform_sample_indices
from repro.experiments.plan import BlockingBlindStencilModel, ConstantAnalyticalModel
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.experiments.scheduler import run_named_plan
from repro.ml import ExtraTreesRegressor
from repro.ml.metrics import mean_absolute_percentage_error
from repro.utils.rng import spawn_seeds

__all__ = [
    "ablation_aggregation",
    "ablation_analytical_quality",
    "ablation_sampling_strategy",
    "ablation_ml_backend",
    "ablation_tree_method",
]

_FRACTIONS = (0.01, 0.02, 0.04)

# Degraded analytical models, kept under their historical (private) names
# for callers that imported them from here.
_BlockingBlindModel = BlockingBlindStencilModel
_ConstantModel = ConstantAnalyticalModel


def ablation_aggregation(settings: ExperimentSettings | None = None,
                         dataset: PerformanceDataset | None = None,
                         **scheduler_options) -> ExperimentResult:
    """Stacking-only vs aggregation vs analytical-only on the blocked stencil dataset."""
    return run_named_plan("ablation_aggregation", settings, dataset, **scheduler_options)


def ablation_analytical_quality(settings: ExperimentSettings | None = None,
                                dataset: PerformanceDataset | None = None,
                                **scheduler_options) -> ExperimentResult:
    """Hybrid accuracy as the *information content* of the analytical model varies.

    Three analytical models feed the same hybrid pipeline: the paper's full
    (untuned) model, a blocking-blind variant that only knows the grid
    size, and a constant model carrying no information.  Note that merely
    *rescaling* the analytical model (calibration) cannot change the hybrid:
    the log-feature plus standardization make the stacked model invariant
    to any monotone power-law transformation of the analytical prediction —
    the standalone MAPEs of the untuned and calibrated models are reported
    to quantify how much calibration would matter on its own.
    """
    return run_named_plan("ablation_analytical_quality", settings, dataset,
                         **scheduler_options)


def ablation_ml_backend(settings: ExperimentSettings | None = None,
                        dataset: PerformanceDataset | None = None,
                        **scheduler_options) -> ExperimentResult:
    """Different stacked learners inside the hybrid model."""
    return run_named_plan("ablation_ml_backend", settings, dataset, **scheduler_options)


def ablation_tree_method(settings: ExperimentSettings | None = None,
                         dataset: PerformanceDataset | None = None,
                         **scheduler_options) -> ExperimentResult:
    """Exact vs histogram-binned split search for the ML and hybrid models.

    The ``"hist"`` tree engine quantizes features to quantile bins at fit
    time (see :mod:`repro.ml._hist`); this ablation verifies that the
    learning curves it produces are statistically indistinguishable from
    the exact engines' on the blocked-stencil dataset.
    """
    return run_named_plan("ablation_tree_method", settings, dataset,
                          **scheduler_options)


def ablation_sampling_strategy(settings: ExperimentSettings | None = None,
                               dataset: PerformanceDataset | None = None) -> ExperimentResult:
    """Uniform random vs stratified training-set selection at small fractions."""
    settings = settings or ExperimentSettings()
    dataset = dataset if dataset is not None else blocked_small_grid_dataset(
        max_configs=settings.max_configs)
    analytical = StencilAnalyticalModel()
    cache = AnalyticalPredictionCache(analytical, dataset.feature_names).warm(dataset.X)
    extra: dict = {}

    curves: dict[str, LearningCurve] = {}
    for strategy_name, selector in (
        ("uniform", lambda X, k, seed: uniform_sample_indices(X.shape[0], k, random_state=seed)),
        ("stratified", lambda X, k, seed: latin_hypercube_indices(X, k, random_state=seed)),
    ):
        curve = LearningCurve(label=f"hybrid_{strategy_name}")
        for fraction in _FRACTIONS:
            n_train = max(3, int(round(fraction * dataset.n_samples)))
            point = LearningCurvePoint(fraction=fraction, n_train=n_train)
            # crc32, not hash(): str hashing is salted per process, which made
            # this experiment unreproducible across invocations.
            strategy_offset = zlib.crc32(strategy_name.encode()) % 1000
            for seed in spawn_seeds(settings.random_state + strategy_offset,
                                    settings.n_repeats):
                train_idx = selector(dataset.X, n_train, seed)
                mask = np.ones(dataset.n_samples, dtype=bool)
                mask[train_idx] = False
                model = HybridPerformanceModel(
                    analytical_model=analytical,
                    feature_names=dataset.feature_names,
                    ml_model=ExtraTreesRegressor(n_estimators=settings.n_estimators,
                                                 random_state=seed),
                    analytical_cache=cache,
                    random_state=seed,
                )
                model.fit(dataset.X[train_idx], dataset.y[train_idx])
                point.mapes.append(mean_absolute_percentage_error(
                    dataset.y[mask], model.predict(dataset.X[mask])))
            curve.points.append(point)
        curves[curve.label] = curve
    return ExperimentResult(
        experiment_id="ablation_sampling_strategy",
        description="Uniform vs stratified training-set sampling for the hybrid model",
        dataset_name=dataset.name,
        curves=curves,
        extra=extra,
    )
