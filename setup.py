"""Package metadata for the conf_ipps_IbeidMDOG19 reproduction.

All metadata lives here (there is deliberately no ``pyproject.toml``):
the target environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs cannot build the editable wheel — keeping
the legacy ``setup.py`` path lets ``pip install -e .`` (and plain
``pip install .``) work offline.  CI installs the package with
``pip install -e .`` instead of exporting ``PYTHONPATH=src``, so a
packaging break (a module missing from the ``src`` layout, a bad
``package_dir`` mapping, an unsatisfied requirement) fails the build.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ipps-ibeid-hybrid-perf",
    version="0.6.0",
    description=(
        "Reproduction of conf_ipps_IbeidMDOG19: hybrid analytical/ML "
        "performance modeling for FMM and stencil kernels"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    entry_points={
        "console_scripts": [
            # Fleet-worker host side of the distributed remote executor
            # (equivalent to `python -m repro.distributed.worker`).
            "repro-fleet-worker=repro.distributed.worker:main",
            # Bundled S3-style object store serving DatasetStore artifacts
            # (equivalent to `python -m repro.datasets.object_server`).
            "repro-object-server=repro.datasets.object_server:main",
            # Prediction-as-a-service model server over published models
            # (equivalent to `python -m repro.serving.server`).
            "repro-serve=repro.serving.server:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Intended Audience :: Science/Research",
        "Topic :: Scientific/Engineering",
    ],
)
