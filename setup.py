"""Setuptools shim.

The target environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build the editable
wheel.  This shim lets ``python setup.py develop`` (or a plain
``pip install .``) work offline; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
