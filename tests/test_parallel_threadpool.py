"""Tests for repro.parallel.threadpool."""

import pytest

from repro.parallel.threadpool import chunk_indices, parallel_map


class TestChunkIndices:
    def test_even_split(self):
        chunks = chunk_indices(10, 2)
        assert [len(c) for c in chunks] == [5, 5]
        assert list(chunks[0]) + list(chunks[1]) == list(range(10))

    def test_uneven_split_is_balanced(self):
        chunks = chunk_indices(10, 3)
        assert sorted(len(c) for c in chunks) == [3, 3, 4]

    def test_more_chunks_than_items(self):
        chunks = chunk_indices(3, 10)
        assert len(chunks) == 3
        assert all(len(c) == 1 for c in chunks)

    def test_zero_items(self):
        assert chunk_indices(0, 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(10, 0)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3], n_jobs=1) == [2, 4, 6]

    def test_threaded_path_preserves_order(self):
        items = list(range(50))
        assert parallel_map(lambda x: x + 1, items, n_jobs=4) == [x + 1 for x in items]

    def test_n_jobs_minus_one(self):
        assert parallel_map(lambda x: x, [1, 2, 3], n_jobs=-1) == [1, 2, 3]

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], n_jobs=4) == []

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1], n_jobs=0)
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1], n_jobs=-2)
